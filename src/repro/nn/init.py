"""Weight initializers (Kaiming/Xavier) for the numpy NN framework.

These operate in place on :class:`~repro.nn.tensor.Tensor` data and follow
the fan conventions of ``torch.nn.init`` so that a ResNet initialized here
behaves like the torchvision reference at the start of training.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for linear and conv weight shapes.

    Linear weights are (out, in); conv weights are (out, in, kh, kw) with a
    receptive-field multiplier, matching PyTorch's convention.
    """
    if len(shape) < 2:
        raise ValueError("fan computation requires at least 2 dimensions")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def _gain(nonlinearity: str, a: float = 0.0) -> float:
    """Recommended gain for a nonlinearity (subset of torch.nn.init.calculate_gain)."""
    if nonlinearity == "relu":
        return math.sqrt(2.0)
    if nonlinearity == "leaky_relu":
        return math.sqrt(2.0 / (1.0 + a * a))
    if nonlinearity in ("linear", "sigmoid", "conv2d"):
        return 1.0
    if nonlinearity == "tanh":
        return 5.0 / 3.0
    raise ValueError(f"unsupported nonlinearity {nonlinearity!r}")


def kaiming_normal_(
    tensor: Tensor,
    mode: str = "fan_in",
    nonlinearity: str = "relu",
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """He-normal initialization, in place."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    fan = fan_in if mode == "fan_in" else fan_out
    std = _gain(nonlinearity) / math.sqrt(fan)
    gen = rng if rng is not None else np.random.default_rng()
    tensor.data[...] = gen.normal(0.0, std, size=tensor.shape).astype(tensor.dtype)
    return tensor


def kaiming_uniform_(
    tensor: Tensor,
    a: float = math.sqrt(5.0),
    mode: str = "fan_in",
    nonlinearity: str = "leaky_relu",
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """He-uniform initialization (PyTorch's default for conv/linear), in place."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    fan = fan_in if mode == "fan_in" else fan_out
    bound = _gain(nonlinearity, a) * math.sqrt(3.0 / fan)
    gen = rng if rng is not None else np.random.default_rng()
    tensor.data[...] = gen.uniform(-bound, bound, size=tensor.shape).astype(tensor.dtype)
    return tensor


def xavier_uniform_(
    tensor: Tensor,
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Glorot-uniform initialization, in place."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    gen = rng if rng is not None else np.random.default_rng()
    tensor.data[...] = gen.uniform(-bound, bound, size=tensor.shape).astype(tensor.dtype)
    return tensor


def uniform_bias_(
    tensor: Tensor,
    weight_shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    fan_in, _ = _fan_in_out(weight_shape)
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    gen = rng if rng is not None else np.random.default_rng()
    tensor.data[...] = gen.uniform(-bound, bound, size=tensor.shape).astype(tensor.dtype)
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    """Fill with a constant, in place."""
    tensor.data[...] = value
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    return constant_(tensor, 0.0)


def ones_(tensor: Tensor) -> Tensor:
    return constant_(tensor, 1.0)
