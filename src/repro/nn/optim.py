"""Optimizers for the numpy NN framework.

``SGD`` (with momentum, weight decay, Nesterov) and ``Adam`` — the two the
reproduction uses: SGD for source training (as in UFLD) and SGD/Adam for the
single-step entropy-minimization update of LD-BN-ADAPT and the multi-epoch
retraining of the CARLANE-SOTA baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter
from .tensor import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list.

    Only parameters with ``requires_grad=True`` *and* a non-None ``grad``
    are updated by :meth:`step`; this is what lets the adaptation code
    freeze everything but BN gamma/beta simply by flipping
    ``requires_grad`` flags.
    """

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr < 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = lr
        self.state: Dict[int, dict] = {}

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients before the next backward pass.

        With ``set_to_none=True`` (default) gradient arrays are released
        so eager adaptation steps free them between frames; pass False to
        keep the allocations and zero-fill them in place instead.
        """
        for p in self.params:
            if set_to_none:
                p.grad = None
            elif p.grad is not None:
                p.grad.fill(0.0)

    def step(self) -> None:
        raise NotImplementedError

    def _updatable(self) -> Iterable[Tensor]:
        for p in self.params:
            if p.requires_grad and p.grad is not None:
                yield p


def sgd_update(
    data: np.ndarray,
    grad: np.ndarray,
    state: dict,
    lr: float,
    momentum: float = 0.0,
    weight_decay: float = 0.0,
    nesterov: bool = False,
) -> None:
    """One fused in-place SGD update on raw arrays.

    Issues the same kernel sequence as the classic eager formulation
    (``buf = momentum * buf + grad; p -= lr * buf``) but with ``out=``
    everywhere, reusing the momentum buffer and a float64 work scratch
    kept in ``state`` — no per-parameter temporaries on the adaptation
    hot path.  Shared by :meth:`SGD.step` and the fleet server's batched
    per-stream adaptation updater (:mod:`repro.serve.adapt_batch`), so
    serial and batched stepping apply bitwise-identical updates.
    """
    work = state.get("work")
    if work is None or work.shape != grad.shape:
        work = np.empty(grad.shape, dtype=np.float64)
        state["work"] = work
    np.copyto(work, grad)  # grad.astype(float64) without the allocation
    if weight_decay:
        np.add(work, weight_decay * data, out=work)
    if momentum:
        buf = state.get("momentum")
        if buf is None:
            buf = work.copy()
            state["momentum"] = buf
        else:
            np.multiply(buf, momentum, out=buf)
            np.add(buf, work, out=buf)
        if nesterov:
            np.add(work, momentum * buf, out=work)
        else:
            np.copyto(work, buf)
    np.multiply(work, lr, out=work)
    if data.dtype == work.dtype:
        np.subtract(data, work, out=data)
    else:
        data -= work.astype(data.dtype)


class SGD(Optimizer):
    """Stochastic gradient descent with momentum / weight decay / Nesterov.

    The update itself is the fused in-place :func:`sgd_update`: momentum
    buffers are mutated in place and the only allocation is a one-time
    per-parameter work scratch, so the LD-BN-ADAPT step (one ``step()``
    per camera frame) allocates nothing in steady state.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def step(self) -> None:
        for p in self._updatable():
            sgd_update(
                p.data,
                p.grad,
                self.state.setdefault(id(p), {}),
                self.lr,
                momentum=self.momentum,
                weight_decay=self.weight_decay,
                nesterov=self.nesterov,
            )


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"invalid betas {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        b1, b2 = self.betas
        for p in self._updatable():
            grad = p.grad.astype(np.float64)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            st = self.state.setdefault(id(p), {"step": 0})
            st["step"] += 1
            m = st.get("m")
            v = st.get("v")
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad * grad
            st["m"], st["v"] = m, v
            m_hat = m / (1 - b1 ** st["step"])
            v_hat = v / (1 - b2 ** st["step"])
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.data -= update.astype(p.data.dtype)


class LRScheduler:
    """Minimal step-decay learning-rate scheduler."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.epoch = 0
        self.base_lr = optimizer.lr

    def step(self) -> None:
        self.epoch += 1
        decay = self.gamma ** (self.epoch // self.step_size)
        self.optimizer.lr = self.base_lr * decay
