"""``repro.nn`` — a from-scratch numpy autograd + neural-network framework.

This package replaces PyTorch 1.11 (which the paper used but which is not
available in this environment).  It provides tensors with reverse-mode
autodiff, the layers needed by ResNet/UFLD, optimizers and serialization.
See DESIGN.md section 2 for why this substitution preserves the paper's
behaviour.

Typical usage::

    from repro import nn
    from repro.nn import functional as F

    layer = nn.Conv2d(3, 16, 3, padding=1)
    y = F.relu(layer(nn.Tensor(x)))
"""

from . import functional
from . import init
from .autograd import (
    adaptation_mode,
    compiled_adaptation_enabled,
    compiled_inference_enabled,
    enable_grad,
    gradcheck,
    inference_mode,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from .modules import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .optim import SGD, Adam, LRScheduler, Optimizer
from .serialization import load_checkpoint, save_checkpoint
from .tensor import (
    Tensor,
    concatenate,
    from_numpy,
    ones,
    randn,
    stack,
    zeros,
)

__all__ = [
    "Tensor",
    "from_numpy",
    "zeros",
    "ones",
    "randn",
    "stack",
    "concatenate",
    "no_grad",
    "enable_grad",
    "inference_mode",
    "compiled_inference_enabled",
    "adaptation_mode",
    "compiled_adaptation_enabled",
    "is_grad_enabled",
    "set_grad_enabled",
    "gradcheck",
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "ReLU",
    "Flatten",
    "Dropout",
    "Conv2d",
    "Linear",
    "BatchNorm1d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "save_checkpoint",
    "load_checkpoint",
    "functional",
    "init",
]
