"""A small, explicit numpy-backed tensor with reverse-mode autograd.

This is the substrate that replaces PyTorch for the LD-BN-ADAPT
reproduction.  It implements exactly the machinery the paper's method
needs:

* tensors with ``requires_grad`` / ``grad`` / ``backward()``;
* a define-by-run graph of :class:`Function` nodes;
* broadcasting-aware gradients for elementwise arithmetic;
* reductions, matmul, reshapes and indexing (convolutions, pooling and
  losses live in :mod:`repro.nn.functional`).

The public surface intentionally mirrors a familiar PyTorch subset so the
model/adaptation code reads naturally.  Everything is vectorized numpy —
there are no Python-level loops over elements anywhere in the hot path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import autograd

ArrayLike = Union[np.ndarray, float, int, list, tuple]

DEFAULT_DTYPE = np.float32

# Set by repro.engine.tracer while tracing a forward pass: a callable
# ``hook(function_cls, args, kwargs, out_tensor)`` invoked after every
# Function.apply.  None (the default) costs one global read per op.
_TRACE_HOOK = None


class Context:
    """Per-op storage connecting a result tensor to its inputs.

    Holds the parent tensors (graph edges), arrays saved for backward, and
    arbitrary keyword attributes stashed by ``forward``.
    """

    __slots__ = ("function", "parents", "saved", "attrs")

    def __init__(self, function: type, parents: Tuple["Tensor", ...]):
        self.function = function
        self.parents = parents
        self.saved: Tuple[np.ndarray, ...] = ()
        self.attrs: dict = {}

    def save_for_backward(self, *arrays: np.ndarray) -> None:
        self.saved = arrays

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Context {self.function.__name__} parents={len(self.parents)}>"


class Function:
    """Base class for differentiable operations.

    Subclasses implement two static methods::

        forward(ctx, *arrays, **kwargs) -> np.ndarray
        backward(ctx, grad_output)      -> tuple of np.ndarray or None

    ``apply`` wires inputs into the autograd graph.  Non-Tensor arguments
    are passed through to ``forward`` untouched and receive no gradient;
    ``backward`` must return exactly one gradient per *Tensor* argument,
    in the order the tensors appeared in the call.
    """

    @staticmethod
    def forward(ctx: Context, *args, **kwargs) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad_output: np.ndarray):
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs) -> "Tensor":
        tensor_args = tuple(a for a in args if isinstance(a, Tensor))
        ctx = Context(cls, tensor_args)
        raw = tuple(a.data if isinstance(a, Tensor) else a for a in args)
        out_data = cls.forward(ctx, *raw, **kwargs)
        requires = autograd.is_grad_enabled() and any(
            t.requires_grad for t in tensor_args
        )
        out = Tensor(out_data, requires_grad=requires, _copy=False)
        if requires:
            out._ctx = ctx
        if _TRACE_HOOK is not None:
            _TRACE_HOOK(cls, args, kwargs, out)
        return out


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over the dimensions that numpy broadcasting expanded, so that
    ``d(a+b)/da`` has ``a``'s shape even when ``a`` was broadcast.
    """
    if grad.shape == shape:
        return grad
    # Sum leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating inputs keep their dtype;
        python scalars/lists become :data:`DEFAULT_DTYPE`.
    requires_grad:
        When True, operations involving this tensor are recorded so
        :meth:`backward` can populate :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _copy: bool = True,
    ):
        arr = np.asarray(data)
        from_numpy = isinstance(data, (np.ndarray, np.generic, Tensor))
        if arr.dtype.kind not in "f" or not from_numpy:
            # ints and python lists/scalars become the default float dtype;
            # float ndarrays/scalars keep their precision (gradcheck: float64)
            arr = arr.astype(DEFAULT_DTYPE)
        elif _copy and isinstance(data, np.ndarray):
            arr = arr.copy()
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._ctx: Optional[Context] = None

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(
            self.data.item()
        )

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        out = Tensor(self.data, requires_grad=False, _copy=False)
        return out

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # autograd
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (i.e. the tensor is treated as a sum of
        its elements); scalar losses simply call ``loss.backward()``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"backward grad shape {grad.shape} != tensor shape {self.data.shape}"
                )

        grads: dict = {id(self): grad}
        for node in autograd.topological_order(self):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._ctx is None:
                if node.requires_grad:
                    if node.grad is None:
                        node.grad = node_grad.astype(node.data.dtype, copy=True)
                    else:
                        node.grad = node.grad + node_grad
                continue
            ctx = node._ctx
            parent_grads = ctx.function.backward(ctx, node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            if len(parent_grads) != len(ctx.parents):
                raise RuntimeError(
                    f"{ctx.function.__name__}.backward returned "
                    f"{len(parent_grads)} grads for {len(ctx.parents)} parents"
                )
            for parent, pgrad in zip(ctx.parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                existing = grads.get(id(parent))
                grads[id(parent)] = pgrad if existing is None else existing + pgrad

    # ------------------------------------------------------------------
    # arithmetic (broadcasting-aware)
    # ------------------------------------------------------------------
    def _ensure(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype), _copy=False)

    def __add__(self, other: ArrayLike) -> "Tensor":
        return Add.apply(self, self._ensure(other))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return Sub.apply(self, self._ensure(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Sub.apply(self._ensure(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return Mul.apply(self, self._ensure(other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return Div.apply(self, self._ensure(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Div.apply(self._ensure(other), self)

    def __neg__(self) -> "Tensor":
        return Neg.apply(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return PowScalar.apply(self, float(exponent))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return MatMul.apply(self, self._ensure(other))

    def __getitem__(self, index) -> "Tensor":
        return GetItem.apply(self, index)

    # comparisons produce plain boolean arrays (no grad)
    def __gt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    # ------------------------------------------------------------------
    # math / reductions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return Exp.apply(self)

    def abs(self) -> "Tensor":
        return Abs.apply(self)

    def log(self) -> "Tensor":
        return Log.apply(self)

    def sqrt(self) -> "Tensor":
        return PowScalar.apply(self, 0.5)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Mean.apply(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance (divides by N, matching BN's batch statistics)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Max.apply(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return Transpose.apply(self, axes=axes)

    def permute(self, *axes) -> "Tensor":
        return self.transpose(*axes)

    def argmax(self, axis=None) -> np.ndarray:
        """Index of maxima (plain array, not differentiable)."""
        return self.data.argmax(axis=axis)


# ----------------------------------------------------------------------
# Core Function implementations
# ----------------------------------------------------------------------
class Add(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.attrs["shapes"] = (a.shape, b.shape)
        return a + b

    @staticmethod
    def backward(ctx, g):
        sa, sb = ctx.attrs["shapes"]
        return _unbroadcast(g, sa), _unbroadcast(g, sb)


class Sub(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.attrs["shapes"] = (a.shape, b.shape)
        return a - b

    @staticmethod
    def backward(ctx, g):
        sa, sb = ctx.attrs["shapes"]
        return _unbroadcast(g, sa), _unbroadcast(-g, sb)


class Mul(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a * b

    @staticmethod
    def backward(ctx, g):
        a, b = ctx.saved
        return _unbroadcast(g * b, a.shape), _unbroadcast(g * a, b.shape)


class Div(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a / b

    @staticmethod
    def backward(ctx, g):
        a, b = ctx.saved
        ga = _unbroadcast(g / b, a.shape)
        gb = _unbroadcast(-g * a / (b * b), b.shape)
        return ga, gb


class Neg(Function):
    @staticmethod
    def forward(ctx, a):
        return -a

    @staticmethod
    def backward(ctx, g):
        return (-g,)


class PowScalar(Function):
    @staticmethod
    def forward(ctx, a, exponent):
        ctx.attrs["exp"] = exponent
        ctx.save_for_backward(a)
        return a ** exponent

    @staticmethod
    def backward(ctx, g):
        (a,) = ctx.saved
        p = ctx.attrs["exp"]
        return (g * p * a ** (p - 1.0),)


class Abs(Function):
    @staticmethod
    def forward(ctx, a):
        ctx.save_for_backward(a)
        return np.abs(a)

    @staticmethod
    def backward(ctx, g):
        (a,) = ctx.saved
        return (g * np.sign(a),)


class Exp(Function):
    @staticmethod
    def forward(ctx, a):
        out = np.exp(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, g):
        (out,) = ctx.saved
        return (g * out,)


class Log(Function):
    @staticmethod
    def forward(ctx, a):
        ctx.save_for_backward(a)
        return np.log(a)

    @staticmethod
    def backward(ctx, g):
        (a,) = ctx.saved
        return (g / a,)


class MatMul(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a @ b

    @staticmethod
    def backward(ctx, g):
        a, b = ctx.saved
        if a.ndim == 2 and b.ndim == 2:
            return g @ b.T, a.T @ g
        # batched matmul: swap the last two axes
        ga = g @ np.swapaxes(b, -1, -2)
        gb = np.swapaxes(a, -1, -2) @ g
        return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)


class Sum(Function):
    @staticmethod
    def forward(ctx, a, axis=None, keepdims=False):
        ctx.attrs.update(shape=a.shape, axis=axis, keepdims=keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx, g):
        shape = ctx.attrs["shape"]
        axis = ctx.attrs["axis"]
        if axis is not None and not ctx.attrs["keepdims"]:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(a % len(shape) for a in axes)
            g = np.expand_dims(g, tuple(sorted(axes)))
        return (np.broadcast_to(g, shape).astype(g.dtype, copy=False).copy(),)


class Mean(Function):
    @staticmethod
    def forward(ctx, a, axis=None, keepdims=False):
        ctx.attrs.update(shape=a.shape, axis=axis, keepdims=keepdims)
        return a.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx, g):
        shape = ctx.attrs["shape"]
        axis = ctx.attrs["axis"]
        if axis is None:
            count = int(np.prod(shape))
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([shape[a % len(shape)] for a in axes]))
            if not ctx.attrs["keepdims"]:
                norm_axes = tuple(sorted(a % len(shape) for a in axes))
                g = np.expand_dims(g, norm_axes)
        scaled = g / count
        return (np.broadcast_to(scaled, shape).astype(g.dtype, copy=False).copy(),)


class Max(Function):
    @staticmethod
    def forward(ctx, a, axis=None, keepdims=False):
        out = a.max(axis=axis, keepdims=keepdims)
        ctx.attrs.update(shape=a.shape, axis=axis, keepdims=keepdims)
        ctx.save_for_backward(a, np.asarray(out))
        return out

    @staticmethod
    def backward(ctx, g):
        a, out = ctx.saved
        axis = ctx.attrs["axis"]
        keepdims = ctx.attrs["keepdims"]
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(sorted(x % a.ndim for x in axes))
            out = np.expand_dims(out, axes)
            g = np.expand_dims(g, axes)
        mask = (a == out).astype(g.dtype)
        # distribute equally among ties (matches subgradient convention)
        counts = mask.sum(
            axis=axis if axis is not None else None,
            keepdims=True,
        )
        return (mask * g / counts,)


class Reshape(Function):
    @staticmethod
    def forward(ctx, a, shape):
        ctx.attrs["shape"] = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx, g):
        return (g.reshape(ctx.attrs["shape"]),)


class Transpose(Function):
    @staticmethod
    def forward(ctx, a, axes):
        ctx.attrs["axes"] = axes
        return np.transpose(a, axes)

    @staticmethod
    def backward(ctx, g):
        axes = ctx.attrs["axes"]
        inverse = np.argsort(axes)
        return (np.transpose(g, inverse),)


class GetItem(Function):
    @staticmethod
    def forward(ctx, a, index):
        ctx.attrs.update(shape=a.shape, index=index)
        return a[index]

    @staticmethod
    def backward(ctx, g):
        out = np.zeros(ctx.attrs["shape"], dtype=g.dtype)
        np.add.at(out, ctx.attrs["index"], g)
        return (out,)


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def zeros(*shape, dtype=DEFAULT_DTYPE, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, _copy=False)


def ones(*shape, dtype=DEFAULT_DTYPE, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, _copy=False)


def randn(
    *shape,
    rng: Optional[np.random.Generator] = None,
    dtype=DEFAULT_DTYPE,
    requires_grad: bool = False,
) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    gen = rng if rng is not None else np.random.default_rng()
    return Tensor(
        gen.standard_normal(shape).astype(dtype),
        requires_grad=requires_grad,
        _copy=False,
    )


def from_numpy(array: np.ndarray, requires_grad: bool = False) -> Tensor:
    """Wrap an existing array without copying."""
    return Tensor(array, requires_grad=requires_grad, _copy=False)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    return _Stack.apply(*tensors, axis=axis)


class _Stack(Function):
    @staticmethod
    def forward(ctx, *arrays, axis=0):
        ctx.attrs["axis"] = axis
        ctx.attrs["count"] = len(arrays)
        return np.stack(arrays, axis=axis)

    @staticmethod
    def backward(ctx, g):
        axis = ctx.attrs["axis"]
        pieces = np.split(g, ctx.attrs["count"], axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    return _Concat.apply(*tensors, axis=axis)


class _Concat(Function):
    @staticmethod
    def forward(ctx, *arrays, axis=0):
        ctx.attrs["axis"] = axis
        ctx.attrs["sizes"] = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx, g):
        axis = ctx.attrs["axis"]
        sizes = ctx.attrs["sizes"]
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(g, splits, axis=axis))
