"""Layer/module system for the numpy NN framework.

Provides the :class:`Module` container abstraction (parameters, buffers,
submodules, train/eval modes, ``state_dict`` round-trips) and the concrete
layers a UFLD/ResNet stack needs.  The API deliberately shadows the PyTorch
subset used by the paper's released description, so the modelling code in
:mod:`repro.models` reads like the original.

:class:`BatchNorm2d` is the layer LD-BN-ADAPT manipulates: it exposes its
running statistics as buffers and its affine scale/shift as parameters, and
supports *statistics refresh* (recomputing mu/sigma from a target batch)
independently from the gamma/beta gradient step.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is registered as a learnable parameter of a Module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and child Modules as attributes; this base
    class tracks them for iteration, mode switching and serialization.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute interception ---------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BN running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    def _set_buffer(self, name: str, array: np.ndarray) -> None:
        """Replace a buffer's contents in place (keeps external references valid)."""
        self._buffers[name][...] = array

    # -- iteration ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def apply(self, fn) -> "Module":
        """Apply ``fn`` to self and every submodule (like torch's Module.apply)."""
        for module in self.modules():
            fn(module)
        return self

    # -- modes ------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        for p in self.parameters():
            if set_to_none:
                p.grad = None
            elif p.grad is not None:
                p.grad.fill(0.0)

    def requires_grad_(self, flag: bool = True) -> "Module":
        for p in self.parameters():
            p.requires_grad = flag
        return self

    # -- serialization ------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = []
        for name, param in own_params.items():
            if name in state:
                if param.data.shape != state[name].shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{param.data.shape} vs {state[name].shape}"
                    )
                param.data[...] = state[name]
            else:
                missing.append(name)
        for name, buf in own_buffers.items():
            if name in state:
                buf[...] = state[name]
            else:
                missing.append(name)
        unexpected = [
            k for k in state if k not in own_params and k not in own_buffers
        ]
        if strict and (missing or unexpected):
            raise KeyError(
                f"load_state_dict mismatch: missing={missing} unexpected={unexpected}"
            )

    # -- call -----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count."""
        return sum(
            p.size
            for p in self.parameters()
            if (p.requires_grad or not trainable_only)
        )

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class Identity(Module):
    """No-op module (useful for optional downsample paths)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)

    def __repr__(self) -> str:
        return f"Flatten(start_dim={self.start_dim})"


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Conv2d(Module):
    """2-D convolution layer (cross-correlation, like PyTorch)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.weight = Parameter(np.empty((out_channels, in_channels, kh, kw)))
        init.kaiming_uniform_(self.weight, rng=rng)
        if bias:
            self.bias = Parameter(np.empty(out_channels))
            init.uniform_bias_(self.bias, self.weight.shape, rng=rng)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )


class Linear(Module):
    """Affine layer y = x W^T + b."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=rng)
        if bias:
            self.bias = Parameter(np.empty(out_features))
            init.uniform_bias_(self.bias, self.weight.shape, rng=rng)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class _BatchNormBase(Module):
    """Shared implementation for BatchNorm1d/2d.

    * ``weight``/``bias`` are the affine gamma/beta — the only parameters
      LD-BN-ADAPT optimizes.
    * ``running_mean``/``running_var`` are buffers; the adaptation's
      *statistics refresh* step replaces them with target-batch statistics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float64))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float64))
        self.register_buffer("num_batches_tracked", np.zeros(1, dtype=np.int64))
        # Optional (scale, shift) pair of (N, C) arrays: when set, eval-mode
        # forward normalizes each *sample* with its own statistics instead of
        # this module's running buffers.  The fleet-serving subsystem uses
        # this to batch frames from many streams (each with its own adapted
        # BN state) through one shared forward pass — see repro.serve.streams.
        self.per_sample_stats: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _param_shape(self, ndim: int) -> Tuple[int, ...]:
        if ndim == 4:
            return (1, self.num_features, 1, 1)
        return (1, self.num_features)

    def forward(self, x: Tensor) -> Tensor:
        self._check_input(x)
        if self.per_sample_stats is not None and not self.training:
            return self._per_sample_forward(x)
        shape = self._param_shape(x.ndim)
        gamma = self.weight.reshape(*shape)
        beta = self.bias.reshape(*shape)
        if self.training:
            self.num_batches_tracked += 1
        return F.batch_norm(
            x,
            gamma,
            beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def _check_input(self, x: Tensor) -> None:
        raise NotImplementedError

    def _per_sample_forward(self, x: Tensor) -> Tensor:
        """Eval-mode normalization with per-sample precomputed affines.

        Eval-mode batch norm is an affine map per channel; with per-sample
        ``scale``/``shift`` arrays of shape ``(N, C)`` the same holds per
        sample, which lets one batched forward serve inputs whose BN state
        differs (multi-stream serving).  Inference-only: gradients through
        the folded constants are not meaningful, so run under ``no_grad``.
        """
        scale, shift = self.per_sample_stats
        if scale.shape != (x.shape[0], self.num_features):
            raise ValueError(
                f"per_sample_stats shaped {scale.shape}, expected "
                f"({x.shape[0]}, {self.num_features})"
            )
        shape = (x.shape[0], self.num_features) + (1,) * (x.ndim - 2)
        return x * Tensor(scale.reshape(shape), _copy=False) + Tensor(
            shift.reshape(shape), _copy=False
        )

    def refresh_statistics(self, x: Tensor) -> None:
        """Replace running statistics with the statistics of batch ``x``.

        This is step (i) of LD-BN-ADAPT: standardize with the *target*
        data's mu/sigma instead of the stale source-domain running stats.
        No graph is recorded.
        """
        axes = (0, 2, 3) if x.ndim == 4 else (0,)
        self._set_buffer("running_mean", x.data.mean(axis=axes))
        self._set_buffer("running_var", x.data.var(axis=axes))

    def __repr__(self) -> str:
        return (
            f"{self.__class__.__name__}({self.num_features}, eps={self.eps}, "
            f"momentum={self.momentum})"
        )


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over (N, C, H, W) inputs, per channel."""

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got {x.ndim}-D")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d({self.num_features}) got {x.shape[1]} channels"
            )


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over (N, C) inputs, per feature."""

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects 2-D input, got {x.ndim}-D")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d({self.num_features}) got {x.shape[1]} features"
            )


class MaxPool2d(Module):
    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"MaxPool2d(kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class AvgPool2d(Module):
    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size=1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)

    def __repr__(self) -> str:
        return f"AdaptiveAvgPool2d(output_size={self.output_size})"
