"""Differentiable neural-network operations on top of :mod:`repro.nn.tensor`.

Everything a UFLD/ResNet model needs, each with a hand-derived backward pass
that is validated by finite differences in the test suite:

* ``conv2d`` — im2col/col2im based 2-D convolution (stride, padding);
* ``max_pool2d`` / ``avg_pool2d`` / ``adaptive_avg_pool2d``;
* ``relu``, ``sigmoid``, ``tanh``, ``dropout``;
* ``softmax`` / ``log_softmax`` (numerically stable) and
  ``cross_entropy`` / ``nll_loss``;
* ``batch_norm`` — the centrepiece for LD-BN-ADAPT, with the full
  train-mode backward (gradients flow through the batch statistics,
  matching PyTorch semantics) and an eval-mode path using running stats;
* ``linear`` and ``flatten`` conveniences.

All functions accept and return :class:`~repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Context, Function, Tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a 2-tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


# ----------------------------------------------------------------------
# im2col machinery (shared by conv and pooling)
# ----------------------------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def _im2col_indices(
    channels: int,
    height: int,
    width: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
):
    """Build gather indices mapping a padded image to its column matrix.

    Returns ``(k, i, j, out_h, out_w)`` where indexing a padded ``(N, C,
    H+2p, W+2p)`` array with ``[:, k, i, j]`` yields columns of shape
    ``(N, C*kh*kw, out_h*out_w)``.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = _conv_output_size(height, kh, sh, ph)
    out_w = _conv_output_size(width, kw, sw, pw)

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
):
    """Expand ``x`` (N,C,H,W) into columns (N, C*kh*kw, out_h*out_w)."""
    n, c, h, w = x.shape
    ph, pw = padding
    if ph or pw:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (ph, ph), (pw, pw)),
            mode="constant",
        )
    k, i, j, out_h, out_w = _im2col_indices(c, h, w, kernel, stride, padding)
    cols = x[:, k, i, j]
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add columns back to image space (adjoint of :func:`_im2col`)."""
    n, c, h, w = x_shape
    ph, pw = padding
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    k, i, j, _, _ = _im2col_indices(c, h, w, kernel, stride, padding)
    np.add.at(padded, (slice(None), k, i, j), cols)
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------
class _Conv2d(Function):
    @staticmethod
    def forward(ctx, x, weight, bias, stride, padding):
        stride = _pair(stride)
        padding = _pair(padding)
        out_channels, in_channels, kh, kw = weight.shape
        if x.shape[1] != in_channels:
            raise ValueError(
                f"conv2d: input has {x.shape[1]} channels, weight expects {in_channels}"
            )
        cols, out_h, out_w = _im2col(x, (kh, kw), stride, padding)
        w_mat = weight.reshape(out_channels, -1)
        # (F, K) @ (N, K, P) -> (N, F, P).  The compiled inference engine
        # (repro.engine) replays this exact matmul kernel with out=, so the
        # two paths stay bit-identical.
        out = np.matmul(w_mat, cols)
        if bias is not None:
            out += bias.reshape(1, -1, 1)
        out = out.reshape(x.shape[0], out_channels, out_h, out_w)
        ctx.save_for_backward(cols, w_mat)
        ctx.attrs.update(
            x_shape=x.shape,
            w_shape=weight.shape,
            stride=stride,
            padding=padding,
            has_bias=bias is not None,
        )
        return out

    @staticmethod
    def backward(ctx, g):
        cols, w_mat = ctx.saved
        x_shape = ctx.attrs["x_shape"]
        w_shape = ctx.attrs["w_shape"]
        out_channels = w_shape[0]
        kh, kw = w_shape[2], w_shape[3]
        n = g.shape[0]
        g_mat = g.reshape(n, out_channels, -1)

        grad_w = np.einsum("nfp,nkp->fk", g_mat, cols, optimize=True)
        grad_w = grad_w.reshape(w_shape)
        grad_b = g_mat.sum(axis=(0, 2)) if ctx.attrs["has_bias"] else None
        grad_cols = np.einsum("fk,nfp->nkp", w_mat, g_mat, optimize=True)
        grad_x = _col2im(
            grad_cols, x_shape, (kh, kw), ctx.attrs["stride"], ctx.attrs["padding"]
        )
        if ctx.attrs["has_bias"]:
            return grad_x, grad_w, grad_b
        return grad_x, grad_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution over an (N, C, H, W) input.

    Implemented with im2col so the inner loop is a single GEMM — the same
    strategy cuDNN uses for small kernels, and fast enough in numpy for the
    scaled-down experiment presets.
    """
    if bias is None:
        return _Conv2d.apply(x, weight, None, stride, padding)
    return _Conv2d.apply(x, weight, bias, stride, padding)


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------
_POOL_GRAD_SCRATCH: dict = {}
_POOL_GRAD_SCRATCH_MAX = 8  # the serving loop only ever sees a few shapes


def _pool_grad_buffer(shape: Tuple[int, int, int], dtype) -> np.ndarray:
    """Reused zero-filled scratch for max-pool column gradients.

    The real-time loop calls max-pool backward once per adaptation step
    with a handful of distinct shapes; reusing one buffer per (shape,
    dtype) avoids a fresh dense allocation every call.  The cache is
    bounded (FIFO eviction) so shape sweeps don't pin memory forever.
    """
    key = (shape, np.dtype(dtype).str)
    buf = _POOL_GRAD_SCRATCH.get(key)
    if buf is None:
        if len(_POOL_GRAD_SCRATCH) >= _POOL_GRAD_SCRATCH_MAX:
            _POOL_GRAD_SCRATCH.pop(next(iter(_POOL_GRAD_SCRATCH)))
        buf = np.zeros(shape, dtype=dtype)
        _POOL_GRAD_SCRATCH[key] = buf
    else:
        buf.fill(0.0)
    return buf


class _MaxPool2d(Function):
    @staticmethod
    def forward(ctx, x, kernel, stride, padding):
        kernel = _pair(kernel)
        stride = _pair(stride if stride is not None else kernel)
        padding = _pair(padding)
        n, c, h, w = x.shape
        # treat channels as batch so pooling windows never mix channels
        x_flat = x.reshape(n * c, 1, h, w)
        if padding[0] or padding[1]:
            # pad with -inf so padded cells never win the max
            x_flat = np.pad(
                x_flat,
                ((0, 0), (0, 0), (padding[0], padding[0]), (padding[1], padding[1])),
                mode="constant",
                constant_values=-np.inf,
            )
            pad_now = (0, 0)
            h_eff, w_eff = x_flat.shape[2], x_flat.shape[3]
        else:
            pad_now = (0, 0)
            h_eff, w_eff = h, w
        cols, out_h, out_w = _im2col(x_flat, kernel, stride, pad_now)
        # cols: (n*c, kh*kw, P)
        arg = cols.argmax(axis=1)
        out = cols.max(axis=1).reshape(n, c, out_h, out_w)
        ctx.attrs.update(
            x_shape=(n, c, h, w),
            padded_shape=(n * c, 1, h_eff, w_eff),
            kernel=kernel,
            stride=stride,
            padding=padding,
            arg=arg,
        )
        return out

    @staticmethod
    def backward(ctx, g):
        n, c, h, w = ctx.attrs["x_shape"]
        arg = ctx.attrs["arg"]  # (n*c, P) winning window offsets
        kernel = ctx.attrs["kernel"]
        stride = ctx.attrs["stride"]
        ph, pw = ctx.attrs["padding"]
        g_flat = g.reshape(n * c, -1)
        cols_shape = (arg.shape[0], kernel[0] * kernel[1], arg.shape[1])
        grad_cols = _pool_grad_buffer(cols_shape, g.dtype)
        np.put_along_axis(grad_cols, arg[:, None, :], g_flat[:, None, :], axis=1)
        _, _, h_eff, w_eff = ctx.attrs["padded_shape"]
        grad_padded = _col2im(
            grad_cols, (n * c, 1, h_eff, w_eff), kernel, stride, (0, 0)
        )
        grad_padded = grad_padded.reshape(n, c, h_eff, w_eff)
        if ph or pw:
            grad_padded = grad_padded[:, :, ph : ph + h, pw : pw + w]
        return (grad_padded,)


def max_pool2d(
    x: Tensor,
    kernel_size: IntPair,
    stride: Optional[IntPair] = None,
    padding: IntPair = 0,
) -> Tensor:
    """Max pooling with arbitrary kernel/stride/padding (N, C, H, W)."""
    return _MaxPool2d.apply(x, kernel_size, stride, padding)


class _AvgPool2d(Function):
    @staticmethod
    def forward(ctx, x, kernel, stride, padding):
        kernel = _pair(kernel)
        stride = _pair(stride if stride is not None else kernel)
        padding = _pair(padding)
        n, c, h, w = x.shape
        x_flat = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = _im2col(x_flat, kernel, stride, padding)
        out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
        ctx.attrs.update(
            x_shape=(n, c, h, w),
            kernel=kernel,
            stride=stride,
            padding=padding,
            cols_shape=cols.shape,
        )
        return out

    @staticmethod
    def backward(ctx, g):
        n, c, h, w = ctx.attrs["x_shape"]
        kernel = ctx.attrs["kernel"]
        window = kernel[0] * kernel[1]
        g_flat = g.reshape(n * c, 1, -1) / window
        grad_cols = np.broadcast_to(
            g_flat, ctx.attrs["cols_shape"]
        ).astype(g.dtype, copy=True)
        grad = _col2im(
            grad_cols,
            (n * c, 1, h, w),
            kernel,
            ctx.attrs["stride"],
            ctx.attrs["padding"],
        )
        return (grad.reshape(n, c, h, w),)


def avg_pool2d(
    x: Tensor,
    kernel_size: IntPair,
    stride: Optional[IntPair] = None,
    padding: IntPair = 0,
) -> Tensor:
    """Average pooling (N, C, H, W)."""
    return _AvgPool2d.apply(x, kernel_size, stride, padding)


def adaptive_avg_pool2d(x: Tensor, output_size: IntPair = 1) -> Tensor:
    """Adaptive average pooling; only the global (1, 1) case is needed by
    the ResNet classification stem, which reduces to a spatial mean."""
    oh, ow = _pair(output_size)
    if (oh, ow) != (1, 1):
        raise NotImplementedError("only global adaptive average pooling is supported")
    pooled = x.mean(axis=(2, 3), keepdims=True)
    return pooled


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------
class _ReLU(Function):
    @staticmethod
    def forward(ctx, x):
        mask = x > 0
        ctx.attrs["mask"] = mask
        return np.where(mask, x, 0.0).astype(x.dtype, copy=False)

    @staticmethod
    def backward(ctx, g):
        return (g * ctx.attrs["mask"],)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, elementwise max(x, 0)."""
    return _ReLU.apply(x)


class _Sigmoid(Function):
    @staticmethod
    def forward(ctx, x):
        out = 1.0 / (1.0 + np.exp(-x))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, g):
        (out,) = ctx.saved
        return (g * out * (1.0 - out),)


def sigmoid(x: Tensor) -> Tensor:
    return _Sigmoid.apply(x)


class _Tanh(Function):
    @staticmethod
    def forward(ctx, x):
        out = np.tanh(x)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, g):
        (out,) = ctx.saved
        return (g * (1.0 - out * out),)


def tanh(x: Tensor) -> Tensor:
    return _Tanh.apply(x)


class _Dropout(Function):
    @staticmethod
    def forward(ctx, x, p, rng):
        keep = 1.0 - p
        gen = rng if rng is not None else np.random.default_rng()
        mask = (gen.random(x.shape) < keep).astype(x.dtype) / keep
        ctx.attrs["mask"] = mask
        return x * mask

    @staticmethod
    def backward(ctx, g):
        return (g * ctx.attrs["mask"],)


def dropout(
    x: Tensor,
    p: float = 0.5,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout; identity in eval mode."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    return _Dropout.apply(x, p, rng)


# ----------------------------------------------------------------------
# softmax family
# ----------------------------------------------------------------------
class _LogSoftmax(Function):
    @staticmethod
    def forward(ctx, x, axis):
        shifted = x - x.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_sum
        ctx.attrs["axis"] = axis
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, g):
        (out,) = ctx.saved
        axis = ctx.attrs["axis"]
        softmax = np.exp(out)
        return (g - softmax * g.sum(axis=axis, keepdims=True),)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return _LogSoftmax.apply(x, axis)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (via exp(log_softmax) for stability)."""
    return log_softmax(x, axis=axis).exp()


class _NLLLoss(Function):
    """Negative log-likelihood over pre-computed log-probabilities.

    ``log_probs`` has shape (N, C) (or (N, C, ...) flattened by the
    caller); ``targets`` are integer class ids of shape (N,).
    """

    @staticmethod
    def forward(ctx, log_probs, targets, reduction):
        n = log_probs.shape[0]
        rows = np.arange(n)
        picked = log_probs[rows, targets]
        ctx.attrs.update(shape=log_probs.shape, targets=targets, reduction=reduction)
        if reduction == "mean":
            return np.asarray(-picked.mean(), dtype=log_probs.dtype)
        if reduction == "sum":
            return np.asarray(-picked.sum(), dtype=log_probs.dtype)
        return -picked

    @staticmethod
    def backward(ctx, g):
        shape = ctx.attrs["shape"]
        targets = ctx.attrs["targets"]
        reduction = ctx.attrs["reduction"]
        n = shape[0]
        grad = np.zeros(shape, dtype=g.dtype)
        rows = np.arange(n)
        if reduction == "mean":
            grad[rows, targets] = -g / n
        elif reduction == "sum":
            grad[rows, targets] = -g
        else:
            grad[rows, targets] = -g
        return (grad,)


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log likelihood on (N, C) log-probabilities."""
    if reduction not in ("mean", "sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError("nll_loss expects 1-D integer targets")
    return _NLLLoss.apply(log_probs, targets.astype(np.int64), reduction)


def cross_entropy(
    logits: Tensor, targets: np.ndarray, axis: int = 1, reduction: str = "mean"
) -> Tensor:
    """Cross entropy between raw logits and integer class targets.

    Supports arbitrary trailing dimensions: logits of shape
    ``(N, C, d1, d2, ...)`` with targets ``(N, d1, d2, ...)`` are flattened
    to rows, matching PyTorch's convention — which is exactly the layout
    the UFLD row-anchor classification loss uses.
    """
    if axis != 1 and logits.ndim > 1:
        order = list(range(logits.ndim))
        order.insert(1, order.pop(axis))
        logits = logits.transpose(*order)
    n_class = logits.shape[1]
    targets = np.asarray(targets)
    if logits.ndim > 2:
        rest = int(np.prod(logits.shape[2:]))
        flat = logits.transpose(0, *range(2, logits.ndim), 1).reshape(-1, n_class)
        targets = targets.reshape(-1)
        log_probs = log_softmax(flat, axis=-1)
        return nll_loss(log_probs, targets, reduction=reduction)
    log_probs = log_softmax(logits, axis=-1)
    return nll_loss(log_probs, targets, reduction=reduction)


# ----------------------------------------------------------------------
# batch normalization — the operation LD-BN-ADAPT adapts
# ----------------------------------------------------------------------
class _BatchNorm(Function):
    """Batch normalization with full train-mode backward.

    Gradients flow through the batch statistics (mean and variance), the
    same semantics PyTorch implements; this matters for the entropy-
    minimization step, where a single backward pass updates gamma/beta
    while x is normalized by the *current batch's* statistics.
    """

    @staticmethod
    def forward(ctx, x, gamma, beta, mean, var, axes, eps):
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x - mean) * inv_std
        shape = gamma.shape  # broadcast shape, e.g. (1, C, 1, 1)
        out = gamma * x_hat + beta
        ctx.save_for_backward(x_hat, inv_std, gamma)
        ctx.attrs.update(axes=axes, eps=eps)
        return out.astype(x.dtype, copy=False)

    @staticmethod
    def backward(ctx, g):
        x_hat, inv_std, gamma = ctx.saved
        axes = ctx.attrs["axes"]
        m = float(np.prod([g.shape[a] for a in axes]))
        grad_gamma = (g * x_hat).sum(axis=axes, keepdims=True)
        grad_beta = g.sum(axis=axes, keepdims=True)
        dx_hat = g * gamma
        # classic fused BN backward (through batch mean and variance)
        grad_x = (
            inv_std
            / m
            * (
                m * dx_hat
                - dx_hat.sum(axis=axes, keepdims=True)
                - x_hat * (dx_hat * x_hat).sum(axis=axes, keepdims=True)
            )
        )
        # mean/var enter as plain arrays (non-parents): no gradient entries
        return grad_x.astype(g.dtype, copy=False), grad_gamma, grad_beta


class _BatchNormEval(Function):
    """Eval-mode BN: running statistics are constants."""

    @staticmethod
    def forward(ctx, x, gamma, beta, mean, var, axes, eps):
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x - mean) * inv_std
        ctx.save_for_backward(x_hat, inv_std, gamma)
        ctx.attrs.update(axes=axes)
        return (gamma * x_hat + beta).astype(x.dtype, copy=False)

    @staticmethod
    def backward(ctx, g):
        x_hat, inv_std, gamma = ctx.saved
        axes = ctx.attrs["axes"]
        grad_gamma = (g * x_hat).sum(axis=axes, keepdims=True)
        grad_beta = g.sum(axis=axes, keepdims=True)
        grad_x = (g * gamma * inv_std).astype(g.dtype, copy=False)
        return grad_x, grad_gamma, grad_beta


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Functional batch normalization for (N, C) or (N, C, H, W) inputs.

    In training mode the batch statistics normalize ``x`` (with gradient
    flowing through them) and the running statistics are updated in-place
    with exponential momentum.  In eval mode the running statistics are
    used as constants.

    ``gamma``/``beta`` must already be shaped for broadcasting, e.g.
    ``(1, C, 1, 1)`` for 4-D inputs — :class:`repro.nn.modules.BatchNorm2d`
    handles that reshape.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        stat_shape = (1, x.shape[1], 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        stat_shape = (1, x.shape[1])
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        batch_mean = x.data.mean(axis=axes, keepdims=True)
        batch_var = x.data.var(axis=axes, keepdims=True)
        # update running stats in place (buffers are flat C-vectors)
        running_mean *= 1.0 - momentum
        running_mean += momentum * batch_mean.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * batch_var.reshape(-1)
        return _BatchNorm.apply(x, gamma, beta, batch_mean, batch_var, axes, eps)

    mean = running_mean.reshape(stat_shape)
    var = running_var.reshape(stat_shape)
    return _BatchNormEval.apply(x, gamma, beta, mean, var, axes, eps)


# ----------------------------------------------------------------------
# linear / misc
# ----------------------------------------------------------------------
class _Linear(Function):
    @staticmethod
    def forward(ctx, x, weight, bias):
        ctx.save_for_backward(x, weight)
        ctx.attrs["has_bias"] = bias is not None
        out = x @ weight.T
        if bias is not None:
            out += bias
        return out

    @staticmethod
    def backward(ctx, g):
        x, weight = ctx.saved
        grad_x = g @ weight
        grad_w = g.T @ x
        if ctx.attrs["has_bias"]:
            return grad_x, grad_w, g.sum(axis=0)
        return grad_x, grad_w


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for (N, in) inputs."""
    if bias is None:
        return _Linear.apply(x, weight, None)
    return _Linear.apply(x, weight, bias)


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    """Flatten all dims from ``start_dim`` onward."""
    return x.flatten(start_dim)


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    diff = pred - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq
