"""Model checkpoint save/load for the numpy NN framework.

Checkpoints are plain ``.npz`` archives mapping state-dict keys to arrays,
plus an optional JSON metadata blob (model preset name, training config)
stored under a reserved key.  This keeps checkpoints portable, diffable and
dependency-free.

Writes are **atomic**: the archive is written to ``path + ".tmp"`` and
moved into place with :func:`os.replace`, so a crash mid-write can never
leave a torn archive under the real path — readers see either the old
complete checkpoint or the new complete one.  Every archive additionally
embeds a **key manifest** in its metadata; strict loads verify the stored
arrays against it, so a truncated or mixed-up archive is rejected instead
of silently restoring partial state.

:func:`save_arrays` / :func:`load_arrays` are the raw layer (any string →
array mapping, e.g. the fleet's per-session checkpoints);
:func:`save_checkpoint` / :func:`load_checkpoint` specialize them to
module state dicts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .modules import Module

_META_KEY = "__repro_meta__"
_MANIFEST_KEY = "__keys__"


def save_arrays(
    path: str,
    arrays: Mapping[str, np.ndarray],
    metadata: Optional[dict] = None,
) -> str:
    """Atomically serialize a named-array mapping (plus metadata) to ``path``.

    Parent directories are created as needed; a ``.npz`` suffix is added
    if missing.  The sorted key list is embedded in the metadata blob as
    a manifest for :func:`load_arrays`' strict check.  Returns the final
    path written.
    """
    if _META_KEY in arrays:
        raise ValueError(f"array key {_META_KEY!r} is reserved for metadata")
    meta = dict(metadata) if metadata is not None else {}
    meta[_MANIFEST_KEY] = sorted(arrays)
    payload: Dict[str, np.ndarray] = {
        k: np.asarray(v) for k, v in arrays.items()
    }
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    final = path if path.endswith(".npz") else path + ".npz"
    directory = os.path.dirname(os.path.abspath(final))
    os.makedirs(directory, exist_ok=True)
    tmp = final + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez(fh, **payload)
    os.replace(tmp, final)
    return final


def load_arrays(
    path: str,
    strict: bool = True,
) -> Tuple[Dict[str, np.ndarray], Optional[dict]]:
    """Load a named-array archive; returns ``(arrays, metadata)``.

    With ``strict=True`` (default) the stored arrays are verified against
    the archive's embedded key manifest: missing or unexpected keys raise
    ``KeyError``.  Archives written before the manifest existed carry no
    manifest and pass unchecked.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as data:
        state = {k: data[k] for k in data.files if k != _META_KEY}
        metadata = None
        if _META_KEY in data.files:
            metadata = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
    manifest = None
    if metadata is not None:
        manifest = metadata.pop(_MANIFEST_KEY, None)
        if not metadata:
            metadata = None
    if strict and manifest is not None:
        expected, actual = set(manifest), set(state)
        if expected != actual:
            missing = sorted(expected - actual)
            unexpected = sorted(actual - expected)
            raise KeyError(
                f"checkpoint {path!r} does not match its key manifest: "
                f"missing {missing}, unexpected {unexpected}"
            )
    return state, metadata


def save_checkpoint(
    path: str,
    module: Module,
    metadata: Optional[dict] = None,
) -> None:
    """Serialize ``module.state_dict()`` (and optional metadata) to ``path``.

    Atomic (tmp + ``os.replace``) with an embedded key manifest — see
    :func:`save_arrays`.
    """
    save_arrays(path, module.state_dict(), metadata)


def load_checkpoint(
    path: str,
    module: Optional[Module] = None,
    strict: bool = True,
) -> Tuple[Dict[str, np.ndarray], Optional[dict]]:
    """Load a checkpoint; optionally restore it into ``module``.

    Returns ``(state_dict, metadata)``.  ``metadata`` is None when the
    checkpoint was saved without it.  ``strict`` both verifies the
    archive against its key manifest (a torn or mismatched file is
    rejected before any state is touched) and, when ``module`` is given,
    enforces exact state-dict key agreement.
    """
    state, metadata = load_arrays(path, strict=strict)
    if module is not None:
        module.load_state_dict(state, strict=strict)
    return state, metadata
