"""Model checkpoint save/load for the numpy NN framework.

Checkpoints are plain ``.npz`` archives mapping state-dict keys to arrays,
plus an optional JSON metadata blob (model preset name, training config)
stored under a reserved key.  This keeps checkpoints portable, diffable and
dependency-free.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from .modules import Module

_META_KEY = "__repro_meta__"


def save_checkpoint(
    path: str,
    module: Module,
    metadata: Optional[dict] = None,
) -> None:
    """Serialize ``module.state_dict()`` (and optional metadata) to ``path``.

    Parent directories are created as needed; a ``.npz`` suffix is added by
    numpy if missing.
    """
    state = module.state_dict()
    arrays: Dict[str, np.ndarray] = {k: np.asarray(v) for k, v in state.items()}
    if metadata is not None:
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(metadata, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_checkpoint(
    path: str,
    module: Optional[Module] = None,
    strict: bool = True,
) -> Tuple[Dict[str, np.ndarray], Optional[dict]]:
    """Load a checkpoint; optionally restore it into ``module``.

    Returns ``(state_dict, metadata)``.  ``metadata`` is None when the
    checkpoint was saved without it.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as data:
        state = {k: data[k] for k in data.files if k != _META_KEY}
        metadata = None
        if _META_KEY in data.files:
            metadata = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
    if module is not None:
        module.load_state_dict(state, strict=strict)
    return state, metadata
