"""Autograd bookkeeping: global gradient mode and numerical grad checking.

This module holds the process-wide "is gradient tracking enabled" flag used
by :class:`repro.nn.tensor.Tensor`, the :func:`no_grad` /:func:`enable_grad`
context managers, and :func:`gradcheck`, a central-finite-difference checker
used throughout the test suite to validate every differentiable op.

The design mirrors the small, explicit core of PyTorch's autograd: a tensor
produced by an operation remembers the :class:`~repro.nn.tensor.Function`
that created it, and ``backward()`` walks the resulting DAG in reverse
topological order.  Keeping the mode flag here (rather than on ``Tensor``)
avoids a circular import between the tensor and functional modules.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable autograd graph recording."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking.

    Used for inference and for the statistics-only part of BN adaptation
    (recomputing mu/sigma must not build a graph).

    >>> from repro.nn import tensor as T
    >>> with no_grad():
    ...     y = T.Tensor([1.0], requires_grad=True) * 2.0
    >>> y.requires_grad
    False
    """
    previous = _GRAD_ENABLED
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextlib.contextmanager
def enable_grad():
    """Context manager that (re-)enables gradient tracking."""
    previous = _GRAD_ENABLED
    set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)


# ----------------------------------------------------------------------
# compiled-inference mode
# ----------------------------------------------------------------------
# When True (default), eval-mode serving loops (RealTimePipeline,
# FleetServer) run forwards through the compiled engine in repro.engine:
# traced static plans with fused conv-BN-ReLU stages and arena buffer
# reuse, bit-exact against the eager path.  The flag lives here, next to
# the grad mode, so repro.nn can expose it without importing the engine.
_INFERENCE_MODE = True


def compiled_inference_enabled() -> bool:
    """Return True when serving loops should use the compiled engine."""
    return _INFERENCE_MODE


@contextlib.contextmanager
def inference_mode(mode: bool = True):
    """Escape hatch for the compiled inference engine.

    ``with inference_mode(False):`` forces the eager autograd forward in
    every serving loop (useful for debugging a suspected engine/parity
    issue or for profiling the eager path); ``inference_mode(True)`` is
    the default state.  Outputs are bit-exact either way — this toggles
    *how* the forward runs, never what it computes.
    """
    global _INFERENCE_MODE
    previous = _INFERENCE_MODE
    _INFERENCE_MODE = bool(mode)
    try:
        yield
    finally:
        _INFERENCE_MODE = previous


# When True (default), LD-BN-ADAPT entropy steps run through the compiled
# adaptation plan in repro.engine (traced train-mode forward + static
# backward restricted to BN gamma/beta).  The eager autograd step remains
# the correctness oracle; flip this flag to fall back to it.
_ADAPTATION_MODE = True


def compiled_adaptation_enabled() -> bool:
    """Return True when adaptation steps should use the compiled plan."""
    return _ADAPTATION_MODE


@contextlib.contextmanager
def adaptation_mode(mode: bool = True):
    """Escape hatch for the compiled adaptation step.

    ``with adaptation_mode(False):`` forces the eager autograd
    forward+backward for every LD-BN-ADAPT entropy step (the correctness
    oracle the compiled plan is validated against); ``adaptation_mode(
    True)`` is the default state.  The compiled step issues the same
    kernels on the same values, minus graph bookkeeping and the unused
    conv/linear weight gradients.
    """
    global _ADAPTATION_MODE
    previous = _ADAPTATION_MODE
    _ADAPTATION_MODE = bool(mode)
    try:
        yield
    finally:
        _ADAPTATION_MODE = previous


def _central_difference(
    func: Callable[[], "np.ndarray"],
    array: np.ndarray,
    index: tuple,
    eps: float,
) -> np.ndarray:
    """Numerically estimate d func() / d array[index] via central differences."""
    original = array[index]
    array[index] = original + eps
    plus = np.asarray(func(), dtype=np.float64).copy()
    array[index] = original - eps
    minus = np.asarray(func(), dtype=np.float64).copy()
    array[index] = original
    return (plus - minus) / (2.0 * eps)


def gradcheck(
    fn: Callable[..., "object"],
    inputs: Sequence["object"],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
    raise_on_failure: bool = True,
) -> bool:
    """Check autograd gradients of ``fn`` against finite differences.

    Parameters
    ----------
    fn:
        Callable taking the tensors in ``inputs`` and returning a single
        Tensor (any shape; it is reduced with ``sum()`` internally so the
        scalar chain rule applies).
    inputs:
        Sequence of :class:`~repro.nn.tensor.Tensor`.  Gradients are checked
        for every input with ``requires_grad=True``.  Inputs should be
        float64 for meaningful tolerances.
    eps, atol, rtol:
        Finite-difference step and comparison tolerances.
    raise_on_failure:
        When True (default) raise ``AssertionError`` with a diagnostic;
        otherwise return False.

    Returns
    -------
    bool
        True when all analytic gradients match the numerical estimates.
    """
    from .tensor import Tensor  # local import to avoid cycle

    tensors = [t for t in inputs if isinstance(t, Tensor)]
    for t in tensors:
        if t.data.dtype != np.float64:
            raise ValueError("gradcheck requires float64 inputs for stability")
        t.grad = None

    out = fn(*inputs)
    total = out.sum()
    total.backward()

    def forward_value() -> np.ndarray:
        with no_grad():
            result = fn(*inputs)
        return result.data.sum()

    ok = True
    for arg_idx, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = np.zeros_like(t.data)
        it = np.nditer(t.data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            numeric[idx] = _central_difference(forward_value, t.data, idx, eps)
            it.iternext()
        close = np.allclose(analytic, numeric, atol=atol, rtol=rtol)
        if not close:
            ok = False
            if raise_on_failure:
                diff = np.abs(analytic - numeric)
                worst = np.unravel_index(np.argmax(diff), diff.shape)
                raise AssertionError(
                    f"gradcheck failed for input #{arg_idx}: "
                    f"max |analytic-numeric| = {diff.max():.3e} at {worst} "
                    f"(analytic={analytic[worst]:.6e}, numeric={numeric[worst]:.6e})"
                )
    return ok


def topological_order(root: "object") -> Iterable["object"]:
    """Yield tensors of the autograd graph rooted at ``root`` in reverse
    topological order (root first).

    Iterative DFS — recursion would overflow on deep ResNet graphs.
    """
    seen = set()
    order = []
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        ctx = getattr(node, "_ctx", None)
        if ctx is not None:
            for parent in ctx.parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
    return reversed(order)
