"""Ultra-Fast Lane Detection (UFLD) model, losses and decoding.

UFLD [Qin et al., ECCV 2020] formulates lane detection as *row-anchor
classification*: for each of ``num_anchors`` predefined image rows and each
of ``num_lanes`` lane slots, the model picks one of ``num_cells`` horizontal
grid cells (or an extra "absent" class) where the lane crosses that row.
The paper under reproduction adapts exactly this model, with gridcells=100,
rowanchors=56, numlanes in {2, 4}.

This module provides:

* :class:`UFLDConfig` — architecture + label-space hyper-parameters, with
  the paper-size and scaled-down presets built in via
  :mod:`repro.models.registry`;
* :class:`UFLD` — backbone + squeeze conv + 2-layer MLP head producing
  ``(N, num_cells+1, num_anchors, num_lanes)`` logits;
* :func:`ufld_loss` — cross-entropy plus UFLD's structural similarity loss;
* :func:`decode_predictions` — logits → per-anchor lane x-positions, with
  argmax or soft-expectation localization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from .resnet import ResNetBackbone
from .spec import ModelSpec, ufld_spec


@dataclass(frozen=True)
class UFLDConfig:
    """Hyper-parameters of a UFLD model instance.

    Attributes
    ----------
    depth:
        Backbone depth (18 or 34) — the paper evaluates both.
    width_mult:
        Backbone channel scaling (1.0 = paper size).
    input_hw:
        Network input (height, width).  The paper resizes 1280x720 camera
        frames to 288x800 (UFLD's standard) before inference.
    num_cells:
        Number of horizontal grid cells per row anchor (paper: 100).
    num_anchors:
        Number of row anchors (paper: 56).
    num_lanes:
        Lane slots (2 for MoLane, 4 for TuLane/MuLane).
    aux_channels:
        Channels after the 1x1 squeeze conv (UFLD uses 8 at full size).
    hidden_dim:
        Width of the head MLP hidden layer (UFLD uses 2048 at full size).
    """

    depth: int = 18
    width_mult: float = 1.0
    input_hw: Tuple[int, int] = (288, 800)
    num_cells: int = 100
    num_anchors: int = 56
    num_lanes: int = 4
    aux_channels: int = 8
    hidden_dim: int = 2048

    @property
    def num_classes(self) -> int:
        """Cells plus the "no lane on this row" class."""
        return self.num_cells + 1

    @property
    def absent_class(self) -> int:
        """Class index meaning "lane absent at this row anchor"."""
        return self.num_cells

    @property
    def total_dim(self) -> int:
        return self.num_classes * self.num_anchors * self.num_lanes

    def with_lanes(self, num_lanes: int) -> "UFLDConfig":
        """Same architecture, different lane-slot count (Mo vs Tu/MuLane)."""
        return replace(self, num_lanes=num_lanes)

    def to_spec(self, name: Optional[str] = None) -> ModelSpec:
        """Symbolic cost model of this configuration (see spec.py)."""
        return ufld_spec(
            depth=self.depth,
            width_mult=self.width_mult,
            input_hw=self.input_hw,
            num_cells=self.num_cells,
            num_anchors=self.num_anchors,
            num_lanes=self.num_lanes,
            aux_channels=self.aux_channels,
            hidden_dim=self.hidden_dim,
            name=name,
        )


class UFLD(nn.Module):
    """UFLD lane detector: ResNet backbone + row-anchor classification head.

    Output logits have shape ``(N, num_cells + 1, num_anchors, num_lanes)``
    — the layout the paper's entropy objective operates on.
    """

    def __init__(self, config: UFLDConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        self.backbone = ResNetBackbone(
            depth=config.depth, width_mult=config.width_mult, rng=rng
        )
        feat_hw = self.backbone.feature_hw(config.input_hw)
        self.feature_hw = feat_hw
        self.squeeze = nn.Conv2d(
            self.backbone.out_channels, config.aux_channels, kernel_size=1,
            bias=True, rng=rng,
        )
        flat_dim = config.aux_channels * feat_hw[0] * feat_hw[1]
        self.flat_dim = flat_dim
        self.fc1 = nn.Linear(flat_dim, config.hidden_dim, rng=rng)
        self.fc2 = nn.Linear(config.hidden_dim, config.total_dim, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        logits, _ = self.forward_with_features(x)
        return logits

    def forward_with_features(self, x: nn.Tensor):
        """Forward pass that also returns the head's hidden embedding.

        The hidden layer (post-ReLU output of ``fc1``) is the embedding
        space the CARLANE-SOTA baseline clusters and aligns; exposing it
        avoids a second forward pass during that baseline's training.
        Returns ``(logits, hidden)``.
        """
        n = x.shape[0]
        self._check_input(x)
        feat = self.backbone(x)
        feat = self.squeeze(feat)
        flat = feat.flatten(1)
        hidden = F.relu(self.fc1(flat))
        logits = self.fc2(hidden)
        cfg = self.config
        logits = logits.reshape(n, cfg.num_classes, cfg.num_anchors, cfg.num_lanes)
        return logits, hidden

    def _check_input(self, x: nn.Tensor) -> None:
        if x.ndim != 4 or x.shape[1] != 3:
            raise ValueError(f"UFLD expects (N, 3, H, W) input, got {x.shape}")
        if tuple(x.shape[2:]) != tuple(self.config.input_hw):
            raise ValueError(
                f"UFLD configured for {self.config.input_hw}, got {x.shape[2:]}"
            )

    # -- parameter groups used by the adaptation code -------------------
    def bn_modules(self):
        """All BatchNorm modules (the layers LD-BN-ADAPT touches)."""
        return [m for m in self.modules() if isinstance(m, nn.BatchNorm2d)]

    def bn_parameters(self):
        """gamma/beta of every BN layer."""
        params = []
        for m in self.bn_modules():
            params.extend([m.weight, m.bias])
        return params

    def conv_parameters(self):
        """Weights/biases of all convolutions (CONV-ADAPT ablation)."""
        params = []
        for m in self.modules():
            if isinstance(m, nn.Conv2d):
                params.append(m.weight)
                if m.bias is not None:
                    params.append(m.bias)
        return params

    def fc_parameters(self):
        """Weights/biases of the head MLP (FC-ADAPT ablation)."""
        params = []
        for m in self.modules():
            if isinstance(m, nn.Linear):
                params.append(m.weight)
                if m.bias is not None:
                    params.append(m.bias)
        return params


def ufld_loss(
    logits: nn.Tensor,
    targets: np.ndarray,
    sim_weight: float = 0.0,
) -> nn.Tensor:
    """UFLD training loss.

    Parameters
    ----------
    logits:
        ``(N, C, anchors, lanes)`` raw scores, C = num_cells + 1.
    targets:
        ``(N, anchors, lanes)`` integer cell indices; the absent class is
        ``num_cells``.
    sim_weight:
        Weight of UFLD's structural similarity loss — an L1 penalty on the
        difference between classification distributions of adjacent row
        anchors, encoding that lanes are continuous.
    """
    loss = F.cross_entropy(logits, targets)
    if sim_weight > 0.0 and logits.shape[2] > 1:
        probs = F.softmax(logits, axis=1)
        diff = probs[:, :, 1:, :] - probs[:, :, :-1, :]
        loss = loss + sim_weight * diff.abs().mean()
    return loss


def decode_predictions(
    logits: np.ndarray,
    config: UFLDConfig,
    method: str = "expectation",
) -> np.ndarray:
    """Convert logits to lane x-positions per (image, anchor, lane).

    Returns an ``(N, anchors, lanes)`` float array of x coordinates in
    *cell units* ``[0, num_cells)``; absent points are ``np.nan``.

    ``method="argmax"`` takes the hard winning cell.  ``method=
    "expectation"`` (UFLD's refinement, default) computes the softmax-
    weighted average of cell indices over the location classes, giving
    sub-cell resolution; absence is still decided by the hard argmax.
    """
    if logits.ndim == 3:
        logits = logits[None]
    n, c, anchors, lanes = logits.shape
    if c != config.num_classes:
        raise ValueError(f"expected {config.num_classes} classes, got {c}")
    hard = logits.argmax(axis=1)  # (N, anchors, lanes)
    absent = hard == config.absent_class

    if method == "argmax":
        positions = hard.astype(np.float64)
    elif method == "expectation":
        loc_logits = logits[:, : config.num_cells, :, :]
        shifted = loc_logits - loc_logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        idx = np.arange(config.num_cells, dtype=np.float64).reshape(1, -1, 1, 1)
        positions = (probs * idx).sum(axis=1)
    else:
        raise ValueError(f"unknown decode method {method!r}")

    positions = positions.astype(np.float64)
    positions[absent] = np.nan
    return positions


def cells_to_pixels(
    positions: np.ndarray, config: UFLDConfig, image_width: int
) -> np.ndarray:
    """Map cell-unit x positions to pixel coordinates in a target image."""
    scale = image_width / config.num_cells
    return positions * scale + scale / 2.0
