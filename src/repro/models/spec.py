"""Symbolic layer specifications for cost analysis.

The Jetson-Orin latency model (Fig. 3) and the parameter-census experiment
(Sec. III's "BN is ~1% of parameters") need per-layer FLOPs, parameter and
memory-traffic counts for the *full-size* UFLD models — which are far too
large to instantiate and run in numpy.  This module describes architectures
symbolically: each layer becomes a small dataclass knowing its own shapes,
and builders reproduce the exact topology of the runnable models in
:mod:`repro.models.resnet` / :mod:`repro.models.ufld`.

A consistency test asserts that for the small presets the symbolic
parameter count equals the instantiated model's ``num_parameters()``,
so the symbolic path cannot drift from the executable one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

BYTES_PER_ELEMENT = 4  # fp32 activations/weights


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size (in={size}, k={kernel}, s={stride}, p={padding})"
        )
    return out


@dataclass(frozen=True)
class LayerSpec:
    """Base class: every layer knows its parameter count, forward FLOPs and
    approximate DRAM traffic in bytes (inputs + weights + outputs)."""

    name: str

    @property
    def params(self) -> int:
        return 0

    @property
    def flops(self) -> int:
        """Forward FLOPs (multiply-accumulate counted as 2 FLOPs)."""
        return 0

    @property
    def activation_elems(self) -> int:
        """Number of output elements (for memory-traffic estimates)."""
        return 0

    @property
    def bytes_moved(self) -> int:
        return BYTES_PER_ELEMENT * (self.activation_elems + self.params)

    @property
    def is_batchnorm(self) -> bool:
        return False


@dataclass(frozen=True)
class ConvSpec(LayerSpec):
    in_channels: int = 0
    out_channels: int = 0
    kernel: Tuple[int, int] = (1, 1)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    in_hw: Tuple[int, int] = (1, 1)
    bias: bool = False

    @property
    def out_hw(self) -> Tuple[int, int]:
        return (
            conv_out_size(self.in_hw[0], self.kernel[0], self.stride[0], self.padding[0]),
            conv_out_size(self.in_hw[1], self.kernel[1], self.stride[1], self.padding[1]),
        )

    @property
    def params(self) -> int:
        count = self.out_channels * self.in_channels * self.kernel[0] * self.kernel[1]
        if self.bias:
            count += self.out_channels
        return count

    @property
    def flops(self) -> int:
        oh, ow = self.out_hw
        macs = (
            self.out_channels
            * oh
            * ow
            * self.in_channels
            * self.kernel[0]
            * self.kernel[1]
        )
        return 2 * macs

    @property
    def activation_elems(self) -> int:
        oh, ow = self.out_hw
        return self.out_channels * oh * ow


@dataclass(frozen=True)
class BatchNormSpec(LayerSpec):
    channels: int = 0
    hw: Optional[Tuple[int, int]] = None  # None for BatchNorm1d

    @property
    def params(self) -> int:
        return 2 * self.channels  # gamma + beta

    @property
    def flops(self) -> int:
        # normalize + affine: ~4 FLOPs per element (sub, mul, mul, add)
        return 4 * self.activation_elems

    @property
    def activation_elems(self) -> int:
        if self.hw is None:
            return self.channels
        return self.channels * self.hw[0] * self.hw[1]

    @property
    def is_batchnorm(self) -> bool:
        return True


@dataclass(frozen=True)
class LinearSpec(LayerSpec):
    in_features: int = 0
    out_features: int = 0
    bias: bool = True

    @property
    def params(self) -> int:
        count = self.in_features * self.out_features
        if self.bias:
            count += self.out_features
        return count

    @property
    def flops(self) -> int:
        return 2 * self.in_features * self.out_features

    @property
    def activation_elems(self) -> int:
        return self.out_features


@dataclass(frozen=True)
class PoolSpec(LayerSpec):
    kind: str = "max"  # "max" | "avg" | "global_avg"
    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)
    padding: Tuple[int, int] = (0, 0)
    channels: int = 0
    in_hw: Tuple[int, int] = (1, 1)

    @property
    def out_hw(self) -> Tuple[int, int]:
        if self.kind == "global_avg":
            return (1, 1)
        return (
            conv_out_size(self.in_hw[0], self.kernel[0], self.stride[0], self.padding[0]),
            conv_out_size(self.in_hw[1], self.kernel[1], self.stride[1], self.padding[1]),
        )

    @property
    def flops(self) -> int:
        oh, ow = self.out_hw
        window = (
            self.in_hw[0] * self.in_hw[1]
            if self.kind == "global_avg"
            else self.kernel[0] * self.kernel[1]
        )
        return self.channels * oh * ow * window

    @property
    def activation_elems(self) -> int:
        oh, ow = self.out_hw
        return self.channels * oh * ow


@dataclass(frozen=True)
class ActivationSpec(LayerSpec):
    kind: str = "relu"
    numel: int = 0

    @property
    def flops(self) -> int:
        return self.numel

    @property
    def activation_elems(self) -> int:
        return self.numel


@dataclass
class ModelSpec:
    """An ordered list of layer specs plus model-level metadata."""

    name: str
    layers: List[LayerSpec] = field(default_factory=list)
    input_shape: Tuple[int, int, int] = (3, 1, 1)  # (C, H, W)
    output_shape: Tuple[int, ...] = ()

    @property
    def params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def bn_params(self) -> int:
        return sum(layer.params for layer in self.layers if layer.is_batchnorm)

    @property
    def bn_param_fraction(self) -> float:
        total = self.params
        return self.bn_params / total if total else 0.0

    @property
    def flops(self) -> int:
        return sum(layer.flops for layer in self.layers)

    @property
    def bytes_moved(self) -> int:
        input_bytes = BYTES_PER_ELEMENT * int(
            self.input_shape[0] * self.input_shape[1] * self.input_shape[2]
        )
        return input_bytes + sum(layer.bytes_moved for layer in self.layers)

    def layers_of_type(self, cls) -> List[LayerSpec]:
        return [layer for layer in self.layers if isinstance(layer, cls)]


# ----------------------------------------------------------------------
# architecture builders (must mirror repro.models.resnet / .ufld exactly)
# ----------------------------------------------------------------------
RESNET_STAGES = {18: (2, 2, 2, 2), 34: (3, 4, 6, 3)}
BASE_CHANNELS = (64, 128, 256, 512)


def scaled_channels(width_mult: float) -> Tuple[int, ...]:
    """Stage channel counts under a width multiplier (min 4, multiple of 2)."""
    scaled = []
    for base in BASE_CHANNELS:
        c = max(4, int(round(base * width_mult)))
        scaled.append(c + (c % 2))
    return tuple(scaled)


def _basic_block_specs(
    prefix: str,
    in_channels: int,
    out_channels: int,
    stride: int,
    hw: Tuple[int, int],
) -> Tuple[List[LayerSpec], Tuple[int, int]]:
    """Specs for one BasicBlock; returns (layers, output hw)."""
    layers: List[LayerSpec] = []
    layers.append(
        ConvSpec(
            f"{prefix}.conv1",
            in_channels=in_channels,
            out_channels=out_channels,
            kernel=(3, 3),
            stride=(stride, stride),
            padding=(1, 1),
            in_hw=hw,
        )
    )
    hw1 = layers[-1].out_hw
    layers.append(BatchNormSpec(f"{prefix}.bn1", channels=out_channels, hw=hw1))
    layers.append(
        ActivationSpec(
            f"{prefix}.relu1", kind="relu", numel=out_channels * hw1[0] * hw1[1]
        )
    )
    layers.append(
        ConvSpec(
            f"{prefix}.conv2",
            in_channels=out_channels,
            out_channels=out_channels,
            kernel=(3, 3),
            stride=(1, 1),
            padding=(1, 1),
            in_hw=hw1,
        )
    )
    layers.append(BatchNormSpec(f"{prefix}.bn2", channels=out_channels, hw=hw1))
    if stride != 1 or in_channels != out_channels:
        layers.append(
            ConvSpec(
                f"{prefix}.downsample.conv",
                in_channels=in_channels,
                out_channels=out_channels,
                kernel=(1, 1),
                stride=(stride, stride),
                padding=(0, 0),
                in_hw=hw,
            )
        )
        layers.append(
            BatchNormSpec(f"{prefix}.downsample.bn", channels=out_channels, hw=hw1)
        )
    layers.append(
        ActivationSpec(
            f"{prefix}.relu2", kind="relu", numel=out_channels * hw1[0] * hw1[1]
        )
    )
    return layers, hw1


def resnet_backbone_spec(
    depth: int,
    width_mult: float,
    input_hw: Tuple[int, int],
    in_channels: int = 3,
) -> Tuple[List[LayerSpec], int, Tuple[int, int]]:
    """Symbolic description of the ResNet-18/34 backbone (no avgpool/fc).

    Returns ``(layers, out_channels, out_hw)`` — the feature map is the
    stride-32 output of stage 4, which UFLD consumes.
    """
    if depth not in RESNET_STAGES:
        raise ValueError(f"unsupported ResNet depth {depth}; choose from 18/34")
    blocks_per_stage = RESNET_STAGES[depth]
    channels = scaled_channels(width_mult)

    layers: List[LayerSpec] = []
    stem = ConvSpec(
        "stem.conv",
        in_channels=in_channels,
        out_channels=channels[0],
        kernel=(7, 7),
        stride=(2, 2),
        padding=(3, 3),
        in_hw=input_hw,
        bias=False,
    )
    layers.append(stem)
    hw = stem.out_hw
    layers.append(BatchNormSpec("stem.bn", channels=channels[0], hw=hw))
    layers.append(
        ActivationSpec("stem.relu", kind="relu", numel=channels[0] * hw[0] * hw[1])
    )
    pool = PoolSpec(
        "stem.maxpool",
        kind="max",
        kernel=(3, 3),
        stride=(2, 2),
        padding=(1, 1),
        channels=channels[0],
        in_hw=hw,
    )
    layers.append(pool)
    hw = pool.out_hw

    current = channels[0]
    for stage_idx, (blocks, out_ch) in enumerate(zip(blocks_per_stage, channels)):
        for block_idx in range(blocks):
            stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
            block_layers, hw = _basic_block_specs(
                f"layer{stage_idx + 1}.{block_idx}", current, out_ch, stride, hw
            )
            layers.extend(block_layers)
            current = out_ch
    return layers, current, hw


def ufld_spec(
    depth: int,
    width_mult: float,
    input_hw: Tuple[int, int],
    num_cells: int,
    num_anchors: int,
    num_lanes: int,
    aux_channels: int,
    hidden_dim: int,
    name: Optional[str] = None,
) -> ModelSpec:
    """Symbolic description of the full UFLD model (backbone + head).

    The head follows the released UFLD: a 1x1 conv squeezes the stride-32
    feature map to ``aux_channels``, which is flattened and passed through
    ``Linear -> ReLU -> Linear`` producing ``(num_cells + 1) * num_anchors
    * num_lanes`` logits (the +1 class is "no lane in this cell row").
    """
    layers, out_ch, hw = resnet_backbone_spec(depth, width_mult, input_hw)
    squeeze = ConvSpec(
        "head.squeeze",
        in_channels=out_ch,
        out_channels=aux_channels,
        kernel=(1, 1),
        stride=(1, 1),
        padding=(0, 0),
        in_hw=hw,
        bias=True,
    )
    layers = list(layers) + [squeeze]
    feat = aux_channels * hw[0] * hw[1]
    total_dim = (num_cells + 1) * num_anchors * num_lanes
    layers.append(LinearSpec("head.fc1", in_features=feat, out_features=hidden_dim))
    layers.append(ActivationSpec("head.relu", kind="relu", numel=hidden_dim))
    layers.append(
        LinearSpec("head.fc2", in_features=hidden_dim, out_features=total_dim)
    )
    model_name = name or f"ufld-r{depth}-w{width_mult:g}"
    return ModelSpec(
        name=model_name,
        layers=layers,
        input_shape=(3, input_hw[0], input_hw[1]),
        output_shape=(num_cells + 1, num_anchors, num_lanes),
    )
