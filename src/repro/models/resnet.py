"""ResNet-18/34 backbones (runnable, numpy autograd).

Faithful to the torchvision BasicBlock topology the UFLD paper builds on:
7x7 stride-2 stem + 3x3 stride-2 max-pool, four stages of BasicBlocks with
stride-2 transitions, BN after every convolution, identity or 1x1-conv
downsample on the skip path.  A ``width_mult`` knob scales channel counts
uniformly so the same code runs full-size (symbolically, for cost models)
and quarter-size (executably, for the accuracy experiments) — the BN
placement that LD-BN-ADAPT manipulates is identical at every scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from .spec import RESNET_STAGES, scaled_channels


def conv3x3(
    in_planes: int,
    out_planes: int,
    stride: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> nn.Conv2d:
    """3x3 convolution with padding, no bias (BN follows)."""
    return nn.Conv2d(
        in_planes, out_planes, kernel_size=3, stride=stride, padding=1,
        bias=False, rng=rng,
    )


def conv1x1(
    in_planes: int,
    out_planes: int,
    stride: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> nn.Conv2d:
    """1x1 convolution, no bias (used on downsample paths)."""
    return nn.Conv2d(
        in_planes, out_planes, kernel_size=1, stride=stride, padding=0,
        bias=False, rng=rng,
    )


class BasicBlock(nn.Module):
    """Standard two-conv residual block (expansion 1)."""

    expansion = 1

    def __init__(
        self,
        in_planes: int,
        planes: int,
        stride: int = 1,
        downsample: Optional[nn.Module] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.conv1 = conv3x3(in_planes, planes, stride, rng=rng)
        self.bn1 = nn.BatchNorm2d(planes)
        self.conv2 = conv3x3(planes, planes, rng=rng)
        self.bn2 = nn.BatchNorm2d(planes)
        self.downsample = downsample if downsample is not None else nn.Identity()
        self.stride = stride

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        identity = self.downsample(x)
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return F.relu(out + identity)


class ResNetBackbone(nn.Module):
    """ResNet feature extractor ending at the stride-32 stage-4 output.

    Parameters
    ----------
    depth:
        18 or 34 (BasicBlock counts (2,2,2,2) / (3,4,6,3)).
    width_mult:
        Uniform channel scaling; 1.0 reproduces the torchvision layout.
    in_channels:
        Input image channels (3 for RGB).
    rng:
        Generator for weight initialization (reproducibility).
    """

    def __init__(
        self,
        depth: int = 18,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if depth not in RESNET_STAGES:
            raise ValueError(f"unsupported ResNet depth {depth}; choose 18 or 34")
        self.depth = depth
        self.width_mult = width_mult
        channels = scaled_channels(width_mult)
        blocks_per_stage = RESNET_STAGES[depth]

        self.conv1 = nn.Conv2d(
            in_channels, channels[0], kernel_size=7, stride=2, padding=3,
            bias=False, rng=rng,
        )
        self.bn1 = nn.BatchNorm2d(channels[0])
        self.maxpool = nn.MaxPool2d(kernel_size=3, stride=2, padding=1)

        self.in_planes = channels[0]
        self.layer1 = self._make_stage(channels[0], blocks_per_stage[0], 1, rng)
        self.layer2 = self._make_stage(channels[1], blocks_per_stage[1], 2, rng)
        self.layer3 = self._make_stage(channels[2], blocks_per_stage[2], 2, rng)
        self.layer4 = self._make_stage(channels[3], blocks_per_stage[3], 2, rng)
        self.out_channels = channels[3]

    def _make_stage(
        self,
        planes: int,
        blocks: int,
        stride: int,
        rng: Optional[np.random.Generator],
    ) -> nn.Sequential:
        downsample = None
        if stride != 1 or self.in_planes != planes:
            downsample = nn.Sequential(
                conv1x1(self.in_planes, planes, stride, rng=rng),
                nn.BatchNorm2d(planes),
            )
        stage = [BasicBlock(self.in_planes, planes, stride, downsample, rng=rng)]
        self.in_planes = planes
        for _ in range(1, blocks):
            stage.append(BasicBlock(planes, planes, rng=rng))
        return nn.Sequential(*stage)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = F.relu(self.bn1(self.conv1(x)))
        x = self.maxpool(x)
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        return x

    def feature_hw(self, input_hw: Tuple[int, int]) -> Tuple[int, int]:
        """Spatial size of the stage-4 output for a given input size."""
        h, w = input_hw
        for kernel, stride, padding in ((7, 2, 3), (3, 2, 1)):
            h = (h + 2 * padding - kernel) // stride + 1
            w = (w + 2 * padding - kernel) // stride + 1
        for _ in range(3):  # stages 2-4 halve resolution
            h = (h + 1) // 2
            w = (w + 1) // 2
        return h, w
