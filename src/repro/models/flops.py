"""Parameter / FLOP census over symbolic model specs.

Feeds two of the paper's claims:

* Sec. III — "BN parameters typically only comprise ~1% of the total model
  parameters, hence updating these parameters is lightweight"
  (:func:`parameter_census`);
* Fig. 3 — per-layer forward/backward FLOPs consumed by the Jetson Orin
  roofline model in :mod:`repro.hw.roofline`
  (:func:`forward_flops` / :func:`adaptation_flops`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .spec import BatchNormSpec, ConvSpec, LinearSpec, ModelSpec

# Backward pass cost relative to forward, per layer family.  For GEMM-like
# layers backward computes two products (grad wrt input and wrt weights),
# hence ~2x the forward cost; elementwise layers are ~1x.
BACKWARD_MULTIPLIER = 2.0


@dataclass(frozen=True)
class ParameterCensus:
    """Breakdown of a model's parameters by adaptation-relevant groups."""

    total: int
    batchnorm: int
    conv: int
    linear: int

    @property
    def bn_fraction(self) -> float:
        return self.batchnorm / self.total if self.total else 0.0

    @property
    def conv_fraction(self) -> float:
        return self.conv / self.total if self.total else 0.0

    @property
    def linear_fraction(self) -> float:
        return self.linear / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": float(self.total),
            "batchnorm": float(self.batchnorm),
            "conv": float(self.conv),
            "linear": float(self.linear),
            "bn_fraction": self.bn_fraction,
            "conv_fraction": self.conv_fraction,
            "linear_fraction": self.linear_fraction,
        }


def parameter_census(spec: ModelSpec) -> ParameterCensus:
    """Count parameters by layer family (TXT2 experiment)."""
    bn = sum(l.params for l in spec.layers_of_type(BatchNormSpec))
    conv = sum(l.params for l in spec.layers_of_type(ConvSpec))
    linear = sum(l.params for l in spec.layers_of_type(LinearSpec))
    return ParameterCensus(total=spec.params, batchnorm=bn, conv=conv, linear=linear)


def forward_flops(spec: ModelSpec, batch_size: int = 1) -> float:
    """Forward-pass FLOPs for a batch."""
    return float(spec.flops) * batch_size


def backward_flops(spec: ModelSpec, batch_size: int = 1) -> float:
    """Full backward-pass FLOPs (all parameters), ~2x forward."""
    return BACKWARD_MULTIPLIER * forward_flops(spec, batch_size)


def adaptation_flops(spec: ModelSpec, batch_size: int = 1) -> float:
    """FLOPs of one LD-BN-ADAPT step (excluding the inference already done).

    The entropy loss needs a fresh forward in train mode (batch statistics)
    plus one backward pass.  Although only gamma/beta are *updated*, their
    gradients require propagating through every layer after the first BN,
    so the backward sweep costs the same order as a full backward; the
    saving is in optimizer state and weight-update work, which is tiny.
    This matches the paper's observation that adaptation ~doubles frame
    latency versus pure inference (Fig. 3).
    """
    return forward_flops(spec, batch_size) + backward_flops(spec, batch_size)


def forward_bytes(spec: ModelSpec, batch_size: int = 1) -> float:
    """Approximate DRAM traffic of one forward pass (bytes)."""
    return float(spec.bytes_moved) * batch_size


def adaptation_bytes(spec: ModelSpec, batch_size: int = 1) -> float:
    """Approximate DRAM traffic of one adaptation step (bytes).

    Forward (train mode) + backward; backward reads activations and
    gradients, roughly doubling traffic relative to forward.
    """
    return (1.0 + BACKWARD_MULTIPLIER) * forward_bytes(spec, batch_size)
