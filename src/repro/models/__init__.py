"""``repro.models`` — ResNet backbones, the UFLD lane detector, presets and
symbolic cost models.

The executable models (``UFLD``, ``ResNetBackbone``) and the symbolic specs
(``ufld_spec`` via ``UFLDConfig.to_spec()``) describe the *same*
architectures; a consistency test pins their parameter counts together.
"""

from .flops import (
    ParameterCensus,
    adaptation_bytes,
    adaptation_flops,
    backward_flops,
    forward_bytes,
    forward_flops,
    parameter_census,
)
from .registry import build_model, get_config, preset_names
from .resnet import BasicBlock, ResNetBackbone
from .spec import (
    ActivationSpec,
    BatchNormSpec,
    ConvSpec,
    LayerSpec,
    LinearSpec,
    ModelSpec,
    PoolSpec,
    resnet_backbone_spec,
    ufld_spec,
)
from .ufld import UFLD, UFLDConfig, cells_to_pixels, decode_predictions, ufld_loss

__all__ = [
    "ResNetBackbone",
    "BasicBlock",
    "UFLD",
    "UFLDConfig",
    "ufld_loss",
    "decode_predictions",
    "cells_to_pixels",
    "build_model",
    "get_config",
    "preset_names",
    "ModelSpec",
    "LayerSpec",
    "ConvSpec",
    "BatchNormSpec",
    "LinearSpec",
    "PoolSpec",
    "ActivationSpec",
    "resnet_backbone_spec",
    "ufld_spec",
    "parameter_census",
    "ParameterCensus",
    "forward_flops",
    "backward_flops",
    "adaptation_flops",
    "forward_bytes",
    "adaptation_bytes",
]
