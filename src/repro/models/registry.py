"""Named model presets.

Three scales of the same UFLD architecture (identical topology and BN
placement; only tensor sizes differ):

* ``paper``  — full size, used **symbolically** for FLOPs/latency models
  (Fig. 3, param census). 288x800 input, 100 cells x 56 anchors, width 1.0.
* ``small``  — quarter width, 64x160 input; trainable on CPU in minutes.
  Used by the Fig. 2 accuracy experiments.
* ``tiny``   — eighth width, 32x80 input; used by the test suite.

Use :func:`get_config` / :func:`build_model`:

>>> cfg = get_config("small-r18", num_lanes=2)
>>> cfg.depth, cfg.num_lanes
(18, 2)
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .ufld import UFLD, UFLDConfig

_PRESETS: Dict[str, UFLDConfig] = {
    "paper-r18": UFLDConfig(
        depth=18, width_mult=1.0, input_hw=(288, 800),
        num_cells=100, num_anchors=56, num_lanes=4,
        aux_channels=8, hidden_dim=2048,
    ),
    "paper-r34": UFLDConfig(
        depth=34, width_mult=1.0, input_hw=(288, 800),
        num_cells=100, num_anchors=56, num_lanes=4,
        aux_channels=8, hidden_dim=2048,
    ),
    "small-r18": UFLDConfig(
        depth=18, width_mult=0.25, input_hw=(64, 160),
        num_cells=25, num_anchors=14, num_lanes=4,
        aux_channels=4, hidden_dim=256,
    ),
    "small-r34": UFLDConfig(
        depth=34, width_mult=0.25, input_hw=(64, 160),
        num_cells=25, num_anchors=14, num_lanes=4,
        aux_channels=4, hidden_dim=256,
    ),
    "tiny-r18": UFLDConfig(
        depth=18, width_mult=0.125, input_hw=(32, 80),
        num_cells=10, num_anchors=7, num_lanes=4,
        aux_channels=2, hidden_dim=64,
    ),
    "tiny-r34": UFLDConfig(
        depth=34, width_mult=0.125, input_hw=(32, 80),
        num_cells=10, num_anchors=7, num_lanes=4,
        aux_channels=2, hidden_dim=64,
    ),
}


def preset_names() -> list:
    """All registered preset names."""
    return sorted(_PRESETS)


def get_config(name: str, num_lanes: Optional[int] = None) -> UFLDConfig:
    """Look up a preset, optionally overriding the lane-slot count."""
    if name not in _PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {preset_names()}")
    config = _PRESETS[name]
    if num_lanes is not None:
        config = config.with_lanes(num_lanes)
    return config


def build_model(
    name: str,
    num_lanes: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> UFLD:
    """Instantiate a UFLD model from a preset name.

    ``paper-*`` presets are intended for symbolic analysis; instantiating
    them allocates ~50M+ float32 parameters, which works but is slow to
    run — prefer ``small-*``/``tiny-*`` for execution.
    """
    return UFLD(get_config(name, num_lanes=num_lanes), rng=rng)
