"""LD-BN-ADAPT reproduction — real-time fully unsupervised domain
adaptation for lane detection (Bhardwaj et al., DATE 2023).

Package layout:

* :mod:`repro.nn` — numpy autograd + NN framework (PyTorch substitute);
* :mod:`repro.models` — ResNet-18/34 backbones, the UFLD lane detector,
  and symbolic cost models;
* :mod:`repro.data` — synthetic CARLANE benchmarks (MoLane/TuLane/MuLane);
* :mod:`repro.adapt` — LD-BN-ADAPT, the conv/FC ablations, and the
  offline CARLANE-SOTA baseline;
* :mod:`repro.train` — source-domain UFLD training;
* :mod:`repro.metrics` — TuSimple-style accuracy, entropy tracking;
* :mod:`repro.hw` — Jetson Orin power-mode latency/energy model;
* :mod:`repro.pipeline` — the 30 FPS inference→adapt→next-frame loop;
* :mod:`repro.serve` — fleet serving: deadline-aware batched inference
  for N concurrent streams with per-stream adaptation state;
* :mod:`repro.experiments` — harnesses regenerating every paper artifact.

Quickstart::

    from repro.models import build_model, get_config
    from repro.data import make_benchmark
    from repro.train import SourceTrainer
    from repro.adapt import LDBNAdapt, LDBNAdaptConfig
    from repro.metrics import evaluate_model

See ``examples/quickstart.py`` for the end-to-end walkthrough.
"""

__version__ = "1.0.0"

from . import (
    adapt,
    data,
    experiments,
    hw,
    metrics,
    models,
    nn,
    pipeline,
    serve,
    train,
    utils,
)

__all__ = [
    "nn",
    "models",
    "data",
    "adapt",
    "train",
    "metrics",
    "hw",
    "pipeline",
    "serve",
    "experiments",
    "utils",
    "__version__",
]
