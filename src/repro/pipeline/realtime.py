"""The real-time loop: inference → adaptation → next frame.

This is the deployment scenario the paper targets (Sec. III): a 30 FPS
camera produces unlabeled frames; for each frame the model first runs
inference (producing the lane estimate the vehicle acts on), then one
LD-BN-ADAPT step updates the model before the next frame arrives.

Latency accounting is pluggable:

* ``latency_model="orin"`` — per-frame latency comes from the analytic
  Jetson Orin roofline (the configuration under study), so deadline
  statistics reflect the paper's platform rather than the host CPU;
* ``latency_model="wallclock"`` — measured host time (useful for
  profiling the numpy implementation itself).

Inference runs through the compiled engine (:mod:`repro.engine`) by
default — a traced static plan with fused conv-BN-ReLU stages and arena
buffer reuse, bit-exact against eager.  Adaptation steps use the same
machinery: :class:`repro.adapt.LDBNAdapt` replays the compiled entropy
step (train-mode forward + backward restricted to BN gamma/beta), warmed
here outside the timed region like the inference plan.
``repro.nn.inference_mode(False)`` forces eager inference and
``repro.nn.adaptation_mode(False)`` the eager adaptation step (the
escape hatches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .. import nn
from ..adapt.base import Adapter
from ..engine import compile_model
from ..engine.backends import available_backends
from ..engine.backends.threading import resolve_threads
from ..data.dataset import FrameStream, LaneSample
from ..hw.deadline import DEADLINE_30FPS_MS
from ..hw.device import DeviceProfile
from ..hw.roofline import ld_bn_adapt_latency
from ..metrics.lane_accuracy import TUSIMPLE_THRESHOLD_CELLS, point_accuracy
from ..models.spec import ModelSpec
from ..models.ufld import decode_predictions
from ..utils.profiling import Timer
from .monitor import DeadlineMonitor, FrameRecord, PipelineReport, RollingAccuracy


@dataclass(frozen=True)
class PipelineConfig:
    """Real-time loop configuration."""

    deadline_ms: float = DEADLINE_30FPS_MS
    latency_model: str = "orin"  # "orin" | "wallclock"
    decode_method: str = "expectation"
    accuracy_threshold_cells: float = TUSIMPLE_THRESHOLD_CELLS
    rolling_window: int = 30
    backend: str = "numpy"  # plan backend for the compiled forward
    threads: Optional[int] = None  # kernel-pool width (codegen backends)

    def __post_init__(self):
        if self.latency_model not in ("orin", "wallclock"):
            raise ValueError(f"unknown latency model {self.latency_model!r}")
        if self.threads is not None and self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown plan backend {self.backend!r}; expected one of "
                f"{available_backends()}"
            )
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.decode_method not in ("argmax", "expectation"):
            raise ValueError(f"unknown decode method {self.decode_method!r}")
        if self.accuracy_threshold_cells <= 0:
            raise ValueError(
                f"accuracy_threshold_cells must be positive, "
                f"got {self.accuracy_threshold_cells}"
            )
        if self.rolling_window < 1:
            raise ValueError(f"rolling_window must be >= 1, got {self.rolling_window}")


class RealTimePipeline:
    """Drives a model + adapter over a frame stream with deadline tracking."""

    def __init__(
        self,
        model,
        adapter: Adapter,
        config: Optional[PipelineConfig] = None,
        device: Optional[DeviceProfile] = None,
        spec: Optional[ModelSpec] = None,
    ):
        self.model = model
        self.adapter = adapter
        self.config = config if config is not None else PipelineConfig()
        # explicit threads both compiles threaded plans and re-prices the
        # roofline model; None keeps single-thread everywhere (stable)
        cfg_threads = self.config.threads
        self.threads: Optional[int] = (
            resolve_threads(
                cfg_threads, device_cores=getattr(device, "cpu_cores", None)
            )
            if cfg_threads is not None
            else None
        )
        if self.config.latency_model == "orin":
            if device is None or spec is None:
                raise ValueError(
                    "latency_model='orin' requires a DeviceProfile and a "
                    "paper-size ModelSpec (the platform under study)"
                )
            batch = getattr(getattr(adapter, "config", None), "batch_size", 1)
            breakdown = ld_bn_adapt_latency(
                spec, device, batch, threads=self.threads or 1
            )
            # inference happens every frame; the adaptation step is paid on
            # the frames where a step actually runs
            self._infer_ms = breakdown.inference_ms
            self._adapt_ms = breakdown.adaptation_ms
        else:
            self._infer_ms = None
            self._adapt_ms = None
        self.timer = Timer()
        self._compiled = None  # built lazily on the first compiled forward

    # ------------------------------------------------------------------
    def _warm_engine(self, frame: LaneSample) -> None:
        """Trace/compile outside the timed region (one-time, per shape)."""
        if nn.compiled_inference_enabled():
            if self._compiled is None:
                self._compiled = compile_model(
                    self.model, backend=self.config.backend,
                    threads=self.threads,
                )
            self.model.eval()
            self._compiled.warm(frame.image[None])
        if hasattr(self.adapter, "warm"):
            self.adapter.warm(frame.image)

    def _predict(self, frame: LaneSample) -> np.ndarray:
        self.model.eval()
        batch = frame.image[None]
        if nn.compiled_inference_enabled():
            if self._compiled is None:
                self._compiled = compile_model(
                    self.model, backend=self.config.backend,
                    threads=self.threads,
                )
            logits = self._compiled(batch)
        else:
            with nn.no_grad():
                logits = self.model(nn.Tensor(batch, _copy=False))
        return decode_predictions(
            logits.numpy(), self.model.config, method=self.config.decode_method
        )[0]

    def run(self, stream: Iterable[LaneSample], num_frames: int) -> PipelineReport:
        """Process ``num_frames`` frames; returns the full report.

        Ground-truth labels attached to the stream are used **only** for
        the online accuracy diagnostics — the adapter sees raw images.

        If the stream ends before ``num_frames`` frames were produced, the
        partial report is returned with ``report.truncated`` set instead of
        leaking the stream's ``StopIteration``.
        """
        report = PipelineReport(deadline_ms=self.config.deadline_ms)
        monitor = DeadlineMonitor(self.config.deadline_ms)
        rolling = RollingAccuracy(self.config.rolling_window)
        iterator = iter(stream)

        for index in range(num_frames):
            try:
                frame = next(iterator)
            except StopIteration:
                report.truncated = True
                break

            self._warm_engine(frame)
            with self.timer.measure("inference"):
                pred = self._predict(frame)
            with self.timer.measure("adaptation"):
                result = self.adapter.observe_frame(frame.image) if hasattr(
                    self.adapter, "observe_frame"
                ) else self.adapter.adapt(frame.image[None])

            metrics = point_accuracy(
                pred[None],
                frame.gt_cells[None],
                self.config.accuracy_threshold_cells,
            )
            rolling.update(metrics.accuracy)

            if self.config.latency_model == "orin":
                latency = self._infer_ms + (self._adapt_ms if result else 0.0)
                adapt_ms = self._adapt_ms if result else None
            else:
                adapt_wall_ms = 1e3 * self.timer.records["adaptation"][-1]
                latency = (
                    1e3 * self.timer.records["inference"][-1] + adapt_wall_ms
                )
                adapt_ms = adapt_wall_ms if result else None
            met = monitor.record(latency)

            report.frames.append(
                FrameRecord(
                    index=index,
                    timestamp=frame.timestamp,
                    domain=frame.domain,
                    latency_ms=latency,
                    deadline_ms=self.config.deadline_ms,
                    deadline_met=met,
                    accuracy=metrics.accuracy,
                    entropy=result.loss if result else None,
                    adapted=result is not None,
                    adapt_ms=adapt_ms,
                )
            )
        return report
