"""``repro.pipeline`` — the online inference→adapt→next-frame loop."""

from .monitor import (
    DeadlineMonitor,
    FrameRecord,
    PipelineReport,
    RollingAccuracy,
)
from .realtime import PipelineConfig, RealTimePipeline

__all__ = [
    "RealTimePipeline",
    "PipelineConfig",
    "PipelineReport",
    "FrameRecord",
    "DeadlineMonitor",
    "RollingAccuracy",
]
