"""Deadline and accuracy monitoring for the online pipeline.

Tracks, frame by frame, what the paper's Fig. 3 measures (per-frame
latency against the 33.3 ms / 55.5 ms deadlines) and what Fig. 2 measures
(lane accuracy), but *online*: rolling windows over the adaptation run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..hw.deadline import deadline_slack_ms
from ..telemetry.sketch import QuantileSketch, exact_percentile


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """Percentile ``q`` in [0, 100] of a latency series; 0.0 when empty.

    Thin alias of :func:`repro.telemetry.sketch.exact_percentile` — the
    one shared exact implementation behind :class:`PipelineReport`,
    ``Timer`` and every other list-backed percentile.  (Unbounded fleet
    aggregations use the streaming sketch instead; same [0, 100] /
    0.0-when-empty contract.)  Kept under its historical name because
    the serving and benchmark layers import it from here.
    """
    return exact_percentile(latencies, q)


@dataclass
class FrameRecord:
    """Everything observed about one processed frame."""

    index: int
    timestamp: float
    domain: str
    latency_ms: float
    deadline_ms: float
    deadline_met: bool
    accuracy: float  # point accuracy of this frame's prediction
    entropy: Optional[float] = None  # adaptation loss when a step ran
    adapted: bool = False
    adapt_ms: Optional[float] = None  # adaptation-step latency when one ran


class DeadlineMonitor:
    """Counts deadline hits/misses and latency statistics.

    Latencies feed a streaming
    :class:`~repro.telemetry.sketch.QuantileSketch` rather than a
    per-frame list, so a monitor that watches an unbounded stream stays
    O(1) memory; count / mean / min / max are exact, interior
    percentiles carry the sketch's relative-error bound.
    """

    def __init__(self, deadline_ms: float):
        if deadline_ms <= 0:
            raise ValueError("deadline must be positive")
        self.deadline_ms = deadline_ms
        self.latencies = QuantileSketch()
        self.misses = 0

    def record(self, latency_ms: float) -> bool:
        """Record one frame; returns True when the deadline was met."""
        self.latencies.add(latency_ms)
        met = latency_ms <= self.deadline_ms
        if not met:
            self.misses += 1
        return met

    @property
    def count(self) -> int:
        return self.latencies.count

    @property
    def miss_rate(self) -> float:
        return self.misses / self.count if self.count else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latencies.mean

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100]; 0.0 when nothing recorded."""
        return self.latencies.percentile(q)

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_ms(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile(99)


class RollingAccuracy:
    """Windowed mean of per-frame accuracies (online learning curve)."""

    def __init__(self, window: int = 30):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)
        self._all: List[float] = []

    def update(self, value: float) -> float:
        self._values.append(value)
        self._all.append(value)
        return self.current

    @property
    def current(self) -> float:
        return float(np.mean(self._values)) if self._values else 0.0

    @property
    def overall(self) -> float:
        return float(np.mean(self._all)) if self._all else 0.0

    def curve(self) -> List[float]:
        """Full per-frame accuracy trajectory."""
        return list(self._all)


@dataclass
class PipelineReport:
    """Summary of one online-adaptation run.

    ``truncated`` is set when the source stream ended before the requested
    number of frames — the report then covers only the frames that ran.
    """

    frames: List[FrameRecord] = field(default_factory=list)
    deadline_ms: float = 0.0
    truncated: bool = False

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def mean_accuracy(self) -> float:
        if not self.frames:
            return 0.0
        return float(np.mean([f.accuracy for f in self.frames]))

    def accuracy_over(self, first: int = 0, last: Optional[int] = None) -> float:
        """Mean accuracy over a frame range (e.g. after warm-up)."""
        chunk = self.frames[first:last]
        if not chunk:
            return 0.0
        return float(np.mean([f.accuracy for f in chunk]))

    @property
    def mean_latency_ms(self) -> float:
        if not self.frames:
            return 0.0
        return float(np.mean([f.latency_ms for f in self.frames]))

    @property
    def deadline_miss_rate(self) -> float:
        if not self.frames:
            return 0.0
        return float(np.mean([not f.deadline_met for f in self.frames]))

    @property
    def adaptation_steps(self) -> int:
        return sum(1 for f in self.frames if f.adapted)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] over all frames."""
        return latency_percentile([f.latency_ms for f in self.frames], q)

    def slack_percentile(self, q: float) -> float:
        """Deadline-slack percentile over all frames (negative = missed).

        Low percentiles (p10) show how close the stream runs to its
        deadline, the signal the fleet's admission controller throttles
        adaptation on.
        """
        return latency_percentile(
            [
                deadline_slack_ms(f.latency_ms, f.deadline_ms)
                for f in self.frames
            ],
            q,
        )

    def adaptation_percentile(self, q: float) -> float:
        """Adaptation-step latency percentile over frames where one ran."""
        return latency_percentile(
            [f.adapt_ms for f in self.frames if f.adapt_ms is not None], q
        )

    @property
    def mean_adapt_ms(self) -> float:
        steps = [f.adapt_ms for f in self.frames if f.adapt_ms is not None]
        return float(np.mean(steps)) if steps else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "frames": float(self.num_frames),
            "mean_accuracy": self.mean_accuracy,
            "mean_latency_ms": self.mean_latency_ms,
            "deadline_ms": self.deadline_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "adaptation_steps": float(self.adaptation_steps),
            "truncated": float(self.truncated),
        }
