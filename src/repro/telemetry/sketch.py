"""Streaming quantile sketches and the shared exact-percentile helper.

The fleet direction in ROADMAP (100s-1000s of streams) dies on per-frame
Python lists: a million-frame run must not hold a million floats per
metric just to answer ``p95``.  :class:`QuantileSketch` is a
DDSketch-style log-bucketed sketch — O(1) memory in the stream length,
a guaranteed *relative* accuracy bound ``alpha`` on every reported
quantile, and mergeable across devices by plain bucket-count addition
(merge is associative and commutative, so device-local sketches roll up
into a fleet sketch in any order).

Values are keyed by ``ceil(log_gamma(|v|))`` with
``gamma = (1 + alpha) / (1 - alpha)``; a bucket's representative value
``2 * gamma^k / (gamma + 1)`` is within ``alpha`` relative error of
anything mapped into it.  Deadline slack can be negative, so the sketch
keeps separate positive and negative bucket stores plus an exact zero
count.  Count, sum, min and max are tracked exactly, so means and the
q=0 / q=100 endpoints have no sketch error at all.

:func:`exact_percentile` is the one shared exact implementation behind
``pipeline.monitor.latency_percentile`` and every list-backed percentile
left in the codebase (per-stream reports keep their exact per-frame
records; only the unbounded fleet/device aggregations moved to
sketches).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["QuantileSketch", "exact_percentile"]


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Percentile ``q`` in [0, 100] of a series; 0.0 when empty.

    Empty windows are a normal state, not an error — a stream that never
    received an adaptation grant, a fleet with no fused steps — so every
    percentile family routes through here (or through
    :meth:`QuantileSketch.percentile`, which mirrors the convention) and
    reports 0.0 instead of raising.  Accepts any sequence, including
    numpy arrays (``not array`` is ambiguous, hence the explicit length
    check).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(values) == 0:
        return 0.0
    return float(np.percentile(values, q))


class QuantileSketch:
    """Mergeable streaming quantile sketch with relative-error bound.

    >>> s = QuantileSketch()
    >>> for v in range(1, 101):
    ...     s.add(float(v))
    >>> abs(s.percentile(50) - 50.5) / 50.5 < s.alpha
    True
    """

    # Bucket keys with |v| below this map to the exact-zero bucket; the
    # serving stack measures milliseconds, so anything under a femtosecond
    # is noise.
    _MIN_INDEXABLE = 1e-12

    def __init__(self, alpha: float = 0.005, max_buckets: int = 2048):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_buckets < 2:
            raise ValueError("max_buckets must be >= 2")
        self.alpha = float(alpha)
        self.max_buckets = int(max_buckets)
        gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(gamma)
        self._gamma = gamma
        # sparse bucket stores: key -> count
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    @classmethod
    def of(
        cls, values: Iterable[float], alpha: float = 0.005, max_buckets: int = 2048
    ) -> "QuantileSketch":
        sketch = cls(alpha=alpha, max_buckets=max_buckets)
        sketch.extend(values)
        return sketch

    def _key(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def _value(self, key: int) -> float:
        """Representative value of bucket ``key`` (midpoint, rel-error <= alpha)."""
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a quantile sketch")
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        magnitude = abs(value)
        if magnitude < self._MIN_INDEXABLE:
            self._zero += 1
            return
        store = self._pos if value > 0 else self._neg
        key = self._key(magnitude)
        store[key] = store.get(key, 0) + 1
        if len(store) > self.max_buckets:
            self._collapse(store)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _collapse(self, store: Dict[int, int]) -> None:
        """Fold the smallest-magnitude bucket into its neighbour.

        Standard DDSketch overflow policy: accuracy degrades only at the
        extreme low-magnitude tail, the keys nobody gates on.
        """
        keys = sorted(store)
        lowest, second = keys[0], keys[1]
        store[second] += store.pop(lowest)

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place (bucket-count addition)."""
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__} into a sketch")
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})"
            )
        for key, n in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + n
        for key, n in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + n
        while len(self._pos) > self.max_buckets:
            self._collapse(self._pos)
        while len(self._neg) > self.max_buckets:
            self._collapse(self._neg)
        self._zero += other._zero
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Quantile ``q`` in [0, 100]; 0.0 when empty (same contract as
        :func:`exact_percentile`)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        # rank in [0, count-1]; walk buckets from most negative upward
        rank = q / 100.0 * (self.count - 1)
        seen = 0
        for key in sorted(self._neg, reverse=True):
            seen += self._neg[key]
            if seen > rank:
                return self._clamp(-self._value(key))
        if self._zero:
            seen += self._zero
            if seen > rank:
                return self._clamp(0.0)
        for key in sorted(self._pos):
            seen += self._pos[key]
            if seen > rank:
                return self._clamp(self._value(key))
        return self.max

    def _clamp(self, value: float) -> float:
        assert self.min is not None and self.max is not None
        return min(max(value, self.min), self.max)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def num_buckets(self) -> int:
        """Occupied buckets — the sketch's actual memory footprint."""
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __eq__(self, other: object) -> bool:
        """Full-state equality: two sketches fed the same multiset of
        values (in any order) compare equal — the property the serving
        parity tests lean on."""
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            abs(self.alpha - other.alpha) < 1e-12
            and self.count == other.count
            and self._zero == other._zero
            and self.min == other.min
            and self.max == other.max
            and abs(self.sum - other.sum) <= 1e-9 * max(1.0, abs(self.sum))
            and self._pos == other._pos
            and self._neg == other._neg
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(count={self.count}, alpha={self.alpha}, "
            f"buckets={self.num_buckets})"
        )

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """JSON-serializable snapshot (bucket keys stringified)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zero": self._zero,
            "pos": {str(k): v for k, v in self._pos.items()},
            "neg": {str(k): v for k, v in self._neg.items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(alpha=float(state["alpha"]))
        sketch.count = int(state["count"])
        sketch.sum = float(state["sum"])
        sketch.min = None if state["min"] is None else float(state["min"])
        sketch.max = None if state["max"] is None else float(state["max"])
        sketch._zero = int(state["zero"])
        sketch._pos = {int(k): int(v) for k, v in dict(state["pos"]).items()}
        sketch._neg = {int(k): int(v) for k, v in dict(state["neg"]).items()}
        return sketch
