"""Span tracing over the serving stack's explicit clocks.

The fleet runs on *simulated* device time (``"orin"`` latency model) or
on elapsed host time (``"wallclock"``) — either way the timestamps are
handed to the tracer explicitly by the layer that owns the clock; the
tracer never reads a wall clock in the hot path, so tracing cannot
perturb what it measures.  Emission sites guard argument construction
with ``tracer.enabled``, and :data:`NULL_TRACER` (the default
everywhere) keeps the disabled path to a single attribute check.

Events use the Chrome ``trace_event`` vocabulary: complete spans
(``ph="X"``, a name + start + duration) and instants (``ph="i"``).
Lanes map serving concepts onto the Chrome viewer's process/thread
grid — ``pid`` is the device, ``tid`` is the stream (or the device's
own batch lane) — so a fleet run opens directly in ``chrome://tracing``
/ Perfetto with one swimlane per stream per device.  Export is either
Chrome JSON (one ``{"traceEvents": [...]}`` document) or JSONL (one
event per line, streamable); both round-trip through
:func:`load_chrome_trace` / :func:`load_jsonl_trace`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "SpanTracer",
    "NULL_TRACER",
    "load_chrome_trace",
    "load_jsonl_trace",
]


@dataclass
class TraceEvent:
    """One trace event on an explicit clock (milliseconds).

    ``dur_ms`` is ``None`` for instants.  ``pid``/``tid`` are the
    device / stream lanes; args carry event-specific payload (batch
    size, admission debt, migration source...).
    """

    name: str
    ts_ms: float
    dur_ms: Optional[float] = None
    pid: str = "fleet"
    tid: str = "main"
    cat: str = "serve"
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_ms(self) -> float:
        return self.ts_ms + (self.dur_ms or 0.0)

    def to_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` dict; timestamps in microseconds."""
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "pid": self.pid,
            "tid": self.tid,
            "ts": round(1e3 * self.ts_ms, 3),
        }
        if self.dur_ms is None:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = round(1e3 * self.dur_ms, 3)
        if self.args:
            event["args"] = dict(self.args)
        return event

    @classmethod
    def from_chrome(cls, event: Dict[str, object]) -> "TraceEvent":
        dur = event.get("dur")
        return cls(
            name=str(event["name"]),
            ts_ms=float(event["ts"]) / 1e3,
            dur_ms=None if dur is None else float(dur) / 1e3,
            pid=str(event.get("pid", "fleet")),
            tid=str(event.get("tid", "main")),
            cat=str(event.get("cat", "serve")),
            args=dict(event.get("args", {})),
        )


class SpanTracer:
    """Collects spans and instants; exports Chrome JSON and JSONL.

    ``enabled`` is the hot-path guard: every emission site in the
    serving stack checks it before building args, and
    :data:`NULL_TRACER` reports ``False`` so the untraced cost is one
    attribute load.
    """

    enabled = True

    def __init__(self):
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        ts_ms: float,
        dur_ms: float,
        *,
        pid: str = "fleet",
        tid: str = "main",
        cat: str = "serve",
        **args: object,
    ) -> None:
        """Record a complete span [ts_ms, ts_ms + dur_ms] on a lane."""
        self.events.append(
            TraceEvent(
                name=name, ts_ms=ts_ms, dur_ms=float(dur_ms),
                pid=pid, tid=tid, cat=cat, args=args,
            )
        )

    def instant(
        self,
        name: str,
        ts_ms: float,
        *,
        pid: str = "fleet",
        tid: str = "main",
        cat: str = "serve",
        **args: object,
    ) -> None:
        """Record a point event (zero-duration marker) on a lane."""
        self.events.append(
            TraceEvent(
                name=name, ts_ms=ts_ms, dur_ms=None,
                pid=pid, tid=tid, cat=cat, args=args,
            )
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def spans(self, name: Optional[str] = None, **lane: str) -> List[TraceEvent]:
        """Complete spans, optionally filtered by name / pid / tid / cat."""
        return [
            e
            for e in self.events
            if e.dur_ms is not None
            and (name is None or e.name == name)
            and all(getattr(e, k) == v for k, v in lane.items())
        ]

    def instants(self, name: Optional[str] = None, **lane: str) -> List[TraceEvent]:
        return [
            e
            for e in self.events
            if e.dur_ms is None
            and (name is None or e.name == name)
            and all(getattr(e, k) == v for k, v in lane.items())
        ]

    def frame_spans(self) -> "Dict[tuple, List[TraceEvent]]":
        """Spans grouped by (stream lane, frame index), time-ordered.

        The per-frame span chain — ``queue -> forward [-> adapt_wait]
        [-> adapt]`` — whose durations sum to the frame's reported
        latency; the reconciliation tests and the dashboard's slowest-
        frame breakdown both read this view.
        """
        groups: "Dict[tuple, List[TraceEvent]]" = {}
        for event in self.events:
            if event.dur_ms is None or "frame" not in event.args:
                continue
            groups.setdefault((event.tid, event.args["frame"]), []).append(event)
        for spans in groups.values():
            spans.sort(key=lambda e: (e.ts_ms, e.end_ms))
        return groups

    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, object]:
        return {"traceEvents": [e.to_chrome() for e in self.events]}

    def write_chrome(self, target: Union[str, IO[str]]) -> None:
        """Write one Chrome ``trace_event`` JSON document."""
        _dump(self.to_chrome(), target)

    def write_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Write one event per line (streamable / greppable)."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.write_jsonl(handle)
            return
        for event in self.events:
            target.write(json.dumps(event.to_chrome(), sort_keys=True) + "\n")


def _dump(document: Dict[str, object], target: Union[str, IO[str]]) -> None:
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(document, target, indent=1, sort_keys=True)


def load_chrome_trace(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a Chrome ``trace_event`` JSON file back into events."""
    if isinstance(source, str):
        with open(source) as handle:
            document = json.load(handle)
    else:
        document = json.load(source)
    return [TraceEvent.from_chrome(e) for e in document["traceEvents"]]


def load_jsonl_trace(source: Union[str, IO[str]]) -> List[TraceEvent]:
    if isinstance(source, str):
        with open(source) as handle:
            return load_jsonl_trace(handle)
    return [
        TraceEvent.from_chrome(json.loads(line))
        for line in source
        if line.strip()
    ]


class _NullTracer(SpanTracer):
    """The do-nothing tracer wired in by default everywhere.

    ``enabled`` is False so emission sites skip argument construction;
    the methods are retained (and inert) so unguarded calls are still
    safe.
    """

    enabled = False

    def span(self, *args, **kwargs) -> None:  # pragma: no cover - trivial
        pass

    def instant(self, *args, **kwargs) -> None:  # pragma: no cover - trivial
        pass


NULL_TRACER = _NullTracer()
