"""Fleet observability: metric sketches, span tracing, profiling glue.

The paper's whole argument is a latency budget — adaptation must fit
inside a real-time frame deadline — so the serving stack has to be able
to answer two questions at fleet scale without perturbing the answer:

* **"how is the fleet doing?"** — :mod:`~repro.telemetry.metrics`:
  counters, gauges, and histograms backed by the DDSketch-style
  :class:`~repro.telemetry.sketch.QuantileSketch` (O(1) memory,
  bounded relative error, mergeable across devices).  These replaced
  the unbounded per-frame lists on ``FleetReport`` / ``DeviceWorker``,
  so million-frame runs aggregate in constant memory.
* **"where did this frame's 33 ms go?"** — :mod:`~repro.telemetry.trace`:
  a span tracer on the serving stack's *explicit* clocks (simulated
  device time or elapsed host time, never a wall-clock read in the hot
  path) emitting per-frame ``queue -> forward -> adapt`` chains plus
  admission / migration / ingest events, exportable as Chrome
  ``trace_event`` JSON and JSONL.

Telemetry is inert by design: the default tracer is
:data:`~repro.telemetry.trace.NULL_TRACER` (one attribute check in the
hot path), sketches only observe values the serving code already
computed, and serving results are bit-exact with tracing on vs off —
the parity tests in ``tests/test_telemetry.py`` enforce it.

:mod:`~repro.telemetry.dashboard` renders a run's telemetry as a text
dashboard (the ``python -m repro.experiments trace`` artifact); the
engine's opt-in per-op profiling hooks live with the plans themselves
(``engine/plan.py`` / ``engine/adapt_plan.py``) and report through
plain dicts, so this package stays free of serving/engine imports.
"""

from .dashboard import render_dashboard
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sketch import QuantileSketch, exact_percentile
from .trace import NULL_TRACER, SpanTracer, load_chrome_trace, load_jsonl_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "QuantileSketch",
    "SpanTracer",
    "exact_percentile",
    "load_chrome_trace",
    "load_jsonl_trace",
    "render_dashboard",
]
