"""Text dashboard over a fleet run's telemetry.

Renders what an operator would put on a wall: per-device utilization
bars, the latency / slack / queue sketch percentiles, and the top-k
slowest frames broken down span by span (where did *this* frame's
33 ms go).  Pure formatting — takes a
:class:`~repro.serve.report.FleetReport` and optionally the
:class:`~repro.telemetry.trace.SpanTracer` that watched the run; no
serving imports, so the telemetry package stays dependency-free.
"""

from __future__ import annotations

from typing import List, Optional

from .trace import SpanTracer

__all__ = ["render_dashboard"]

_BAR_WIDTH = 28


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(
    report, tracer: Optional[SpanTracer] = None, top_k: int = 5
) -> str:
    """Render a fleet run's telemetry as a fixed-width text dashboard."""
    lines: List[str] = []
    summary = report.summary()
    lines.append("=" * 64)
    lines.append(
        f"fleet: {int(summary['streams'])} streams / "
        f"{int(summary['devices'])} device(s) / "
        f"{int(summary['frames'])} frames / "
        f"{summary['frames_per_second']:.1f} fps / "
        f"deadline {summary['deadline_ms']:.1f} ms"
    )
    lines.append("=" * 64)

    # -- per-device utilization ----------------------------------------
    rows = report.per_device_rows()
    if rows:
        lines.append("device utilization")
        for row in rows:
            util = float(row["utilization"])
            lines.append(
                f"  {row['device']:<14s} [{_bar(util)}] {100 * util:5.1f}%  "
                f"{row['frames']:>5d} frames  q~{row['mean_queue_depth']:.2f}"
            )
        lines.append("")

    # -- sketch percentiles --------------------------------------------
    lines.append("distributions (streaming sketches)")
    lines.append(
        "  %-12s %9s %9s %9s %9s %9s" % ("series", "p10", "p50", "p95", "p99", "max")
    )
    for label, source in (
        ("latency_ms", report.latency_histogram),
        ("slack_ms", report.slack_histogram),
        ("queue_depth", report.queue_depths),
        ("adapt_ms", report.adapt_histogram),
    ):
        lines.append(
            "  %-12s %9.2f %9.2f %9.2f %9.2f %9.2f"
            % (
                label,
                source.percentile(10),
                source.percentile(50),
                source.percentile(95),
                source.percentile(99),
                source.max,
            )
        )
    lines.append(
        f"  miss rate {100 * summary['deadline_miss_rate']:.1f}%  "
        f"adapt grant rate {100 * summary['admission_grant_rate']:.1f}%  "
        f"migrations {int(summary['migrations'])}"
    )
    lines.append("")

    # -- slowest frames with span breakdowns ---------------------------
    if tracer is not None and len(tracer):
        frames = sorted(
            tracer.frame_spans().items(),
            key=lambda item: -sum(s.dur_ms or 0.0 for s in item[1]),
        )[:top_k]
        if frames:
            lines.append(f"top {len(frames)} slowest frames (span breakdown)")
            for (stream, index), spans in frames:
                total = sum(s.dur_ms or 0.0 for s in spans)
                parts = " + ".join(
                    f"{s.name} {s.dur_ms:.2f}" for s in spans if s.dur_ms
                )
                lines.append(
                    f"  {stream} frame {index}: {total:.2f} ms = {parts}"
                )
            lines.append("")
    return "\n".join(lines)
