"""Metric primitives: counters, gauges, and sketch-backed histograms.

The registry is the fleet's metric namespace.  A :class:`FleetServer`
owns one registry; each :class:`~repro.serve.pool.DeviceWorker` records
into device-scoped instruments and, for the fleet-wide views, into
shared instruments handed down by the coordinator — exactly the shape
the old ``_fleet_*`` sink lists had, but constant-memory.

:class:`Histogram` wraps a :class:`~repro.telemetry.sketch.QuantileSketch`
and deliberately keeps a list-like surface (``len``, truthiness,
equality against a plain sequence) because it replaces what used to be
``List[int]`` fields on :class:`~repro.serve.report.FleetReport` —
``report.batch_sizes == [2] * 3`` still reads (and passes) the same
way: equal iff a sketch fed exactly that multiset of values would be
state-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

from .sketch import QuantileSketch

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = int(value)

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """Last-observed value of a fluctuating quantity."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Streaming distribution summary backed by a quantile sketch.

    O(1) memory in the number of observations, mergeable across devices,
    and exact for ``count`` / ``sum`` / ``mean`` / ``min`` / ``max`` —
    only interior percentiles carry the sketch's relative-error bound.
    """

    __slots__ = ("sketch",)

    def __init__(self, alpha: float = 0.005, sketch: Optional[QuantileSketch] = None):
        self.sketch = sketch if sketch is not None else QuantileSketch(alpha=alpha)

    @classmethod
    def of(cls, values: Iterable[float], alpha: float = 0.005) -> "Histogram":
        hist = cls(alpha=alpha)
        for value in values:
            hist.record(value)
        return hist

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        self.sketch.add(value)

    def merge(self, other: "Histogram") -> "Histogram":
        self.sketch.merge(other.sketch)
        return self

    def percentile(self, q: float) -> float:
        return self.sketch.percentile(q)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def sum(self) -> float:
        return self.sketch.sum

    @property
    def mean(self) -> float:
        return self.sketch.mean

    @property
    def min(self) -> float:
        return self.sketch.min if self.sketch.min is not None else 0.0

    @property
    def max(self) -> float:
        return self.sketch.max if self.sketch.max is not None else 0.0

    # ------------------------------------------------------------------
    # list-compatible surface (this type replaced List[int] report fields)
    def __len__(self) -> int:
        return self.sketch.count

    def __bool__(self) -> bool:
        return self.sketch.count > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Histogram):
            return self.sketch == other.sketch
        if isinstance(other, (list, tuple)):
            return self.sketch == QuantileSketch.of(
                other, alpha=self.sketch.alpha, max_buckets=self.sketch.max_buckets
            )
        return NotImplemented

    def __repr__(self) -> str:
        if not self:
            return "Histogram(empty)"
        return (
            f"Histogram(count={self.count}, mean={self.mean:.3f}, "
            f"p50={self.percentile(50):.3f}, max={self.max:.3f})"
        )

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


MetricValue = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metric namespace with get-or-create instrument accessors.

    Accessors are idempotent — asking twice for ``histogram("latency_ms")``
    returns the same instrument — so producers in different layers can
    share one series without threading object references around.
    ``merge`` folds another registry in name-wise (device registries roll
    up into the fleet registry), creating missing instruments as needed.
    """

    def __init__(self):
        self._metrics: "Dict[str, MetricValue]" = {}

    def _get(self, name: str, kind: type, factory) -> MetricValue:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, alpha: float = 0.005) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(alpha=alpha))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> Sequence[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name).merge(metric)
            elif isinstance(metric, Histogram):
                self.histogram(name).merge(metric)
            else:
                self.gauge(name).set(metric.value)
        return self

    def snapshot(self) -> Dict[str, object]:
        """Flat, JSON-friendly view of every instrument."""
        out: Dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:
                out[name] = metric.summary()
        return out
