"""Model-level entry point: shape-keyed plan cache over trace + compile.

:func:`compile_model` wraps a model in a :class:`CompiledInference`
callable.  The first call at a given input shape traces one eval-mode
forward (:mod:`repro.engine.tracer`) and lowers it to an
:class:`~repro.engine.plan.ExecutionPlan`; subsequent calls replay the
plan with zero autograd bookkeeping and no steady-state allocation.  A
new input shape (e.g. a different fleet batch size) transparently
retraces — plans are cached per ``(shape, dtype)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..nn.tensor import Tensor
from .plan import ExecutionPlan
from .tracer import trace


class CompiledInference:
    """Compiled eval-mode forward for one model.

    Bit-exact with the eager path: same kernels, same operand order, same
    dtypes — only dispatch, graph bookkeeping and allocation are removed.
    Parameters and BN state (including the per-sample fleet override) are
    read live at every replay, so adaptation steps between frames need no
    recompilation.

    The returned tensor views plan-owned storage that the next call with
    the same input shape overwrites; copy it if it must outlive a frame.
    """

    def __init__(self, model):
        self.model = model
        self._plans: Dict[Tuple, ExecutionPlan] = {}

    def _plan(self, arr: np.ndarray) -> ExecutionPlan:
        if self.model.training:
            raise RuntimeError(
                "CompiledInference requires eval mode; call model.eval() "
                "(training/adaptation forwards use the eager path)"
            )
        key = (arr.shape, arr.dtype.str)
        plan = self._plans.get(key)
        if plan is None:
            plan = ExecutionPlan(trace(self.model, arr))
            self._plans[key] = plan
        return plan

    def warm(self, x) -> None:
        """Trace + compile the plan for ``x``'s signature without replaying.

        Serving loops call this outside their timed regions so the
        one-time trace cost never pollutes per-frame latency statistics.
        """
        self._plan(x.data if isinstance(x, Tensor) else np.asarray(x))

    def __call__(self, x) -> Tensor:
        arr = x.data if isinstance(x, Tensor) else np.asarray(x)
        return Tensor(self._plan(arr).run(arr), _copy=False)

    @property
    def num_plans(self) -> int:
        return len(self._plans)

    def plan_for(self, shape, dtype=np.float32) -> ExecutionPlan:
        """The cached plan for an input signature (KeyError if untraced)."""
        return self._plans[(tuple(shape), np.dtype(dtype).str)]


def compile_model(model) -> CompiledInference:
    """Return a compiled, replayable inference callable for ``model``."""
    return CompiledInference(model)
