"""Model-level entry points: shape-keyed plan caches over trace + compile.

:func:`compile_model` wraps a model in a :class:`CompiledInference`
callable.  The first call at a given input shape traces one eval-mode
forward (:mod:`repro.engine.tracer`) and lowers it to an
:class:`~repro.engine.plan.ExecutionPlan`; subsequent calls replay the
plan with zero autograd bookkeeping and no steady-state allocation.  A
new input shape (e.g. a different fleet batch size) transparently
retraces — plans are cached per ``(shape, dtype)``.

:class:`CompiledAdaptStep` is the training-side twin: a cache of
:class:`~repro.engine.adapt_plan.AdaptationPlan` objects keyed by
``(shape, dtype, groups)``, tracing the entropy step on demand.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor
from .adapt_plan import AdaptationPlan
from .backends import resolve_backend
from .plan import ExecutionPlan
from .tracer import trace, trace_entropy_step


class CompiledInference:
    """Compiled eval-mode forward for one model.

    Bit-exact with the eager path: same kernels, same operand order, same
    dtypes — only dispatch, graph bookkeeping and allocation are removed.
    Parameters and BN state (including the per-sample fleet override) are
    read live at every replay, so adaptation steps between frames need no
    recompilation.

    The returned tensor views plan-owned storage that the next call with
    the same input shape overwrites; copy it if it must outlive a frame.
    """

    def __init__(self, model, profile: bool = False, backend=None,
                 threads: Optional[int] = None):
        self.model = model
        self.profile = profile  # per-op timing on every plan (opt-in)
        self.backend = resolve_backend(backend)
        self.threads = threads  # kernel pool width (codegen backends)
        self._plans: Dict[Tuple, ExecutionPlan] = {}

    def _plan(self, arr: np.ndarray) -> ExecutionPlan:
        if self.model.training:
            raise RuntimeError(
                "CompiledInference requires eval mode; call model.eval() "
                "(training/adaptation forwards use the eager path)"
            )
        key = (arr.shape, arr.dtype.str)
        plan = self._plans.get(key)
        if plan is None:
            graph = trace(self.model, arr)
            if self.threads is None:
                plan = self.backend.compile_inference(
                    graph, profile=self.profile
                )
            else:
                plan = self.backend.compile_inference(
                    graph, profile=self.profile, threads=self.threads
                )
            self._plans[key] = plan
        return plan

    def warm(self, x) -> None:
        """Trace + compile the plan for ``x``'s signature without replaying.

        Serving loops call this outside their timed regions so the
        one-time trace cost never pollutes per-frame latency statistics.
        """
        self._plan(x.data if isinstance(x, Tensor) else np.asarray(x))

    def __call__(self, x) -> Tensor:
        arr = x.data if isinstance(x, Tensor) else np.asarray(x)
        return Tensor(self._plan(arr).run(arr), _copy=False)

    @property
    def num_plans(self) -> int:
        return len(self._plans)

    def plan_for(self, shape, dtype=np.float32) -> ExecutionPlan:
        """The cached plan for an input signature (KeyError if untraced)."""
        return self._plans[(tuple(shape), np.dtype(dtype).str)]


def compile_model(model, profile: bool = False, backend=None,
                  threads: Optional[int] = None) -> CompiledInference:
    """Return a compiled, replayable inference callable for ``model``.

    ``profile=True`` compiles every plan with per-op timing
    (:class:`~repro.engine.plan.PlanProfile`); the default compiles
    closures with no timing code at all.  ``backend`` selects the plan
    lowering — a registry name (``"numpy"``, ``"cgen"``,
    ``"cgen-strict"``), a :class:`~repro.engine.backends.PlanBackend`
    instance, or ``None`` for ``$REPRO_BACKEND``/numpy.  ``threads``
    fixes the codegen kernel-pool width per plan (``None`` defers to the
    backend's own resolution chain; the numpy backend ignores it).
    """
    return CompiledInference(
        model, profile=profile, backend=backend, threads=threads
    )


class CompiledAdaptStep:
    """Compiled LD-BN-ADAPT entropy steps for one model.

    Caches one :class:`~repro.engine.adapt_plan.AdaptationPlan` per
    ``(input shape, dtype, groups)``.  With ``groups == 1`` a plan reads
    gamma/beta live from the model's BN modules (the single-stream step);
    with ``groups == G`` it exposes per-group parameter slots — the
    fleet's mechanism for fusing G same-phase streams' steps into one
    batched replay.  Tracing restores every buffer it touches, so
    building a plan never perturbs the model.
    """

    def __init__(self, model, loss_fn=None, profile: bool = False,
                 backend=None, threads: Optional[int] = None):
        if loss_fn is None:
            from ..adapt.entropy import entropy_loss  # avoid a cycle

            loss_fn = entropy_loss
        self.model = model
        self.loss_fn = loss_fn
        self.profile = profile  # per-op timing on every plan (opt-in)
        self.backend = resolve_backend(backend)
        self.threads = threads  # kernel pool width (codegen backends)
        self._plans: Dict[Tuple, AdaptationPlan] = {}

    def plan_for(self, arr: np.ndarray, groups: int = 1) -> AdaptationPlan:
        """The (cached) adaptation plan for ``arr``'s signature.

        Raises :class:`~repro.engine.adapt_plan.UnsupportedAdaptGraph`
        when the traced step contains an op the plan cannot lower — the
        caller falls back to the eager autograd step.  The trace graph is
        not retained: the plan's closures captured what replay needs.
        """
        key = (arr.shape, arr.dtype.str, int(groups))
        plan = self._plans.get(key)
        if plan is None:
            graph = trace_entropy_step(self.model, arr, self.loss_fn)
            if self.threads is None:
                plan = self.backend.compile_adaptation(
                    graph, groups=groups, profile=self.profile
                )
            else:
                plan = self.backend.compile_adaptation(
                    graph, groups=groups, profile=self.profile,
                    threads=self.threads,
                )
            self._plans[key] = plan
        return plan

    def warm(self, x, groups: int = 1) -> None:
        """Trace + compile for ``x``'s signature without replaying.

        Serving loops call this outside their timed regions so the
        one-time trace cost never pollutes per-step latency statistics.
        """
        self.plan_for(
            x.data if isinstance(x, Tensor) else np.asarray(x), groups=groups
        )

    @property
    def num_plans(self) -> int:
        return len(self._plans)
