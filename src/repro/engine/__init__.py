"""``repro.engine`` — compiled inference: trace once, replay many.

The serving hot path (one eval-mode forward per camera frame, fleet
batches of them per tick) previously paid full eager-mode overhead on
every call: an autograd ``Context`` and output ``Tensor`` per op, im2col
gather indices rebuilt per conv, fresh padded/column/output arrays per
layer, and four elementwise temporaries per BatchNorm.  This package
removes all of it while staying **bit-exact** with the eager path.

Architecture (three layers):

* :mod:`~repro.engine.tracer` — run the model once on a representative
  input with a hook on ``Function.apply``; every op becomes a node in a
  flat static plan.  BatchNorm layers are captured as opaque nodes
  referencing the live module, so gamma/beta, running statistics and the
  per-sample ``(scale, shift)`` fleet override remain *plan inputs*
  resolved at replay time — LD-BN-ADAPT can keep rewriting BN state
  between frames without ever retracing.
* :mod:`~repro.engine.plan` — lower the trace to closures: conv→BN→ReLU
  chains fuse into a single im2col GEMM (``np.matmul(..., out=)``) with
  the folded BN affine and ReLU applied in place as the GEMM epilogue;
  liveness analysis recycles op outputs through a byte-arena pool; and
  im2col workspaces (gather indices, padded images, column matrices) are
  cached per layer so steady-state replays allocate nothing.
* :mod:`~repro.engine.compile` — :func:`compile_model` /
  :class:`CompiledInference`: a shape-keyed plan cache, retracing
  transparently when the input shape changes (fleet batch sizes).

:class:`repro.pipeline.RealTimePipeline` and
:class:`repro.serve.FleetServer` use this path for inference by default;
``repro.nn.inference_mode(False)`` is the escape hatch back to eager.
Adaptation steps always run the eager autograd path.
"""

from .compile import CompiledInference, compile_model
from .plan import ExecutionPlan, PlanStats
from .tracer import TraceGraph, trace

__all__ = [
    "CompiledInference",
    "compile_model",
    "ExecutionPlan",
    "PlanStats",
    "TraceGraph",
    "trace",
]
