"""``repro.engine`` — compiled inference: trace once, replay many.

The serving hot path (one eval-mode forward per camera frame, fleet
batches of them per tick) previously paid full eager-mode overhead on
every call: an autograd ``Context`` and output ``Tensor`` per op, im2col
gather indices rebuilt per conv, fresh padded/column/output arrays per
layer, and four elementwise temporaries per BatchNorm.  This package
removes all of it while staying **bit-exact** with the eager path (on
the default backend; see parity below).

Architecture (four layers):

* :mod:`~repro.engine.tracer` — run the model once on a representative
  input with a hook on ``Function.apply``; every op becomes a node in a
  flat static plan.  BatchNorm layers are captured as opaque nodes
  referencing the live module, so gamma/beta, running statistics and the
  per-sample ``(scale, shift)`` fleet override remain *plan inputs*
  resolved at replay time — LD-BN-ADAPT can keep rewriting BN state
  between frames without ever retracing.
* :mod:`~repro.engine.plan` — lower the trace to closures: conv→BN→ReLU
  chains fuse into a single im2col GEMM (``np.matmul(..., out=)``) with
  the folded BN affine and ReLU applied in place as the GEMM epilogue;
  liveness analysis recycles op outputs through a byte-arena pool
  (:mod:`~repro.engine.backends.core` holds the backend-neutral
  arena/liveness/im2col machinery); and im2col workspaces are cached per
  layer so steady-state replays allocate nothing.
* :mod:`~repro.engine.backends` — pluggable *plan backends* decide what
  executes each lowered stage.  ``numpy`` (the default) replays the
  closures above and is the bit-exact oracle.  ``cgen`` renders the
  fused stage list into one C translation unit per plan, compiles it
  with the host toolchain (``$REPRO_CC``, else cc/gcc/clang) and replays
  consecutive rendered stages as single ctypes calls over a pointer
  table; live BN fold vectors and per-sample fleet overrides are bound
  into that table at replay time, so LD-BN-ADAPT updates never recompile.
  Compiled ``.so``\\ s are cached on disk keyed by source hash
  (``$REPRO_CGEN_CACHE``, default ``~/.cache/repro_cgen``) and the cache
  is consulted *before* the compiler lookup, so hosts without a
  toolchain can serve from a shipped cache.  Parity is structural: any
  stage the renderer declines — and the whole plan, when no compiler
  exists — falls back to the numpy closure, with ``cgen-strict``
  demoting every stage that cannot reproduce the oracle bitwise
  (float64-accumulation GEMMs back the ones that can) and plain ``cgen``
  holding rendered stages to a per-dtype float band instead.  Rendered
  kernels are *threaded*: heavy stages (conv GEMMs with the im2col
  gather fused into the kernel loop — no workspace materialization —
  linear, max-pool, large elementwise sweeps, the rendered BN backward)
  tile their output rows over a persistent pthread pool living inside
  the generated ``.so`` (refcounted across plans sharing a cached
  library, barrier-synced per stage; see
  :mod:`~repro.engine.backends.threading`).  Fixed tile ownership with
  no shared accumulators keeps ``cgen-strict`` bitwise at every pool
  width and every run reproducible.  Width resolves ``threads=`` (on
  ``compile_model``/``CompiledAdaptStep``, ``FleetConfig``,
  ``PipelineConfig``, ``LDBNAdaptConfig``, or ``--threads``) →
  ``$REPRO_CGEN_THREADS`` → device-profile cores → host CPUs;
  ``threads=None`` keeps single-thread plans, bitwise-stable with
  pre-threading runs, while an explicit width also re-prices
  compute-bound roofline latencies via
  :func:`repro.hw.parallel_speedup` so the scheduler and admission see
  the faster device honestly.  Select a backend via
  ``compile_model(model, backend=...)``, ``$REPRO_BACKEND``,
  ``FleetConfig(backend=...)``, ``PipelineConfig(backend=...)``, or the
  ``--backend``/``--parity`` CLI flags on ``fleet`` and the ``bench-*``
  subcommands.
* :mod:`~repro.engine.compile` — :func:`compile_model` /
  :class:`CompiledInference`: a shape-keyed plan cache, retracing
  transparently when the input shape changes (fleet batch sizes).

:class:`repro.pipeline.RealTimePipeline` and
:class:`repro.serve.FleetServer` use this path for inference by default;
``repro.nn.inference_mode(False)`` is the escape hatch back to eager.

The same machinery covers the *adaptation* hot path:
:func:`~repro.engine.tracer.trace_entropy_step` traces one LD-BN-ADAPT
entropy step (train-mode BN forward + entropy loss), and
:mod:`~repro.engine.adapt_plan` lowers it to a second static plan — the
forward replays the eager train kernels (and is offered to the plan
backend's renderer stage-by-stage, exactly like inference), the backward
program is pruned to the gradient paths that reach BN gamma/beta
(conv/linear weight gradients are never computed) and offered to the
renderer too — under ``cgen`` the BN gamma/beta gradient reductions and
the pruned chain run as threaded C stages — and
activations/saved-buffers/gradients share the engine's arena with
liveness computed over the combined forward+backward program.
:class:`~repro.engine.compile.CompiledAdaptStep` caches those plans per
``(shape, dtype, groups)``; ``groups > 1`` is the fleet's batched
same-phase adaptation: per-group batch statistics and per-group
gamma/beta slots make one replay equal G serial steps.
:class:`repro.adapt.LDBNAdapt` uses this path by default;
``repro.nn.adaptation_mode(False)`` falls back to the eager autograd
step (the correctness oracle).
"""

from .adapt_plan import (
    AdaptationPlan,
    AdaptPlanStats,
    BNLayerTap,
    UnsupportedAdaptGraph,
)
from .backends import (
    PlanBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .compile import CompiledAdaptStep, CompiledInference, compile_model
from .plan import ExecutionPlan, PlanProfile, PlanStats
from .tracer import TraceGraph, trace, trace_entropy_step

__all__ = [
    "AdaptationPlan",
    "AdaptPlanStats",
    "BNLayerTap",
    "CompiledAdaptStep",
    "CompiledInference",
    "PlanBackend",
    "UnsupportedAdaptGraph",
    "available_backends",
    "compile_model",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "ExecutionPlan",
    "PlanProfile",
    "PlanStats",
    "TraceGraph",
    "trace",
    "trace_entropy_step",
]
