"""Worker-pool runtime for the threaded C plan backend.

The cgen renderer tiles its heavy kernels (conv GEMMs, linear, max-pool,
large elementwise sweeps, the rendered BN backward) over a small
persistent pthread pool that lives *inside* the generated ``.so``:

* the pool is spawned once per loaded library (``repro_pool_start``,
  refcounted — every plan holding the library takes one reference and
  drops it on teardown, so two plans sharing a cached ``.so`` share one
  pool and the workers are joined when the last plan dies);
* each stage dispatch is barrier-synced: the driver publishes
  ``(table, stage)`` under a mutex, wakes the workers, runs the stage as
  tid 0 itself, and waits until every worker checked in — replay
  semantics and the runtime pointer table are exactly the single-thread
  backend's, one stage fully finishes before the next starts;
* stages too small to amortize a wake-up are flagged non-threadable and
  run inline on the dispatching thread.

**Deterministic-reduction rule** (what keeps ``cgen-strict`` bitwise and
every run reproducible): the iteration space is partitioned by *fixed
tile ownership of output elements* — thread ``t`` of ``nt`` owns output
rows ``[total*t//nt, total*(t+1)//nt)`` and computes each of its outputs
start-to-finish in the same serial reduction order the single-thread
kernel uses.  No accumulator is ever shared, no atomics exist, and the
per-element arithmetic is independent of both ``nt`` and the tile
boundaries, so outputs are bitwise identical run-to-run *and* across
thread counts.  Per-thread im2col gather scratch lives in a static
arena inside the ``.so`` (``POOL_SCR(tid)``), sized at render time.

Thread-count resolution (``resolve_threads``) follows the config chain:
an explicit ``CGenConfig.threads`` value wins, then
``$REPRO_CGEN_THREADS``, then the serving device profile's core count,
then the host CPU count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

ENV_THREADS = "REPRO_CGEN_THREADS"

# hard cap: far above any profile in hw/device.py, low enough that a
# typo'd REPRO_CGEN_THREADS cannot fork-bomb the host
MAX_THREADS = 64


@dataclass(frozen=True)
class CGenConfig:
    """Configuration of one cgen backend instance.

    ``parity`` selects the kernel family (``"band"`` — fast kernels held
    to a per-dtype float tolerance; ``"strict"`` — bitwise-reproducible
    kernels).  ``threads`` is the worker-pool width baked into rendered
    plans; ``None`` defers to ``$REPRO_CGEN_THREADS`` / the device core
    count / the host CPU count at compile time.
    """

    parity: str = "band"
    threads: Optional[int] = None

    def __post_init__(self):
        if self.parity not in ("band", "strict"):
            raise ValueError(
                f"parity must be 'band' or 'strict': {self.parity!r}"
            )
        if self.threads is not None and int(self.threads) < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")


def resolve_threads(explicit: Optional[int] = None,
                    device_cores: Optional[int] = None) -> int:
    """Resolve the worker-pool width for one plan compilation.

    Priority: ``explicit`` (a ``CGenConfig.threads`` / ``--threads``
    value) > ``$REPRO_CGEN_THREADS`` > ``device_cores`` (the serving
    device profile's CPU core count) > the host CPU count.  Always
    clamped to ``[1, MAX_THREADS]``.
    """
    n: Optional[int] = None
    if explicit is not None:
        n = int(explicit)
    else:
        env = os.environ.get(ENV_THREADS)
        if env:
            try:
                n = int(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_THREADS} must be an integer, got {env!r}"
                ) from None
        elif device_cores:
            n = int(device_cores)
        else:
            n = os.cpu_count() or 1
    return max(1, min(n, MAX_THREADS))


def tile_bounds(total: int, tid: int, nt: int) -> Tuple[int, int]:
    """Python mirror of the C partition formula (tests assert against it).

    Thread ``tid`` of ``nt`` owns ``[total*tid//nt, total*(tid+1)//nt)``
    — contiguous, exhaustive, non-overlapping, and empty when there are
    more threads than rows.
    """
    return (total * tid) // nt, (total * (tid + 1)) // nt


def scratch_prelude(nt: int, scratch_bytes: int) -> str:
    """Per-thread gather-scratch arena, emitted *before* the stage
    functions (they address their tile through ``POOL_SCR(tid)``).

    ``scratch_bytes`` is the largest per-thread tile any stage needs
    (fused-im2col gather tiles, small-P transpose buffers); the stride
    is 64-aligned so threads never share a cache line.
    """
    stride = max((scratch_bytes + 63) // 64 * 64, 64)
    words = (nt * stride) // 8
    return (
        f"#define SCR_STRIDE {stride}LL\n"
        f"static double POOL_SCRATCH[{words}];\n"
        "#define POOL_SCR(t) "
        "((char*)POOL_SCRATCH + (i64)(t) * SCR_STRIDE)\n"
    )


def pool_runtime_source(nt: int) -> str:
    """The C worker-pool runtime embedded in every rendered TU.

    ``nt`` is the pool width baked into this plan (``POOL_NT``).  Stage
    functions take ``(char** T, i64 tid, i64 nt)`` and the driver either
    dispatches a stage across the pool (``STAGE_MT`` set) or runs it
    inline single-threaded.  Emitted *after* the stage table — it
    references ``STAGES`` / ``STAGE_MT``.
    """
    return f"""
#define POOL_NT {nt}LL

static pthread_mutex_t POOL_MU = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t POOL_GO = PTHREAD_COND_INITIALIZER;
static pthread_cond_t POOL_DONE = PTHREAD_COND_INITIALIZER;
static pthread_t POOL_T[POOL_NT > 1 ? POOL_NT - 1 : 1];
static i64 POOL_REFS = 0;   /* live plan handles on this library */
static i64 POOL_LIVE = 0;   /* workers currently spawned */
static i64 POOL_QUIT = 0;
static i64 POOL_EPOCH = 0;  /* work generation, bumped per dispatch */
static i64 POOL_NDONE = 0;  /* workers finished the current epoch */
static char** POOL_TAB = 0;
static i64 POOL_SID = -1;

static void* pool_worker(void* argp) {{
    i64 tid = (i64)(intptr_t)argp;
    /* epoch 0 is never dispatched (start resets it, dispatch pre-
     * increments), so a freshly spawned worker always waits for the
     * first bump — reading the live epoch here instead would race a
     * concurrent dispatch and miss its wakeup forever */
    i64 seen = 0;
    pthread_mutex_lock(&POOL_MU);
    for (;;) {{
        while (!POOL_QUIT && POOL_EPOCH == seen)
            pthread_cond_wait(&POOL_GO, &POOL_MU);
        if (POOL_QUIT) break;
        seen = POOL_EPOCH;
        char** tab = POOL_TAB;
        i64 sid = POOL_SID;
        pthread_mutex_unlock(&POOL_MU);
        STAGES[sid](tab, tid, POOL_NT);
        pthread_mutex_lock(&POOL_MU);
        if (++POOL_NDONE == POOL_NT - 1)
            pthread_cond_signal(&POOL_DONE);
    }}
    pthread_mutex_unlock(&POOL_MU);
    return 0;
}}

i64 repro_pool_start(void) {{
    pthread_mutex_lock(&POOL_MU);
    POOL_REFS++;
    if (!POOL_LIVE && POOL_NT > 1) {{
        POOL_QUIT = 0;
        POOL_EPOCH = 0;
        for (i64 t = 1; t < POOL_NT; ++t)
            pthread_create(&POOL_T[t - 1], 0, pool_worker,
                           (void*)(intptr_t)t);
        POOL_LIVE = 1;
    }}
    pthread_mutex_unlock(&POOL_MU);
    return POOL_NT;
}}

void repro_pool_stop(void) {{
    pthread_mutex_lock(&POOL_MU);
    i64 refs = --POOL_REFS;
    i64 live = POOL_LIVE;
    if (refs <= 0 && live) {{
        POOL_QUIT = 1;
        POOL_LIVE = 0;
        pthread_cond_broadcast(&POOL_GO);
    }}
    pthread_mutex_unlock(&POOL_MU);
    if (refs <= 0 && live)
        for (i64 t = 1; t < POOL_NT; ++t)
            pthread_join(POOL_T[t - 1], 0);
}}

i64 repro_pool_refs(void) {{
    pthread_mutex_lock(&POOL_MU);
    i64 refs = POOL_REFS;
    pthread_mutex_unlock(&POOL_MU);
    return refs;
}}

i64 repro_pool_width(void) {{ return POOL_NT; }}

void repro_run(char** T, const i64* ids, i64 n) {{
    for (i64 q = 0; q < n; ++q) {{
        i64 sid = ids[q];
        if (POOL_NT > 1 && POOL_LIVE && STAGE_MT[sid]) {{
            pthread_mutex_lock(&POOL_MU);
            POOL_TAB = T;
            POOL_SID = sid;
            POOL_NDONE = 0;
            POOL_EPOCH++;
            pthread_cond_broadcast(&POOL_GO);
            pthread_mutex_unlock(&POOL_MU);
            STAGES[sid](T, 0, POOL_NT);  /* main thread works as tid 0 */
            pthread_mutex_lock(&POOL_MU);
            while (POOL_NDONE < POOL_NT - 1)
                pthread_cond_wait(&POOL_DONE, &POOL_MU);
            pthread_mutex_unlock(&POOL_MU);
        }} else {{
            STAGES[sid](T, 0, 1);
        }}
    }}
}}
"""


class PoolHandle:
    """One plan's refcount on its loaded library's worker pool.

    Created at finalize (after ``repro_pool_start``), stored in the
    plan's keep-alive list; when the plan is garbage-collected the
    handle drops the reference and the library joins its workers once
    the last sharing plan is gone.  ``close`` is idempotent.
    """

    def __init__(self, lib):
        self._stop = lib.repro_pool_stop
        self._lib = lib  # keep the dlopen handle alive until we closed

    def close(self) -> None:
        stop = self._stop
        if stop is not None:
            self._stop = None
            stop()
            self._lib = None

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass
