"""The ``plan -> backend`` interface: how traced graphs become plans.

A :class:`PlanBackend` lowers a traced graph (inference forward or
LD-BN-ADAPT entropy step) into an executable plan.  All backends share
the front half of the pipeline — tracing, fusion scan, liveness/arena
assignment, im2col workspace lowering (:mod:`repro.engine.backends.core`)
— and differ only in what executes each stage:

* ``numpy`` (:mod:`~repro.engine.backends.numpy_backend`) — the original
  closure lowering; bit-exact with the eager autograd path and therefore
  the correctness oracle for everything else.
* ``cgen`` / ``cgen-strict`` (:mod:`~repro.engine.backends.cgen`) — the
  plan rendered to one C translation unit, compiled at runtime and
  driven through ``ctypes``; unrenderable stages (or a missing compiler)
  fall back per stage to the numpy closures.

Backends are looked up by name through a registry so callers thread a
plain string (``FleetConfig(backend="cgen")``, ``--backend cgen``)
without importing backend modules.  ``resolve_backend(None)`` honours
the ``REPRO_BACKEND`` environment variable, defaulting to ``numpy``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

_ENV_BACKEND = "REPRO_BACKEND"


class PlanBackend:
    """Lowers traced graphs to executable plans.

    Implementations must return objects with the
    :class:`~repro.engine.plan.ExecutionPlan` /
    :class:`~repro.engine.adapt_plan.AdaptationPlan` interface (``run``,
    ``stats``, ``profile_summary``, ``backend_info``) — today they *are*
    those classes, differing only in the stage renderer handed to the
    compilation.
    """

    name: str = "abstract"

    def compile_inference(self, graph, profile: bool = False,
                          threads=None):
        raise NotImplementedError

    def compile_adaptation(self, graph, groups: int = 1,
                           profile: bool = False, threads=None):
        raise NotImplementedError


_REGISTRY: Dict[str, Callable[[], PlanBackend]] = {}
_INSTANCES: Dict[str, PlanBackend] = {}


def register_backend(name: str, factory: Callable[[], PlanBackend]) -> None:
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Registered backend names (registration order)."""
    return list(_REGISTRY)


def get_backend(name: str) -> PlanBackend:
    """Instantiate (once) and return the backend registered as ``name``."""
    backend = _INSTANCES.get(name)
    if backend is None:
        factory = _REGISTRY.get(name)
        if factory is None:
            raise ValueError(
                f"unknown plan backend {name!r}; "
                f"available: {', '.join(_REGISTRY)}"
            )
        backend = _INSTANCES[name] = factory()
    return backend


def resolve_backend(spec=None) -> PlanBackend:
    """Turn a backend spec into a :class:`PlanBackend` instance.

    ``None`` resolves the ``REPRO_BACKEND`` environment variable (default
    ``numpy``); a string goes through the registry; a backend instance
    passes through unchanged.
    """
    if spec is None:
        spec = os.environ.get(_ENV_BACKEND) or "numpy"
    if isinstance(spec, PlanBackend):
        return spec
    return get_backend(spec)
