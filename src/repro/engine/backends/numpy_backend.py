"""The numpy-closure backend: the engine's original lowering, as a backend.

This is the bit-exactness oracle — every stage issues the same numpy
kernels on the same buffers in the same order as the eager autograd
path.  The codegen backends compile through the *same* plan classes and
differ only in the renderer they pass, which is what makes their
per-stage fallback structural: a declined stage simply keeps the closure
this backend would have produced.
"""

from __future__ import annotations

from .base import PlanBackend, register_backend


class NumpyBackend(PlanBackend):
    name = "numpy"

    # ``threads`` is accepted for interface parity and ignored: numpy's
    # kernels thread (or don't) per BLAS build, not per plan
    def compile_inference(self, graph, profile: bool = False,
                          threads=None):
        from ..plan import ExecutionPlan

        return ExecutionPlan(graph, profile=profile)

    def compile_adaptation(self, graph, groups: int = 1,
                           profile: bool = False, threads=None):
        from ..adapt_plan import AdaptationPlan

        return AdaptationPlan(graph, groups=groups, profile=profile)


register_backend("numpy", NumpyBackend)
