"""Backend-neutral lowering machinery shared by every plan backend.

Both static plans — the inference :class:`~repro.engine.plan.ExecutionPlan`
and the adaptation :class:`~repro.engine.adapt_plan.AdaptationPlan` — used
to carry private copies of the same three pieces of compile-time
infrastructure.  They live here now, and every :class:`PlanBackend`
(numpy closures, generated C) builds on the same objects:

* :class:`_Arena` / :class:`_Block` — the liveness-driven byte-arena pool
  op outputs are recycled through;
* :class:`ConvLowering` / :class:`PoolLowering` — the im2col geometry of
  one conv/pool layer (gather indices, padded-image buffer, column
  workspace) computed once at compile time, exactly as both plans did it;
* :class:`PlanProfile` / :func:`_timed_step` — the opt-in per-stage
  replay profiler, now tagged with the ``backend`` that produced the
  stages it times.

Nothing in this module touches numpy kernels at replay time — the
workspaces are plain arrays the backends capture however they like — so
extracting it is a pure refactor: the numpy closures issue the same
kernels on the same buffers in the same order as before.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...nn.functional import _conv_output_size, _im2col_indices

_ALIGN = 64


class _Block:
    """One arena-backed byte buffer, viewable as any (shape, dtype)."""

    __slots__ = ("raw", "nbytes", "alive", "pinned")

    def __init__(self, nbytes: int):
        self.raw = np.empty(nbytes, dtype=np.uint8)
        self.nbytes = nbytes
        self.alive: set = set()  # vids currently backed by this block
        self.pinned = False  # never recycled (e.g. aliased by a generic op)

    def view(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        need = int(np.prod(shape)) * dtype.itemsize
        return self.raw[:need].view(dtype).reshape(shape)


class _Arena:
    """Size-class-free best-fit pool of :class:`_Block` buffers."""

    def __init__(self):
        self.blocks: List[_Block] = []
        self._free: List[_Block] = []
        self.total_bytes = 0
        self.requested_bytes = 0  # sum of all allocation requests (pre-reuse)

    def alloc(self, shape: Tuple[int, ...], dtype) -> Tuple[_Block, np.ndarray]:
        dtype = np.dtype(dtype)
        need = max(int(np.prod(shape)) * dtype.itemsize, 1)
        self.requested_bytes += need
        aligned = -(-need // _ALIGN) * _ALIGN
        best = None
        for block in self._free:
            if block.nbytes >= aligned and (
                best is None or block.nbytes < best.nbytes
            ):
                best = block
        if best is not None:
            self._free.remove(best)
            block = best
        else:
            block = _Block(aligned)
            self.blocks.append(block)
            self.total_bytes += aligned
        return block, block.view(shape, dtype)

    def release(self, block: _Block) -> None:
        if not block.pinned:
            self._free.append(block)


@dataclass
class ConvLowering:
    """Compile-time im2col geometry + workspaces of one conv layer.

    ``flat`` indexes the (optionally padded) input image per ``(k, p)``
    column entry; ``padded``/``core``/``cols`` are the cached per-layer
    workspaces replays gather into with ``np.take(..., out=)``.  When the
    kernel is 1x1/stride-1/unpadded (``identity_cols``) the input itself
    is the column matrix and no workspace exists.  ``kij`` keeps the raw
    ``(k, i, j)`` im2col index triple for backends that need per-element
    coordinates (the C renderer's padding-sentinel indices, the
    adaptation plan's scatter).
    """

    n: int
    c: int
    h: int
    w: int
    f_out: int
    kernel: Tuple[int, int]
    stride: Tuple[int, int]
    padding: Tuple[int, int]
    out_h: int
    out_w: int
    p_total: int
    k_total: int
    compute_dtype: np.dtype
    x_dtype: np.dtype
    identity_cols: bool
    flat: Optional[np.ndarray] = None
    padded: Optional[np.ndarray] = None
    core: Optional[np.ndarray] = None
    cols: Optional[np.ndarray] = None
    kij: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
    workspace_nbytes: int = 0

    def release_workspace(self) -> None:
        """Drop the gather workspaces (padded image, column matrix).

        Called by a codegen backend once every stage using this lowering
        gathers inside its own kernel (fused im2col) — the plan-side
        buffers would otherwise sit resident for the plan's lifetime.
        ``flat``/``kij`` stay: they are compile-time geometry, not
        workspace.  Irreversible for this plan; the numpy closures that
        captured these arrays must already be unreachable.
        """
        self.padded = None
        self.core = None
        self.cols = None
        self.workspace_nbytes = 0


def lower_conv(
    x_shape: Tuple[int, ...],
    weight_shape: Tuple[int, ...],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    compute_dtype,
    x_dtype,
) -> ConvLowering:
    """The shared conv lowering both plans previously duplicated inline."""
    n, c, h, w = x_shape
    f_out, _, kh, kw = weight_shape
    out_h = _conv_output_size(h, kh, stride[0], padding[0])
    out_w = _conv_output_size(w, kw, stride[1], padding[1])
    p_total = out_h * out_w
    k_total = c * kh * kw
    compute_dtype = np.dtype(compute_dtype)
    x_dtype = np.dtype(x_dtype)

    geo = ConvLowering(
        n=n, c=c, h=h, w=w, f_out=f_out, kernel=(kh, kw), stride=stride,
        padding=padding, out_h=out_h, out_w=out_w, p_total=p_total,
        k_total=k_total, compute_dtype=compute_dtype, x_dtype=x_dtype,
        identity_cols=(
            kh == 1 and kw == 1 and stride == (1, 1) and padding == (0, 0)
        ),
    )
    if not geo.identity_cols:
        k, i, j, _, _ = _im2col_indices(c, h, w, (kh, kw), stride, padding)
        geo.kij = (k, i, j)
        hp, wp = h + 2 * padding[0], w + 2 * padding[1]
        geo.flat = ((k * hp + i) * wp + j).astype(np.intp)
        if padding != (0, 0):
            geo.padded = np.zeros((n, c, hp, wp), dtype=compute_dtype)
            geo.core = geo.padded[:, :, padding[0]:padding[0] + h,
                                  padding[1]:padding[1] + w]
            geo.cols = np.empty((n, k_total, p_total), dtype=compute_dtype)
            geo.workspace_nbytes = geo.padded.nbytes + geo.cols.nbytes
        else:
            geo.cols = np.empty((n, k_total, p_total), dtype=x_dtype)
            geo.workspace_nbytes = geo.cols.nbytes
    return geo


@dataclass
class PoolLowering:
    """Compile-time geometry + workspaces of one max-pool layer."""

    n: int
    c: int
    h: int
    w: int
    h_eff: int
    w_eff: int
    kernel: Tuple[int, int]
    stride: Tuple[int, int]
    padding: Tuple[int, int]
    out_h: int
    out_w: int
    p_total: int
    x_dtype: np.dtype
    flat: np.ndarray
    kij: Tuple[np.ndarray, np.ndarray, np.ndarray]
    padded: Optional[np.ndarray] = None
    core: Optional[np.ndarray] = None
    cols: Optional[np.ndarray] = None
    workspace_nbytes: int = 0


def lower_pool(
    x_shape: Tuple[int, ...],
    out_shape: Tuple[int, ...],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    x_dtype,
) -> PoolLowering:
    """The shared max-pool lowering both plans previously duplicated."""
    n, c, h, w = x_shape
    _, _, out_h, out_w = out_shape
    p_total = out_h * out_w
    x_dtype = np.dtype(x_dtype)

    padded = core = None
    if padding != (0, 0):
        h_eff, w_eff = h + 2 * padding[0], w + 2 * padding[1]
        padded = np.full((n * c, h_eff, w_eff), -np.inf, dtype=x_dtype)
        core = padded[:, padding[0]:padding[0] + h,
                      padding[1]:padding[1] + w]
    else:
        h_eff, w_eff = h, w
    k, i, j, _, _ = _im2col_indices(1, h_eff, w_eff, kernel, stride, (0, 0))
    flat = (i * w_eff + j).astype(np.intp)
    cols = np.empty((n * c, kernel[0] * kernel[1], p_total), dtype=x_dtype)
    workspace = cols.nbytes + (padded.nbytes if padded is not None else 0)
    return PoolLowering(
        n=n, c=c, h=h, w=w, h_eff=h_eff, w_eff=w_eff, kernel=kernel,
        stride=stride, padding=padding, out_h=out_h, out_w=out_w,
        p_total=p_total, x_dtype=x_dtype, flat=flat, kij=(k, i, j),
        padded=padded, core=core, cols=cols, workspace_nbytes=workspace,
    )


@dataclass
class PlanProfile:
    """Opt-in per-op timing of a compiled plan's replays.

    Created only when a plan is compiled with ``profile=True`` — the
    default replay path never touches it (the closures are built without
    any timing code, so disabled profiling costs nothing).  ``op_ms``
    buckets total milliseconds by stage label (e.g. ``"conv+bn+relu"``,
    ``"fwd:conv"``; stages a codegen backend rendered are prefixed with
    the backend name, ``"cgen:conv+bn+relu"``, so profiled runs
    distinguish rendered from fallback stages); ``bucket_ms`` decomposes
    the numpy GEMM stages into their ``im2col`` / ``gemm`` / ``epilogue``
    phases (a stage's phases sum to its ``op_ms`` entry, so the
    decomposition reconciles — rendered C stages execute as one fused
    kernel and contribute no buckets).  ``backend`` names the
    :class:`~repro.engine.backends.base.PlanBackend` that lowered the
    plan.
    """

    op_ms: Dict[str, float] = field(default_factory=dict)
    op_calls: Dict[str, int] = field(default_factory=dict)
    bucket_ms: Dict[str, float] = field(default_factory=dict)
    runs: int = 0
    backend: str = "numpy"

    def add_op(self, label: str, seconds: float) -> None:
        self.op_ms[label] = self.op_ms.get(label, 0.0) + 1e3 * seconds
        self.op_calls[label] = self.op_calls.get(label, 0) + 1

    def add_bucket(self, name: str, seconds: float) -> None:
        self.bucket_ms[name] = self.bucket_ms.get(name, 0.0) + 1e3 * seconds

    def summary(self) -> Dict[str, object]:
        total = sum(self.op_ms.values())
        return {
            "runs": self.runs,
            "backend": self.backend,
            "total_ms": total,
            "op_ms": dict(sorted(self.op_ms.items(), key=lambda kv: -kv[1])),
            "op_calls": dict(self.op_calls),
            "bucket_ms": dict(
                sorted(self.bucket_ms.items(), key=lambda kv: -kv[1])
            ),
        }


def _timed_step(step, label: str, profile: PlanProfile):
    """Wrap one replay closure with per-call timing into ``profile``."""

    def timed():
        t0 = time.perf_counter()
        step()
        profile.add_op(label, time.perf_counter() - t0)

    return timed
