"""Plan backends: pluggable lowerings of traced graphs to executable plans.

``numpy`` is the bit-exact closure oracle, ``cgen``/``cgen-strict``
render plans to a compiled C translation unit with per-stage numpy
fallback.  The cgen kernels are *threaded*: heavy stages tile their
output space over a persistent pthread pool living inside the generated
``.so`` (:mod:`repro.engine.backends.threading`), with fixed tile
ownership of output rows and unshared accumulators so ``cgen-strict``
stays bitwise at any thread count.  Pool width resolves
``CGenConfig.threads`` → ``$REPRO_CGEN_THREADS`` → device-profile cores
→ host CPUs, and every ``compile_*`` entry point takes a ``threads``
override.  See :mod:`repro.engine.backends.base` for the interface and
registry, :mod:`repro.engine.backends.core` for the shared
arena/liveness/im2col lowering machinery.
"""

from .base import (
    PlanBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .cgen import PARITY_ATOL, PARITY_RTOL, CGenBackend, find_cc
from .numpy_backend import NumpyBackend
from .threading import CGenConfig, resolve_threads, tile_bounds

__all__ = [
    "PlanBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "NumpyBackend",
    "CGenBackend",
    "CGenConfig",
    "PARITY_RTOL",
    "PARITY_ATOL",
    "find_cc",
    "resolve_threads",
    "tile_bounds",
]
