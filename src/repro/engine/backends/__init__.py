"""Plan backends: pluggable lowerings of traced graphs to executable plans.

``numpy`` is the bit-exact closure oracle, ``cgen``/``cgen-strict``
render plans to a compiled C translation unit with per-stage numpy
fallback.  See :mod:`repro.engine.backends.base` for the interface and
registry, :mod:`repro.engine.backends.core` for the shared
arena/liveness/im2col lowering machinery.
"""

from .base import (
    PlanBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .cgen import PARITY_ATOL, PARITY_RTOL, CGenBackend, find_cc
from .numpy_backend import NumpyBackend

__all__ = [
    "PlanBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "NumpyBackend",
    "CGenBackend",
    "PARITY_RTOL",
    "PARITY_ATOL",
    "find_cc",
]
