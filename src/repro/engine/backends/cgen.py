"""The C codegen backend: render a compiled plan to one C translation unit.

The renderer rides along :class:`~repro.engine.plan.ExecutionPlan` /
:class:`~repro.engine.adapt_plan.AdaptationPlan` compilation: every fused
stage the numpy lowering produces is *offered* together with its closure,
and the renderer either emits an equivalent C stage function or declines
(unsupported op, dynamic-slot input, non-contiguous buffer, exotic
dtype).  For adaptation plans both the forward *and* the pruned
LD-BN-ADAPT backward (BN gamma/beta grads + the reduced chain) are
offered.  At finalize time the accepted stages become one translation
unit

* one ``static void s<id>(char** T, i64 tid, i64 nt)`` function per
  stage, reading its buffers from a pointer table at
  compile-time-constant slots;
* a single exported ``repro_run(char** T, const long long* ids, n)``
  driver, so a run of consecutive rendered stages costs one ``ctypes``
  call instead of one Python closure dispatch per stage;
* a persistent pthread worker pool (see
  :mod:`repro.engine.backends.threading`), spawned once per loaded
  ``.so`` and refcounted across the plans sharing it.  Heavy stages are
  tiled over the pool by *fixed output-row ownership* — thread ``t`` of
  ``nt`` owns rows ``[total*t//nt, total*(t+1)//nt)`` and runs the same
  serial reduction order per element as the single-thread kernel, so no
  accumulator is shared, no atomics exist, and outputs are bitwise
  identical run-to-run and across thread counts.  Each dispatch is
  barrier-synced, so replay semantics and the runtime pointer table are
  unchanged.  Conv stages fold the im2col gather into the GEMM loop:
  each thread gathers only its own pixel tile into per-thread scratch
  inside the ``.so``, and the plan-side im2col workspaces of surviving
  conv stages are released at finalize (``profile_summary()`` shows
  zero im2col workspace bytes for converted layers).

compiled with ``cc -shared -O2 -march=native -pthread`` (plus
``-ffp-contract=off`` under strict parity) and loaded through
:mod:`ctypes`.  Artifacts are cached on disk keyed by the source hash
*and* a plan-variant tag (thread count, parity — two configs rendering
different tilings can never collide; ``~/.cache/repro_cgen`` or
``$REPRO_CGEN_CACHE``) — a cached ``.so`` loads even when no compiler is
present, the cache is checked *before* the compiler lookup for exactly
that reason, and a corrupted cache entry is deleted and recompiled
instead of crashing the plan.

Nothing is baked that LD-BN-ADAPT mutates at runtime: the BN fold
vectors (running stats, gamma/beta) and the per-sample fleet ``(scale,
shift)`` override are passed as pointer-table entries rebound per replay
by tiny identity-cached binders, so adaptation updates and fleet
overrides need no retrace and no recompile.

Parity is enforced structurally, per stage: after compilation every
rendered stage is probed on the traced example against its own numpy
closure (snapshot the output buffers, run the oracle, rewind, run the C
stage — through the same pool dispatch production uses — compare) and
demoted back to the closure on mismatch.  ``cgen`` compares within a
tight tolerance band (:data:`PARITY_RTOL` / :data:`PARITY_ATOL`);
``cgen-strict`` compares bitwise (``tobytes``) and backs the comparison
with a float64-accumulation GEMM variant — stages that cannot match the
BLAS-backed oracle bit-for-bit simply stay numpy.  A missing compiler
(or a failed compile) falls the whole plan back to the numpy closures
with a visible :class:`RuntimeWarning`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import warnings
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .base import PlanBackend, register_backend
from .core import ConvLowering, PoolLowering, _timed_step
from .threading import (
    CGenConfig,
    PoolHandle,
    pool_runtime_source,
    resolve_threads,
    scratch_prelude,
)

_ENV_CC = "REPRO_CC"
_ENV_CACHE = "REPRO_CGEN_CACHE"

# cc invocation.  Strict parity compiles with -ffp-contract=off so the
# f64 elementwise epilogues run the same IEEE op sequence as numpy's
# pass-per-op ufuncs (no FMA contraction) and can probe bitwise; band
# parity allows contraction — FMA both doubles GEMM throughput and
# *reduces* rounding error, and the tolerance probe still gates it.
_BASE_CFLAGS = ["-shared", "-fPIC", "-O2", "-march=native", "-pthread",
                "-fno-math-errno", "-fvect-cost-model=dynamic"]

# stages below this many inner-loop iterations run inline: a pool
# dispatch costs a wake+barrier (~µs), so tiny stages stay serial
_MT_MIN_WORK = 1 << 15


def _cflags(strict: bool) -> List[str]:
    return _BASE_CFLAGS + [
        "-ffp-contract=off" if strict else "-ffp-contract=fast"
    ]

# Default ("band") parity tolerances, keyed by dtype name.  f64 stages
# differ from the oracle only in GEMM summation order; f32 additionally
# accumulates in single precision.
PARITY_RTOL = {"float64": 1e-9, "float32": 3e-4}
PARITY_ATOL = {"float64": 1e-12, "float32": 1e-6}

_CTYPE = {"float64": "double", "float32": "float"}


def find_cc() -> Optional[str]:
    """Locate the C compiler: ``$REPRO_CC`` if set (no fallback — a bad
    value means *no compiler*, which the fallback tests rely on), else
    the first of ``cc``/``gcc``/``clang`` on PATH."""
    env = os.environ.get(_ENV_CC)
    if env:
        return shutil.which(env)
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def default_cache_dir() -> str:
    return os.environ.get(_ENV_CACHE) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro_cgen"
    )


def _plan_variant(threads: int, strict: bool) -> str:
    """Cache-key variant tag: everything besides the literal source that
    selects a different rendering (tiling width, parity family).  The
    rendered source already differs per thread count — the tag makes the
    keying *structural* rather than an accident of codegen."""
    return f"v2:nt{threads}:{'strict' if strict else 'band'}"


def _ensure_so(source: str, cache_dir: str, flags: List[str],
               variant: str = ""):
    """Return ``(so_path, cache_hit, fail_reason)`` for ``source``.

    The key covers the source hash, the compile flags, and the plan
    ``variant`` tag (thread count / parity), so two configs that render
    different tilings can never collide on one artifact.  The cache
    lookup happens *before* the compiler lookup: a previously compiled
    plan keeps loading after the compiler disappears.
    """
    os.makedirs(cache_dir, exist_ok=True)
    key = hashlib.sha256(
        (source + "\0" + " ".join(flags) + "\0" + variant).encode()
    ).hexdigest()[:24]
    so = os.path.join(cache_dir, key + ".so")
    if os.path.exists(so):
        return so, True, None
    cc = find_cc()
    if cc is None:
        return None, False, (
            "no C compiler found (install cc/gcc/clang or set $REPRO_CC)"
        )
    csrc = os.path.join(cache_dir, key + ".c")
    with open(csrc, "w") as fh:
        fh.write(source)
    tmp = so + f".tmp.{os.getpid()}"
    proc = subprocess.run(
        [cc] + flags + [csrc, "-o", tmp, "-lm"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None, False, (
            f"C compilation failed: {proc.stderr.strip()[:400]}"
        )
    os.replace(tmp, so)  # atomic publish: concurrent compiles both win
    return so, False, None


def _load_lib(so: str, source: str, cache_dir: str, flags: List[str],
              variant: str):
    """``dlopen`` with corrupted-cache-entry recovery.

    A cached ``.so`` that fails to load (truncated write, disk fault,
    stale artifact from an incompatible toolchain) is deleted and
    recompiled once instead of crashing the plan.  Returns
    ``(lib, so_path, fail_reason, recovered)``.
    """
    try:
        return ctypes.CDLL(so), so, None, False
    except OSError as exc:
        first = str(exc)
    try:
        os.remove(so)
    except OSError:
        pass
    so2, _, err = _ensure_so(source, cache_dir, flags, variant)
    if so2 is None:
        return None, None, (
            f"corrupted cached .so ({first[:200]}); recompile failed: {err}"
        ), True
    try:
        return ctypes.CDLL(so2), so2, None, True
    except OSError as exc:
        return None, None, (
            f"recompiled .so failed to load: {exc}"
        ), True


def _bindv(tab: np.ndarray, slot: int, src: np.ndarray, cell: list) -> None:
    """Bind a float64 vector pointer, identity-cached.

    When the conversion was the identity (already f64 C-contiguous —
    always true in this repo) and the same array object is still
    installed, the pointer is already right and nothing happens; in-place
    mutations (LD-BN-ADAPT's gamma/beta updates) flow through the live
    pointer.  When a conversion copy was needed it is redone every replay
    so mutated sources stay fresh.
    """
    if src is cell[0] and cell[2]:
        return
    arr = np.ascontiguousarray(src, dtype=np.float64)
    tab[slot] = arr.ctypes.data
    cell[0] = src
    cell[1] = arr  # keep the converted copy alive while bound
    cell[2] = arr is src


class _Offer:
    """One accepted stage: its C function id, oracle closure, outputs."""

    __slots__ = ("sid", "fallback", "outs", "binders", "demoted", "mt",
                 "geo", "tol_dtype")

    def __init__(self, sid: int, fallback: Callable[[], None],
                 outs: List[np.ndarray]):
        self.sid = sid
        self.fallback = fallback
        self.outs = outs
        self.binders: List[Callable[[], None]] = []
        self.demoted = False
        self.mt = False          # dispatched across the worker pool
        self.geo = None          # ConvLowering whose im2col workspace
        #                          becomes releasable if this survives
        self.tol_dtype = None    # band-tolerance override (reductions
        #                          whose outs are wider than their data)


class CRenderer:
    """Stage renderer handed to one plan compilation (single use).

    ``sections`` names the plan step lists rendered in replay order —
    ``("_steps",)`` for inference plans, ``("_fwd", "_bwd")`` for
    adaptation plans.  ``threads`` is the resolved worker-pool width
    baked into this plan's kernels.
    """

    def __init__(self, backend: "CGenBackend",
                 sections: Tuple[str, ...] = ("_steps",),
                 threads: int = 1):
        self.backend = backend
        self.strict = backend.parity == "strict"
        self._sections = tuple(sections)
        self.threads = max(1, int(threads))
        self._offers: List[_Offer] = []
        self._funcs: List[str] = []
        self._nslots = 1  # slot 0 is the plan input, bound per replay
        self._static: List[Tuple[int, np.ndarray]] = []
        self._static_ids: Dict[int, int] = {}
        self._tab_holder: List[Optional[np.ndarray]] = [None]
        self._labels: List[Tuple[int, int, int, str]] = []
        self._scratch_bytes = 0
        self.offered = 0
        self.declined = 0

    # -- slot management -------------------------------------------------
    def _slot(self) -> int:
        slot = self._nslots
        self._nslots += 1
        return slot

    def _bind_static(self, arr: np.ndarray) -> int:
        slot = self._static_ids.get(id(arr))
        if slot is None:
            slot = self._slot()
            self._static_ids[id(arr)] = slot
            self._static.append((slot, arr))
        return slot

    def _fixed_slot(self, arr: Optional[np.ndarray], dtype) -> Optional[int]:
        """Slot for a stable plan-owned buffer, or ``None``."""
        if arr is None:
            return None
        if arr.dtype != np.dtype(dtype) or not arr.flags.c_contiguous:
            return None
        return self._bind_static(arr)

    def _source_slot(self, src, dtype, offer: _Offer) -> Optional[int]:
        """Slot for a stage input, or ``None`` when not renderable."""
        if src is None:
            return None
        kind, val = src
        if kind == "input":
            return 0
        if kind == "fixed":
            if val.dtype != dtype or not val.flags.c_contiguous:
                return None
            return self._bind_static(val)
        if kind == "const":
            data = val.data
            if data.dtype != dtype or not data.flags.c_contiguous:
                return None
            slot = self._slot()
            holder = self._tab_holder
            cell = [None]

            def bind(tensor=val, slot=slot, want=np.dtype(dtype)):
                d = tensor.data
                if d is cell[0]:
                    return
                if d.dtype != want or not d.flags.c_contiguous:
                    raise RuntimeError(
                        "cgen plan parameter changed dtype/layout after "
                        "compilation; recompile the plan"
                    )
                holder[0][slot] = d.ctypes.data
                cell[0] = d

            offer.binders.append(bind)
            return slot
        return None

    def _out_slot(self, arr: np.ndarray, dtype) -> Optional[int]:
        if arr.dtype != dtype or not arr.flags.c_contiguous:
            return None
        return self._bind_static(arr)

    # -- threading helpers -----------------------------------------------
    def _mt(self, work: int) -> bool:
        """Dispatch this stage across the pool? Only with >1 threads and
        enough inner-loop work to amortize the wake+barrier."""
        return self.threads > 1 and work >= _MT_MIN_WORK

    def _need_scratch(self, nbytes: int) -> None:
        self._scratch_bytes = max(self._scratch_bytes, int(nbytes))

    @staticmethod
    def _tile(total: int, lo: str = "lo", hi: str = "hi") -> List[str]:
        """Fixed-ownership partition: ``[total*tid//nt, total*(tid+1)//nt)``
        — the deterministic-reduction rule's row assignment."""
        return [
            f"    const i64 {lo} = ({total}LL * tid) / nt;",
            f"    const i64 {hi} = ({total}LL * (tid + 1)) / nt;",
        ]

    # -- plan hooks ------------------------------------------------------
    def note_stage(self, start: int, end: int, label: str,
                   section: int = 0) -> None:
        self._labels.append((section, start, end, label))

    def offer_stage(self, kind: str, spec: dict, fallback):
        self.offered += 1
        builder = getattr(self, f"_try_{kind}", None)
        offer = builder(spec, fallback) if builder is not None else None
        if offer is None:
            self.declined += 1
        return offer

    def _accept(self, fallback, outs, body: str, binders=(),
                mt: bool = False, geo=None, tol_dtype=None) -> _Offer:
        sid = len(self._offers)
        offer = _Offer(sid, fallback, outs)
        offer.binders.extend(binders)
        offer.mt = bool(mt)
        offer.geo = geo
        offer.tol_dtype = tol_dtype
        self._funcs.append(
            f"static void s{sid}(char** T, i64 tid, i64 nt) {{\n"
            "    (void)T; (void)tid; (void)nt;\n"
            f"{body}}}\n"
        )
        self._offers.append(offer)
        return offer

    # -- stage builders --------------------------------------------------
    def _try_conv(self, spec, fallback):
        geo: ConvLowering = spec["geo"]
        ct = _CTYPE.get(geo.compute_dtype.name)
        xt = _CTYPE.get(geo.x_dtype.name)
        if ct is None or xt is None:
            return None
        if geo.identity_cols and geo.x_dtype != geo.compute_dtype:
            return None
        weight = spec["weight"]
        if (weight.data.dtype != geo.compute_dtype
                or not weight.data.flags.c_contiguous):
            return None
        bias = spec["bias"]
        if bias is not None and (
            bias.data.dtype != geo.compute_dtype
            or not bias.data.flags.c_contiguous
        ):
            return None
        out3 = spec["out3"]
        so = self._out_slot(out3, geo.compute_dtype)
        if so is None:
            return None

        offer = _Offer(-1, fallback, [out3])  # slots first; sid on accept
        sx = self._source_slot(spec["x_src"], geo.x_dtype, offer)
        if sx is None:
            return None
        sw = self._slot()
        offer.binders.append(self._const_binder(weight, sw, geo.compute_dtype))
        sb = None
        if bias is not None:
            sb = self._slot()
            offer.binders.append(
                self._const_binder(bias, sb, geo.compute_dtype)
            )

        n, f, p, kt = geo.n, geo.f_out, geo.p_total, geo.k_total
        chw = geo.c * geo.h * geo.w
        item = geo.compute_dtype.itemsize
        lines = [
            f"    const {xt}* restrict X = (const {xt}*)T[{sx}];",
            f"    const {ct}* restrict Wt = (const {ct}*)T[{sw}];",
            f"    {ct}* restrict O = ({ct}*)T[{so}];",
        ]
        # small output tiles flip the column layout to (P, KT) and use a
        # dot-product kernel: contiguous k-runs vectorize where the axpy
        # form would spend its time on 3..10-element inner loops.  Small
        # stages stay on the dispatching thread.
        small = (not self.strict) and p < 16
        mt = (not small) and self._mt(n * f * p * kt)
        if not geo.identity_cols:
            k, i, j = geo.kij
            ih = i - geo.padding[0]
            iw = j - geo.padding[1]
            valid = (ih >= 0) & (ih < geo.h) & (iw >= 0) & (iw < geo.w)
            idx = (
                np.where(valid, (k * geo.h + ih) * geo.w + iw, -1)
                .astype(np.int64).reshape(kt, p)
            )
            if small:
                idx = idx.T
            idx = np.ascontiguousarray(idx.reshape(-1))
            si = self._bind_static(idx)
            lines.append(f"    const i64* restrict IX = (const i64*)T[{si}];")
            # fused im2col: each thread gathers only its own pixel tile
            # into per-thread scratch inside the .so — there is no
            # plan-side cols workspace for this stage at all
            rows = -(-p // self.threads) if mt else p
            self._need_scratch(kt * rows * item)
        elif small:
            self._need_scratch(kt * p * item)
        if sb is not None:
            lines.append(f"    const {ct}* Bi = (const {ct}*)T[{sb}];")

        bn_module = spec["bn_module"]
        if bn_module is not None:
            bn = self._bn_slots(bn_module, n, f, offer)
            if bn is None:
                return None
            sflag, s_sc, s_sh, s_m, s_v, s_g, s_b, eps = bn
            lines += [
                f"    const i64 ps = *(const i64*)T[{sflag}];",
                f"    const double* SC = (const double*)T[{s_sc}];",
                f"    const double* SH = (const double*)T[{s_sh}];",
                f"    const double* MU = (const double*)T[{s_m}];",
                f"    const double* VA = (const double*)T[{s_v}];",
                f"    const double* GA = (const double*)T[{s_g}];",
                f"    const double* BE = (const double*)T[{s_b}];",
            ]
        relu = spec["relu"]
        bias_op = f"v = v + Bi[f];" if sb is not None else ""
        relu_op = (
            f"v = v > 0 ? v : (v != v ? v : ({ct})0);" if relu else ""
        )

        if small:
            lines += self._conv_small_body(
                geo, ct, xt, n, f, p, kt, chw, bn_module is not None,
                bias_op, relu_op, eps if bn_module is not None else None,
            )
            return self._accept(
                fallback, [out3], "\n".join(lines) + "\n", offer.binders,
                mt=False, geo=geo,
            )

        # tiled kernels: thread `tid` owns output pixels [plo, phi) of
        # every (n, f) row and computes them with the single-thread
        # kernel's serial k-order — bitwise invariant across nt
        lines += self._tile(p, "plo", "phi")
        lines.append("    const i64 tw = phi - plo;")
        lines.append("    if (tw <= 0) return;")
        if not geo.identity_cols:
            lines.append(f"    {ct}* restrict CW = ({ct}*)POOL_SCR(tid);")
        lines.append(f"    for (i64 n = 0; n < {n}; ++n) {{")
        lines.append(f"        const {xt}* xs = X + n * {chw}LL;")
        if geo.identity_cols:
            lines += [
                f"        const {ct}* cols = (const {ct}*)xs + plo;",
                f"        const i64 cst = {p}LL;",
            ]
        else:
            lines += [
                f"        for (i64 k = 0; k < {kt}; ++k) {{",
                f"            const i64* ik = IX + k * {p} + plo;",
                f"            {ct}* cw = CW + k * tw;",
                "            for (i64 t = 0; t < tw; ++t) "
                f"{{ i64 v = ik[t]; cw[t] = v < 0 ? ({ct})0 : ({ct})xs[v]; }}",
                "        }",
                f"        const {ct}* cols = CW;",
                "        const i64 cst = tw;",
            ]
        lines.append(f"        {ct}* on = O + n * {f * p}LL;")
        if self.strict:
            # float64-accumulation GEMM: fixed k-order double sums back
            # the bitwise probe (and stay exact when the oracle happens
            # to sum in the same order)
            lines += [
                f"        for (i64 f = 0; f < {f}; ++f) {{",
                f"            {ct}* of = on + f * {p} + plo;",
                f"            const {ct}* wf = Wt + f * {kt};",
                "            for (i64 q = 0; q < tw; ++q) {",
                "                double acc = 0.0;",
                f"                for (i64 k = 0; k < {kt}; ++k) "
                "acc += (double)wf[k] * (double)cols[k * cst + q];",
                f"                of[q] = ({ct})acc;",
                "            }",
                "        }",
            ]
        else:
            # 4-way filter-blocked axpy GEMM: each column row load feeds
            # four accumulator rows, and -ffp-contract=fast lets the
            # vectorizer emit FMAs over the contiguous pixel tile
            f4 = f & ~3
            lines += [
                f"        for (i64 f = 0; f < {f4}; f += 4) {{",
                f"            {ct}* o0 = on + f * {p} + plo;",
                f"            {ct}* o1 = o0 + {p};",
                f"            {ct}* o2 = o1 + {p};",
                f"            {ct}* o3 = o2 + {p};",
                f"            const {ct}* w0 = Wt + f * {kt};",
                f"            const {ct}* w1 = w0 + {kt};",
                f"            const {ct}* w2 = w1 + {kt};",
                f"            const {ct}* w3 = w2 + {kt};",
                "            for (i64 q = 0; q < tw; ++q) "
                f"{{ o0[q] = ({ct})0; o1[q] = ({ct})0; "
                f"o2[q] = ({ct})0; o3[q] = ({ct})0; }}",
                f"            for (i64 k = 0; k < {kt}; ++k) {{",
                f"                {ct} a0 = w0[k], a1 = w1[k], "
                "a2 = w2[k], a3 = w3[k];",
                f"                const {ct}* ck = cols + k * cst;",
                "                for (i64 q = 0; q < tw; ++q) {",
                f"                    {ct} cv = ck[q];",
                "                    o0[q] += a0 * cv; o1[q] += a1 * cv;",
                "                    o2[q] += a2 * cv; o3[q] += a3 * cv;",
                "                }",
                "            }",
                "        }",
                f"        for (i64 f = {f4}; f < {f}; ++f) {{",
                f"            {ct}* of = on + f * {p} + plo;",
                f"            const {ct}* wf = Wt + f * {kt};",
                f"            for (i64 q = 0; q < tw; ++q) of[q] = ({ct})0;",
                f"            for (i64 k = 0; k < {kt}; ++k) {{",
                f"                {ct} wv = wf[k];",
                f"                const {ct}* ck = cols + k * cst;",
                "                for (i64 q = 0; q < tw; ++q) "
                "of[q] += wv * ck[q];",
                "            }",
                "        }",
            ]

        def epi_loop(setup: str, ops: List[str]) -> List[str]:
            body = [
                f"        for (i64 f = 0; f < {f}; ++f) {{",
                f"            {ct}* of = on + f * {p} + plo;",
            ]
            if setup:
                body.append(f"            {setup}")
            body.append("            for (i64 q = 0; q < tw; ++q) {")
            body.append(f"                {ct} v = of[q];")
            for op in ops:
                if op:
                    body.append(f"                {op}")
            body.append("                of[q] = v;")
            body.append("            }")
            body.append("        }")
            return body

        if bn_module is not None:
            # the epilogue mirrors _bn_epilogue op-for-op: per-sample
            # folded affine when the fleet override is installed, else
            # subtract mean / scale by 1/sqrt(var+eps) / gamma / beta
            lines.append("        if (ps) {")
            lines += [
                "    " + ln for ln in epi_loop(
                    f"double sc = SC[n * {f} + f]; "
                    f"double sh = SH[n * {f} + f];",
                    [bias_op,
                     f"v = ({ct})(v * sc);",
                     f"v = ({ct})(v + sh);",
                     relu_op],
                )
            ]
            lines.append("        } else {")
            lines += [
                "    " + ln for ln in epi_loop(
                    f"double m = MU[f]; "
                    f"double iv = 1.0 / sqrt(VA[f] + {eps!r}); "
                    "double g = GA[f]; double b = BE[f];",
                    [bias_op,
                     f"v = ({ct})(v - m);",
                     f"v = ({ct})(v * iv);",
                     f"v = ({ct})(v * g);",
                     f"v = ({ct})(v + b);",
                     relu_op],
                )
            ]
            lines.append("        }")
        elif sb is not None or relu:
            lines += epi_loop("", [bias_op, relu_op])
        lines.append("    }")

        return self._accept(
            fallback, [out3], "\n".join(lines) + "\n", offer.binders,
            mt=mt, geo=geo,
        )

    def _conv_small_body(self, geo, ct, xt, n, f, p, kt, chw,
                         has_bn, bias_op, relu_op, eps) -> List[str]:
        """The small-P (P, KT) dot kernel, single-threaded: eight
        explicit accumulator chains over the contiguous k run —
        independent streams the vectorizer can SLP-combine without any
        reassociation flags."""
        lines = [f"    {ct}* restrict CW = ({ct}*)POOL_SCR(0);"]
        lines.append(f"    for (i64 n = 0; n < {n}; ++n) {{")
        lines.append(f"        const {xt}* xs = X + n * {chw}LL;")
        if geo.identity_cols:
            # transpose the (C, P) input into (P, C) columns
            lines += [
                f"        for (i64 p = 0; p < {p}; ++p)",
                f"            for (i64 k = 0; k < {kt}; ++k) "
                f"CW[p * {kt} + k] = ({ct})xs[k * {p} + p];",
            ]
        else:
            lines += [
                f"        for (i64 t = 0; t < {kt * p}; ++t) "
                f"{{ i64 v = IX[t]; "
                f"CW[t] = v < 0 ? ({ct})0 : ({ct})xs[v]; }}",
            ]
        lines.append(f"        const {ct}* cols = CW;")
        lines.append(f"        {ct}* on = O + n * {f * p}LL;")
        accs = ", ".join(f"a{q} = ({ct})0" for q in range(8))
        muls = " ".join(
            f"a{q} += wf[k + {q}] * cp[k + {q}];" for q in range(8)
        )
        lines += [
            f"        for (i64 f = 0; f < {f}; ++f) {{",
            f"            {ct}* of = on + f * {p};",
            f"            const {ct}* wf = Wt + f * {kt};",
            f"            for (i64 p = 0; p < {p}; ++p) {{",
            f"                const {ct}* cp = cols + p * {kt};",
            f"                {ct} {accs};",
            "                i64 k = 0;",
            f"                for (; k + 8 <= {kt}; k += 8) "
            f"{{ {muls} }}",
            f"                for (; k < {kt}; ++k) "
            "a0 += wf[k] * cp[k];",
            "                of[p] = ((a0 + a1) + (a2 + a3))"
            " + ((a4 + a5) + (a6 + a7));",
            "            }",
            "        }",
        ]

        def epi_loop(setup: str, ops: List[str]) -> List[str]:
            body = [
                f"        for (i64 f = 0; f < {f}; ++f) {{",
                f"            {ct}* of = on + f * {p};",
            ]
            if setup:
                body.append(f"            {setup}")
            body.append(f"            for (i64 p = 0; p < {p}; ++p) {{")
            body.append(f"                {ct} v = of[p];")
            for op in ops:
                if op:
                    body.append(f"                {op}")
            body.append("                of[p] = v;")
            body.append("            }")
            body.append("        }")
            return body

        if has_bn:
            lines.append("        if (ps) {")
            lines += [
                "    " + ln for ln in epi_loop(
                    f"double sc = SC[n * {f} + f]; "
                    f"double sh = SH[n * {f} + f];",
                    [bias_op,
                     f"v = ({ct})(v * sc);",
                     f"v = ({ct})(v + sh);",
                     relu_op],
                )
            ]
            lines.append("        } else {")
            lines += [
                "    " + ln for ln in epi_loop(
                    f"double m = MU[f]; "
                    f"double iv = 1.0 / sqrt(VA[f] + {eps!r}); "
                    "double g = GA[f]; double b = BE[f];",
                    [bias_op,
                     f"v = ({ct})(v - m);",
                     f"v = ({ct})(v * iv);",
                     f"v = ({ct})(v * g);",
                     f"v = ({ct})(v + b);",
                     relu_op],
                )
            ]
            lines.append("        }")
        elif bias_op or relu_op:
            lines += epi_loop("", [bias_op, relu_op])
        lines.append("    }")
        return lines

    def _const_binder(self, tensor, slot: int, dtype):
        holder = self._tab_holder
        cell = [None]
        want = np.dtype(dtype)

        def bind():
            d = tensor.data
            if d is cell[0]:
                return
            if d.dtype != want or not d.flags.c_contiguous:
                raise RuntimeError(
                    "cgen plan parameter changed dtype/layout after "
                    "compilation; recompile the plan"
                )
            holder[0][slot] = d.ctypes.data
            cell[0] = d

        return bind

    def _bn_slots(self, module, n: int, c: int, offer: _Offer):
        """Slots + per-replay binder for the live BN fold vectors."""
        try:
            eps = float(module.eps)
        except (TypeError, AttributeError):
            return None
        flag = np.zeros(1, dtype=np.int64)
        sflag = self._bind_static(flag)
        slots = [self._slot() for _ in range(6)]  # scale shift mean var g b
        s_sc, s_sh, s_m, s_v, s_g, s_b = slots
        holder = self._tab_holder
        cells = [[None, None, False] for _ in range(6)]

        def bind():
            tab = holder[0]
            if module.training:
                raise RuntimeError(
                    "compiled plan replayed with a BatchNorm layer in "
                    "training mode; adaptation steps must use the eager "
                    "path"
                )
            ps = module.per_sample_stats
            if ps is not None:
                scale, shift = ps
                if scale.shape != (n, c):
                    raise ValueError(
                        f"per_sample_stats shaped {scale.shape}, "
                        f"expected ({n}, {c})"
                    )
                _bindv(tab, s_sc, scale, cells[0])
                _bindv(tab, s_sh, shift, cells[1])
                flag[0] = 1
            else:
                _bindv(tab, s_m, module.running_mean, cells[2])
                _bindv(tab, s_v, module.running_var, cells[3])
                _bindv(tab, s_g, module.weight.data, cells[4])
                _bindv(tab, s_b, module.bias.data, cells[5])
                flag[0] = 0

        offer.binders.append(bind)
        return sflag, s_sc, s_sh, s_m, s_v, s_g, s_b, eps

    def _try_linear(self, spec, fallback):
        dtype = np.dtype(spec["out_dtype"])
        ct = _CTYPE.get(dtype.name)
        x_shape = spec["x_shape"]
        if ct is None or x_shape is None or len(x_shape) != 2:
            return None
        if np.dtype(spec["x_dtype"]) != dtype:
            return None
        weight = spec["weight"]
        if weight.data.dtype != dtype or not weight.data.flags.c_contiguous:
            return None
        bias = spec["bias"]
        if bias is not None and (
            bias.data.dtype != dtype or not bias.data.flags.c_contiguous
        ):
            return None
        out2 = spec["out2"]
        so = self._out_slot(out2, dtype)
        if so is None:
            return None
        offer = _Offer(-1, fallback, [out2])
        sx = self._source_slot(spec["x_src"], dtype, offer)
        if sx is None:
            return None
        sw = self._slot()
        offer.binders.append(self._const_binder(weight, sw, dtype))
        sb = None
        if bias is not None:
            sb = self._slot()
            offer.binders.append(self._const_binder(bias, sb, dtype))

        n, fin = x_shape
        fout = out2.shape[1]
        mt = self._mt(n * fout * fin)
        lines = [
            f"    const {ct}* restrict X = (const {ct}*)T[{sx}];",
            f"    const {ct}* restrict Wt = (const {ct}*)T[{sw}];",
            f"    {ct}* restrict O = ({ct}*)T[{so}];",
        ]
        if sb is not None:
            lines.append(f"    const {ct}* Bi = (const {ct}*)T[{sb}];")
        # threads own output-feature rows; each (n, o) dot runs its
        # serial i-order regardless of nt
        lines += self._tile(fout, "olo", "ohi")
        lines += [
            f"    for (i64 n = 0; n < {n}; ++n) {{",
            f"        const {ct}* xn = X + n * {fin}LL;",
            f"        {ct}* on = O + n * {fout}LL;",
            "        for (i64 o = olo; o < ohi; ++o) {",
            f"            const {ct}* wo = Wt + o * {fin}LL;",
        ]
        if self.strict:
            lines += [
                "            double acc = 0.0;",
                f"            for (i64 i = 0; i < {fin}; ++i) "
                "acc += (double)wo[i] * (double)xn[i];",
                f"            {ct} v = ({ct})acc;",
            ]
        else:
            # eight accumulator chains, same shape as the small-P conv
            # dot kernel: independent streams SLP-vectorize without any
            # reassociation flags (a single acc is a serial FMA chain)
            accs = ", ".join(f"a{q} = ({ct})0" for q in range(8))
            muls = " ".join(
                f"a{q} += wo[i + {q}] * xn[i + {q}];" for q in range(8)
            )
            lines += [
                f"            {ct} {accs};",
                "            i64 i = 0;",
                f"            for (; i + 8 <= {fin}; i += 8) "
                f"{{ {muls} }}",
                f"            for (; i < {fin}; ++i) "
                "a0 += wo[i] * xn[i];",
                f"            {ct} v = ((a0 + a1) + (a2 + a3))"
                " + ((a4 + a5) + (a6 + a7));",
            ]
        if sb is not None:
            lines.append("            v = v + Bi[o];")
        if spec["relu"]:
            lines.append(
                f"            v = v > 0 ? v : (v != v ? v : ({ct})0);"
            )
        lines += [
            "            on[o] = v;",
            "        }",
            "    }",
        ]
        return self._accept(
            fallback, [out2], "\n".join(lines) + "\n", offer.binders, mt=mt
        )

    def _try_maxpool(self, spec, fallback):
        geo: PoolLowering = spec["geo"]
        dtype = np.dtype(spec["out_dtype"])
        xt = _CTYPE.get(dtype.name)
        if xt is None or geo.x_dtype != dtype:
            return None
        out2 = spec["out2"]
        so = self._out_slot(out2, dtype)
        if so is None:
            return None
        arg = spec.get("arg")
        outs = [out2]
        sa = None
        if arg is not None:
            if arg.dtype != np.dtype(np.intp) or not arg.flags.c_contiguous:
                return None
            sa = self._bind_static(arg)
            outs.append(arg)
        offer = _Offer(-1, fallback, outs)
        sx = self._source_slot(spec["x_src"], dtype, offer)
        if sx is None:
            return None

        k, i, j = geo.kij
        ih = i - geo.padding[0]
        iw = j - geo.padding[1]
        valid = (ih >= 0) & (ih < geo.h) & (iw >= 0) & (iw < geo.w)
        idx = np.ascontiguousarray(
            np.where(valid, ih * geo.w + iw, -1).astype(np.int64).reshape(-1)
        )
        si = self._bind_static(idx)

        nc = geo.n * geo.c
        hw = geo.h * geo.w
        p = geo.p_total
        kk = geo.kernel[0] * geo.kernel[1]
        mt = self._mt(nc * p * kk)
        lines = [
            f"    const {xt}* restrict X = (const {xt}*)T[{sx}];",
            f"    {xt}* restrict O = ({xt}*)T[{so}];",
            f"    const i64* restrict IX = (const i64*)T[{si}];",
        ]
        if sa is not None:
            lines.append(f"    i64* A = (i64*)T[{sa}];")
        # threads own (n, c) planes: each plane's max/argmax scan keeps
        # the single-thread window order, so ties break identically
        lines += self._tile(nc, "qlo", "qhi")
        lines += [
            "    for (i64 q = qlo; q < qhi; ++q) {",
            f"        const {xt}* xs = X + q * {hw}LL;",
            f"        {xt}* on = O + q * {p}LL;",
        ]
        if sa is not None:
            lines.append(f"        i64* an = A + q * {p}LL;")
        lines += [
            f"        for (i64 p = 0; p < {p}; ++p) {{",
            f"            {xt} m = -INFINITY;",
            "            i64 ai = 0;",
            f"            for (i64 k = 0; k < {kk}; ++k) {{",
            f"                i64 v = IX[k * {p} + p];",
            f"                if (v >= 0) {{ {xt} xv = xs[v]; "
            "if (xv > m) { m = xv; ai = k; } }",
            "            }",
            "            on[p] = m;",
        ]
        if sa is not None:
            lines.append("            an[p] = ai;")
        lines += [
            "        }",
            "    }",
        ]
        return self._accept(
            fallback, outs, "\n".join(lines) + "\n", offer.binders, mt=mt
        )

    # elementwise stages: same-shape same-dtype only, one flat loop ------
    def _try_elementwise(self, spec, fallback, expr_fn, binary=False):
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        out = spec["out"]
        so = self._out_slot(out, dtype)
        if so is None:
            return None
        offer = _Offer(-1, fallback, [out])
        if binary:
            if not (
                spec["a_shape"] == spec["b_shape"] == spec["out_shape"]
            ):
                return None
            sa = self._source_slot(spec["a_src"], dtype, offer)
            sb = self._source_slot(spec["b_src"], dtype, offer)
            if sa is None or sb is None:
                return None
            decls = [
                f"    const {ct}* A = (const {ct}*)T[{sa}];",
                f"    const {ct}* B = (const {ct}*)T[{sb}];",
            ]
        else:
            sx = self._source_slot(spec["x_src"], dtype, offer)
            if sx is None:
                return None
            decls = [f"    const {ct}* X = (const {ct}*)T[{sx}];"]
        size = int(out.size)
        body = "\n".join(
            decls + [
                f"    {ct}* O = ({ct}*)T[{so}];",
            ] + self._tile(size) + [
                f"    for (i64 t = lo; t < hi; ++t) {{ "
                f"{expr_fn(ct)} }}",
            ]
        ) + "\n"
        return self._accept(
            fallback, [out], body, offer.binders, mt=self._mt(size)
        )

    def _try_relu(self, spec, fallback):
        return self._try_elementwise(
            spec, fallback,
            lambda ct: (
                f"{ct} v = X[t]; "
                f"O[t] = v > 0 ? v : (v != v ? v : ({ct})0);"
            ),
        )

    def _try_add(self, spec, fallback):
        return self._try_elementwise(
            spec, fallback, lambda ct: "O[t] = A[t] + B[t];", binary=True
        )

    def _try_mul(self, spec, fallback):
        return self._try_elementwise(
            spec, fallback, lambda ct: "O[t] = A[t] * B[t];", binary=True
        )

    def _try_neg(self, spec, fallback):
        return self._try_elementwise(
            spec, fallback, lambda ct: "O[t] = -X[t];"
        )

    def _try_exp(self, spec, fallback):
        return self._try_elementwise(
            spec, fallback,
            lambda ct: (
                "O[t] = exp(X[t]);" if ct == "double"
                else "O[t] = expf(X[t]);"
            ),
        )

    # backward stages (adaptation plans): the pruned LD-BN-ADAPT chain --
    def _try_fill(self, spec, fallback):
        """Seed a gradient buffer with a constant (the loss-mean grad)."""
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        dst = spec["dst"]
        so = self._fixed_slot(dst, dtype)
        if so is None:
            return None
        value = float(spec["value"])
        size = int(dst.size)
        body = "\n".join(
            [f"    {ct}* O = ({ct}*)T[{so}];"]
            + self._tile(size)
            + [f"    for (i64 t = lo; t < hi; ++t) O[t] = ({ct}){value!r};"]
        ) + "\n"
        return self._accept(fallback, [dst], body, mt=self._mt(size))

    def _try_copy(self, spec, fallback):
        """Pass a gradient through unchanged (add / reshape backward)."""
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        g, dst = spec["g"], spec["dst"]
        if g.size != dst.size:
            return None
        sg = self._fixed_slot(g, dtype)
        so = self._fixed_slot(dst, dtype)
        if sg is None or so is None:
            return None
        size = int(dst.size)
        body = "\n".join(
            [
                f"    const {ct}* G = (const {ct}*)T[{sg}];",
                f"    {ct}* O = ({ct}*)T[{so}];",
            ]
            + self._tile(size)
            + ["    for (i64 t = lo; t < hi; ++t) O[t] = G[t];"]
        ) + "\n"
        return self._accept(fallback, [dst], body, mt=self._mt(size))

    def _try_relu_bwd(self, spec, fallback):
        """Gate the gradient by the forward output's sign.

        Mirrors numpy's multiply-by-bool bitwise: ``g * 1.0`` is exact
        and ``g * 0.0`` preserves NaNs and signed zeros, so this stage
        survives even the strict probe.
        """
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        g, y, dst = spec["g"], spec["y"], spec["dst"]
        if not (g.size == y.size == dst.size):
            return None
        sg = self._fixed_slot(g, dtype)
        sy = self._fixed_slot(y, dtype)
        so = self._fixed_slot(dst, dtype)
        if sg is None or sy is None or so is None:
            return None
        size = int(dst.size)
        body = "\n".join(
            [
                f"    const {ct}* G = (const {ct}*)T[{sg}];",
                f"    const {ct}* Y = (const {ct}*)T[{sy}];",
                f"    {ct}* O = ({ct}*)T[{so}];",
            ]
            + self._tile(size)
            + [
                "    for (i64 t = lo; t < hi; ++t) "
                f"O[t] = Y[t] > ({ct})0 ? G[t] * ({ct})1 : G[t] * ({ct})0;"
            ]
        ) + "\n"
        return self._accept(fallback, [dst], body, mt=self._mt(size))

    def _try_linear_bwd(self, spec, fallback):
        """Grad wrt a linear layer's input: ``dst = g @ W``.

        Threads own input-feature columns; per element the o-order is
        serial.  Band parity only — the oracle is a BLAS matmul.
        """
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        weight = spec["weight"]
        if weight.data.dtype != dtype or not weight.data.flags.c_contiguous:
            return None
        g, dst = spec["g"], spec["dst"]
        n, fout = spec["g_shape"]
        fin = spec["fin"]
        sg = self._fixed_slot(g, dtype)
        so = self._fixed_slot(dst, dtype)
        if sg is None or so is None:
            return None
        offer = _Offer(-1, fallback, [dst])
        sw = self._slot()
        offer.binders.append(self._const_binder(weight, sw, dtype))
        lines = [
            f"    const {ct}* restrict G = (const {ct}*)T[{sg}];",
            f"    const {ct}* restrict W = (const {ct}*)T[{sw}];",
            f"    {ct}* restrict O = ({ct}*)T[{so}];",
        ]
        lines += self._tile(fin, "jlo", "jhi")
        lines += [
            f"    for (i64 n = 0; n < {n}; ++n) {{",
            f"        const {ct}* gn = G + n * {fout}LL;",
            f"        {ct}* dn = O + n * {fin}LL;",
            f"        for (i64 j = jlo; j < jhi; ++j) dn[j] = ({ct})0;",
            f"        for (i64 o = 0; o < {fout}; ++o) {{",
            f"            {ct} a = gn[o];",
            f"            const {ct}* wo = W + o * {fin}LL;",
            "            for (i64 j = jlo; j < jhi; ++j) "
            "dn[j] += a * wo[j];",
            "        }",
            "    }",
        ]
        return self._accept(
            fallback, [dst], "\n".join(lines) + "\n", offer.binders,
            mt=self._mt(n * fout * fin),
        )

    def _try_conv_bwd(self, spec, fallback):
        """Grad wrt a 1x1 (identity-cols) conv input:
        ``dst[n,k,p] = sum_f W[f,k] * g[n,f,p]``.

        Threads own pixel columns; the f-order per element is serial.
        Band parity only — the oracle is an einsum.
        """
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        weight = spec["weight"]
        if weight.data.dtype != dtype or not weight.data.flags.c_contiguous:
            return None
        g, dst = spec["g"], spec["dst"]
        n, f, p = spec["g_dims"]
        kt = spec["kt"]
        sg = self._fixed_slot(g, dtype)
        so = self._fixed_slot(dst, dtype)
        if sg is None or so is None:
            return None
        offer = _Offer(-1, fallback, [dst])
        sw = self._slot()
        offer.binders.append(self._const_binder(weight, sw, dtype))
        lines = [
            f"    const {ct}* restrict G = (const {ct}*)T[{sg}];",
            f"    const {ct}* restrict W = (const {ct}*)T[{sw}];",
            f"    {ct}* restrict O = ({ct}*)T[{so}];",
        ]
        lines += self._tile(p, "plo", "phi")
        lines += [
            f"    for (i64 n = 0; n < {n}; ++n) {{",
            f"        const {ct}* gn = G + n * {f * p}LL;",
            f"        {ct}* dn = O + n * {kt * p}LL;",
            f"        for (i64 k = 0; k < {kt}; ++k) {{",
            f"            {ct}* dk = dn + k * {p};",
            f"            for (i64 q = plo; q < phi; ++q) dk[q] = ({ct})0;",
            "        }",
            f"        for (i64 f = 0; f < {f}; ++f) {{",
            f"            const {ct}* gf = gn + f * {p};",
            f"            const {ct}* wf = W + f * {kt};",
            f"            for (i64 k = 0; k < {kt}; ++k) {{",
            f"                {ct} a = wf[k];",
            f"                {ct}* dk = dn + k * {p};",
            "                for (i64 q = plo; q < phi; ++q) "
            "dk[q] += a * gf[q];",
            "            }",
            "        }",
            "    }",
        ]
        return self._accept(
            fallback, [dst], "\n".join(lines) + "\n", offer.binders,
            mt=self._mt(n * f * kt * p),
        )

    def _try_bn_bwd(self, spec, fallback):
        """The rendered LD-BN-ADAPT backward: per-(group, channel) BN
        gamma/beta grads plus (optionally) the reduced input-grad chain.

        Threads own (group, channel) pairs; each pair's two reductions
        run serially in f64 — deterministic for any nt.  The band
        tolerance is keyed to the *data* dtype (``tol_dtype``): the f64
        tap buffers hold f32-sourced sums whose pairwise-vs-serial
        difference lives at f32 scale.
        """
        dtype = np.dtype(spec["dtype"])
        ct = _CTYPE.get(dtype.name)
        if ct is None:
            return None
        g, xh, inv = spec["g"], spec["xhat"], spec["inv_std"]
        gg, gb = spec["grad_gamma"], spec["grad_beta"]
        dst = spec.get("dst")
        groups, gs, c, hw = spec["dims"]
        m = float(spec["m"])
        sg_ = self._fixed_slot(g, dtype)
        sxh = self._fixed_slot(xh, dtype)
        siv = self._fixed_slot(inv, dtype)
        sgg = self._fixed_slot(gg, np.float64)
        sgb = self._fixed_slot(gb, np.float64)
        if None in (sg_, sxh, siv, sgg, sgb):
            return None
        outs = [gg, gb]
        so = None
        if dst is not None:
            so = self._fixed_slot(dst, dtype)
            if so is None:
                return None
            outs.append(dst)
        offer = _Offer(-1, fallback, outs)
        gmode, gval = spec["gamma"]
        if gmode == "slot":
            # per-group gamma slots: a stable (groups, c) f64 array the
            # fleet fills before each grouped replay
            sga = self._fixed_slot(gval, np.float64)
            if sga is None:
                return None
            gidx = "u"
        else:
            # live module parameter: rebound per replay so optimizer
            # updates flow through without recompiling
            sga = self._slot()
            holder = self._tab_holder
            cell = [None, None, False]

            def bind(module=gval, slot=sga, cell=cell, holder=holder):
                _bindv(holder[0], slot, module.weight.data, cell)

            offer.binders.append(bind)
            gidx = "ch"
        total = groups * c
        lines = [
            f"    const {ct}* restrict G_ = (const {ct}*)T[{sg_}];",
            f"    const {ct}* restrict XH = (const {ct}*)T[{sxh}];",
            f"    const {ct}* IS = (const {ct}*)T[{siv}];",
            f"    const double* GA = (const double*)T[{sga}];",
            f"    double* GG = (double*)T[{sgg}];",
            f"    double* GB = (double*)T[{sgb}];",
        ]
        if so is not None:
            lines.append(f"    {ct}* restrict O = ({ct}*)T[{so}];")
        lines += self._tile(total, "ulo", "uhi")
        lines += [
            "    for (i64 u = ulo; u < uhi; ++u) {",
            f"        const i64 gr = u / {c};",
            f"        const i64 ch = u % {c};",
            "        double sg = 0.0, sgx = 0.0;",
            f"        for (i64 s = 0; s < {gs}; ++s) {{",
            f"            const i64 base = "
            f"((gr * {gs} + s) * {c} + ch) * {hw}LL;",
            f"            for (i64 t = 0; t < {hw}; ++t) {{",
            "                double gv = (double)G_[base + t];",
            "                sg += gv;",
            "                sgx += gv * (double)XH[base + t];",
            "            }",
            "        }",
            "        GG[u] = sgx;",
            "        GB[u] = sg;",
        ]
        if so is not None:
            lines += [
                f"        double ga = GA[{gidx}];",
                "        double iv = (double)IS[u];",
                "        double sdx = ga * sg;",
                "        double sdxx = ga * sgx;",
                f"        double c0 = iv / {m!r};",
                f"        for (i64 s = 0; s < {gs}; ++s) {{",
                f"            const i64 base = "
                f"((gr * {gs} + s) * {c} + ch) * {hw}LL;",
                f"            for (i64 t = 0; t < {hw}; ++t) {{",
                "                double gv = (double)G_[base + t];",
                f"                O[base + t] = ({ct})(c0 * ({m!r} * "
                "(gv * ga) - sdx - (double)XH[base + t] * sdxx));",
                "            }",
                "        }",
            ]
        lines.append("    }")
        return self._accept(
            fallback, outs, "\n".join(lines) + "\n", offer.binders,
            mt=self._mt(2 * groups * gs * c * hw), tol_dtype=dtype,
        )

    # -- finalize --------------------------------------------------------
    def _assemble(self) -> str:
        parts = [
            "#include <math.h>",
            "#include <pthread.h>",
            "#include <stdint.h>",
            "typedef long long i64;",
            "typedef void (*stage_fn)(char**, i64, i64);",
            scratch_prelude(self.threads, self._scratch_bytes),
            "",
        ]
        parts += self._funcs
        names = ", ".join(f"s{o.sid}" for o in self._offers)
        flags = ", ".join("1" if o.mt else "0" for o in self._offers)
        parts += [
            f"static stage_fn STAGES[] = {{ {names} }};",
            f"static const char STAGE_MT[] = {{ {flags} }};",
            pool_runtime_source(self.threads),
        ]
        return "\n".join(parts) + "\n"

    def _match(self, got: np.ndarray, want: np.ndarray,
               tol_dtype=None) -> bool:
        if got.dtype.kind in "iu" or self.strict:
            return got.tobytes() == want.tobytes()
        name = np.dtype(tol_dtype).name if tol_dtype is not None \
            else got.dtype.name
        return bool(np.allclose(
            got, want,
            rtol=PARITY_RTOL.get(name, 1e-9),
            atol=PARITY_ATOL.get(name, 1e-12),
            equal_nan=True,
        ))

    def _pos_labels(self) -> Dict[Tuple[int, int], str]:
        out: Dict[Tuple[int, int], str] = {}
        for sec, start, end, label in self._labels:
            for pos in range(start, end):
                out[(sec, pos)] = label
        return out

    def finalize(self, plan, graph) -> Dict[str, object]:
        sections: List[list] = [getattr(plan, a) for a in self._sections]
        profile = plan.profile
        if profile is not None:
            profile.backend = self.backend.name
        info: Dict[str, object] = {
            "backend": self.backend.name,
            "parity": "strict" if self.strict else "band",
            "stages": sum(len(s) for s in sections),
            "offered": self.offered,
            "declined": self.declined,
            "rendered": 0,
            "demoted": 0,
            "fallback_reason": None,
            "so": None,
            "cache_hit": False,
            "cache_recovered": False,
            "threads": self.threads,
            "mt_stages": 0,
            "workspace_freed": 0,
        }
        labels = self._pos_labels()

        def bail(reason: Optional[str]):
            for si, steps in enumerate(sections):
                for pos, step in enumerate(steps):
                    if isinstance(step, _Offer):
                        steps[pos] = step.fallback
                if profile is not None:
                    for pos in range(len(steps)):
                        steps[pos] = _timed_step(
                            steps[pos], labels.get((si, pos), "stage"),
                            profile,
                        )
            info["fallback_reason"] = reason
            return info

        if not self._offers:
            return bail("no renderable stages")

        source = self._assemble()
        flags = _cflags(self.strict)
        variant = _plan_variant(self.threads, self.strict)
        so, cache_hit, err = _ensure_so(
            source, self.backend.cache_dir, flags, variant
        )
        if so is None:
            warnings.warn(
                f"cgen backend falling back to numpy closures: {err}",
                RuntimeWarning, stacklevel=2,
            )
            return bail(err)
        lib, so, err, recovered = _load_lib(
            so, source, self.backend.cache_dir, flags, variant
        )
        if lib is None:
            warnings.warn(
                f"cgen backend falling back to numpy closures: {err}",
                RuntimeWarning, stacklevel=2,
            )
            return bail(err)
        info["so"] = so
        info["cache_hit"] = cache_hit and not recovered
        info["cache_recovered"] = recovered

        run_fn = lib.repro_run
        run_fn.argtypes = [ctypes.c_void_p, ctypes.c_void_p,
                           ctypes.c_longlong]
        run_fn.restype = None
        start_fn = lib.repro_pool_start
        start_fn.restype = ctypes.c_longlong
        lib.repro_pool_stop.restype = None
        info["pool_width"] = int(start_fn())
        pool = PoolHandle(lib)

        tab = np.zeros(self._nslots, dtype=np.uintp)
        self._tab_holder[0] = tab
        keep: List[object] = [lib, tab, pool]
        for slot, arr in self._static:
            tab[slot] = arr.ctypes.data
            keep.append(arr)
        tab_ptr = tab.ctypes.data

        # -- parity probe: replay the traced example, each rendered stage
        # checked against its own oracle closure via snapshot-rewind so
        # every comparison sees bit-identical inputs.  The C stage runs
        # through the same pool dispatch production uses, so the probe
        # validates the exact threaded execution.
        x_probe = np.ascontiguousarray(graph._keepalive[0].data)
        tab[0] = x_probe.ctypes.data
        plan._input_cell[0] = x_probe
        one = np.empty(1, dtype=np.int64)
        for steps in sections:
            for step in steps:
                if not isinstance(step, _Offer):
                    step()
                    continue
                pre = [o.copy() for o in step.outs]
                step.fallback()
                oracle = [o.copy() for o in step.outs]
                for buf, snap in zip(step.outs, pre):
                    np.copyto(buf, snap, casting="no")
                ok = True
                try:
                    for bind in step.binders:
                        bind()
                    one[0] = step.sid
                    run_fn(tab_ptr, one.ctypes.data, 1)
                    for buf, want in zip(step.outs, oracle):
                        if not self._match(buf, want, step.tol_dtype):
                            ok = False
                            break
                except Exception:
                    ok = False
                if not ok:
                    step.demoted = True
                # downstream stages (and the next probe) always see oracle
                # values, whether or not this stage survived
                for buf, want in zip(step.outs, oracle):
                    np.copyto(buf, want, casting="no")
        plan._input_cell[0] = None

        # -- rebuild the step lists: surviving rendered stages become
        # repro_run segments (one ctypes call per run of consecutive
        # stages), demoted/declined stages keep their numpy closures
        binders: List[Callable[[], None]] = []
        rendered = demoted = 0
        for si, steps in enumerate(sections):
            new_steps: List[Callable[[], None]] = []
            i = 0
            while i < len(steps):
                step = steps[i]
                if isinstance(step, _Offer) and not step.demoted:
                    if profile is None:
                        sids = []
                        j = i
                        while (
                            j < len(steps)
                            and isinstance(steps[j], _Offer)
                            and not steps[j].demoted
                        ):
                            sids.append(steps[j].sid)
                            binders.extend(steps[j].binders)
                            j += 1
                        ids = np.asarray(sids, dtype=np.int64)
                        keep.append(ids)
                        ids_ptr = ids.ctypes.data
                        nseg = len(sids)

                        def seg(run_fn=run_fn, tab_ptr=tab_ptr,
                                ids_ptr=ids_ptr, nseg=nseg):
                            run_fn(tab_ptr, ids_ptr, nseg)

                        new_steps.append(seg)
                        rendered += nseg
                        i = j
                    else:
                        # profiled plans keep per-stage calls so op_ms
                        # attributes time to individual rendered stages
                        binders.extend(step.binders)
                        ids = np.asarray([step.sid], dtype=np.int64)
                        keep.append(ids)
                        ids_ptr = ids.ctypes.data

                        def call(run_fn=run_fn, tab_ptr=tab_ptr,
                                 ids_ptr=ids_ptr):
                            run_fn(tab_ptr, ids_ptr, 1)

                        new_steps.append(_timed_step(
                            call,
                            "cgen:" + labels.get((si, i), "stage"),
                            profile,
                        ))
                        rendered += 1
                        i += 1
                    continue
                fn = step.fallback if isinstance(step, _Offer) else step
                if isinstance(step, _Offer):
                    demoted += 1
                if profile is not None:
                    fn = _timed_step(
                        fn, labels.get((si, i), "stage"), profile
                    )
                new_steps.append(fn)
                i += 1
            steps[:] = new_steps
        info["rendered"] = rendered
        info["demoted"] = demoted
        info["mt_stages"] = sum(
            1 for o in self._offers if o.mt and not o.demoted
        )

        # -- fused-im2col workspace release: a surviving conv stage
        # gathers inside the .so, so its plan-side im2col workspaces
        # (and the oracle closure capturing them) are dead weight
        freed = 0
        seen_geos = set()
        for offer in self._offers:
            if offer.demoted:
                continue
            offer.fallback = None
            geo = offer.geo
            if geo is None or id(geo) in seen_geos:
                continue
            seen_geos.add(id(geo))
            freed += int(getattr(geo, "workspace_nbytes", 0) or 0)
            release = getattr(geo, "release_workspace", None)
            if release is not None:
                release()
        if freed:
            stats = getattr(plan, "stats", None)
            if stats is not None and hasattr(stats, "workspace_bytes"):
                plan.stats = _dc_replace(
                    stats,
                    workspace_bytes=max(0, stats.workspace_bytes - freed),
                )
        info["workspace_freed"] = freed

        if rendered:
            in_dtype = graph.input_dtype
            hold = [x_probe]

            def pre_replay(x: np.ndarray) -> np.ndarray:
                if x.dtype != in_dtype:
                    raise TypeError(
                        f"cgen plan compiled for input dtype {in_dtype}, "
                        f"got {x.dtype}"
                    )
                x = np.ascontiguousarray(x)
                tab[0] = x.ctypes.data
                hold[0] = x
                for bind in binders:
                    bind()
                return x

            plan._pre_replay = pre_replay
            keep.append(hold)
        plan._cgen_keep = keep
        return info


class CGenBackend(PlanBackend):
    """Plans rendered to threaded C, per-stage numpy fallback, disk-cached
    ``.so``.  ``threads`` fixes the worker-pool width; ``None`` resolves
    per compile via ``$REPRO_CGEN_THREADS`` → device cores → host CPUs."""

    def __init__(self, parity: str = "band",
                 threads: Optional[int] = None,
                 config: Optional[CGenConfig] = None):
        if config is None:
            config = CGenConfig(parity=parity, threads=threads)
        self.config = config
        self.parity = config.parity
        self.threads = config.threads
        self.name = "cgen-strict" if config.parity == "strict" else "cgen"

    @property
    def cache_dir(self) -> str:
        # resolved per call so tests (and operators) can repoint
        # $REPRO_CGEN_CACHE without rebuilding backend instances
        return default_cache_dir()

    def _resolve_threads(self, threads: Optional[int]) -> int:
        return resolve_threads(
            threads if threads is not None else self.threads
        )

    def compile_inference(self, graph, profile: bool = False,
                          threads: Optional[int] = None):
        from ..plan import ExecutionPlan

        return ExecutionPlan(
            graph, profile=profile,
            renderer=CRenderer(
                self, ("_steps",), threads=self._resolve_threads(threads)
            ),
        )

    def compile_adaptation(self, graph, groups: int = 1,
                           profile: bool = False,
                           threads: Optional[int] = None):
        from ..adapt_plan import AdaptationPlan

        return AdaptationPlan(
            graph, groups=groups, profile=profile,
            renderer=CRenderer(
                self, ("_fwd", "_bwd"),
                threads=self._resolve_threads(threads),
            ),
        )


register_backend("cgen", CGenBackend)
register_backend("cgen-strict", lambda: CGenBackend(parity="strict"))
