"""Trace one eval-mode forward pass into a flat list of op nodes.

The tracer runs the model once on a representative input with two hooks
installed:

* :data:`repro.nn.tensor._TRACE_HOOK` records every ``Function.apply``
  call (op class, argument references, kwargs, output tensor);
* ``_BatchNormBase.forward`` is temporarily wrapped so each BatchNorm
  layer becomes ONE opaque node referencing the *module object* instead
  of a burst of reshape/sub/mul/add ops.  That keeps the layer's live
  state (gamma/beta, running stats, the per-sample ``(scale, shift)``
  override installed by :func:`repro.serve.streams.per_stream_inference`)
  a *plan input* resolved at replay time, so one traced plan serves both
  single-stream inference and batched multi-stream serving, and picks up
  every LD-BN-ADAPT update without retracing.

Tensor arguments that were not produced by a traced op (model parameters,
constants) are recorded as :class:`ConstRef` holding the Tensor object;
replay fetches ``.data`` through the reference each call, so in-place
parameter updates (optimizer steps, ``load_state_dict``, BN snapshot
swaps) are always visible to the compiled plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..nn import autograd
from ..nn import tensor as tensor_mod
from ..nn.modules import _BatchNormBase
from ..nn.tensor import Tensor


@dataclass(frozen=True)
class ValueRef:
    """Reference to the output of an earlier node (or the graph input)."""

    vid: int


@dataclass(frozen=True)
class ConstRef:
    """Reference to a leaf tensor (parameter/constant) fetched at replay."""

    tensor: Tensor

    def fetch(self) -> np.ndarray:
        return self.tensor.data


@dataclass
class OpNode:
    """One traced operation.

    ``function`` is the :class:`~repro.nn.tensor.Function` subclass for
    generic ops, or None for the opaque ``bn`` nodes (which carry the
    live module in ``module`` instead).  ``train_bn`` marks a BatchNorm
    node captured from a *training-mode* forward (the adaptation trace):
    at replay it normalizes with live batch statistics instead of the
    folded eval affine.
    """

    function: Optional[type]
    inputs: List[Any]  # ValueRef | ConstRef | raw python value, in call order
    kwargs: Dict[str, Any]
    out_vid: int
    out_shape: Tuple[int, ...]
    out_dtype: np.dtype
    module: Optional[_BatchNormBase] = None
    train_bn: bool = False

    @property
    def kind(self) -> str:
        if self.module is not None:
            return "bn"
        return self.function.__name__.lstrip("_").lower()


@dataclass
class TraceGraph:
    """Flat static plan source: nodes in execution order plus graph I/O."""

    nodes: List[OpNode]
    input_vid: int
    output_vid: int
    input_shape: Tuple[int, ...]
    input_dtype: np.dtype
    # traced tensors kept alive so id()-based vids stay unambiguous
    _keepalive: List[Tensor] = field(default_factory=list, repr=False)

    @property
    def num_ops(self) -> int:
        return len(self.nodes)


def trace(model, example: np.ndarray) -> TraceGraph:
    """Run ``model`` once on ``example`` and record the op stream.

    The model must be in eval mode (compiled plans encode inference
    semantics only; training-mode BN depends on batch statistics and
    mutates running buffers, which a static replay must not do).
    """
    if model.training:
        raise RuntimeError(
            "trace() requires eval mode; call model.eval() first "
            "(adaptation steps keep using the eager autograd path)"
        )
    example = np.asarray(example)

    nodes: List[OpNode] = []
    vids: Dict[int, int] = {}
    keepalive: List[Tensor] = []
    x_t = Tensor(example, _copy=False)
    vids[id(x_t)] = 0
    keepalive.append(x_t)
    counter = [1]

    def _ref(arg):
        if isinstance(arg, Tensor):
            vid = vids.get(id(arg))
            if vid is not None:
                return ValueRef(vid)
            return ConstRef(arg)
        return arg

    def _record(function, args, kwargs, out, module=None):
        vid = counter[0]
        counter[0] += 1
        vids[id(out)] = vid
        keepalive.append(out)
        nodes.append(
            OpNode(
                function=function,
                inputs=[_ref(a) for a in args],
                kwargs=dict(kwargs),
                out_vid=vid,
                out_shape=tuple(out.shape),
                out_dtype=out.data.dtype,
                module=module,
            )
        )

    def hook(cls, args, kwargs, out):
        _record(cls, args, kwargs, out)

    bn_orig = _BatchNormBase.forward

    def bn_forward(self, x):
        # run the real layer with generic recording suspended, then emit
        # one opaque node holding the module (state resolved per replay)
        tensor_mod._TRACE_HOOK = None
        try:
            out = bn_orig(self, x)
        finally:
            tensor_mod._TRACE_HOOK = hook
        _record(None, (x,), {}, out, module=self)
        return out

    tensor_mod._TRACE_HOOK = hook
    _BatchNormBase.forward = bn_forward
    try:
        with autograd.no_grad():
            out = model(x_t)
    finally:
        tensor_mod._TRACE_HOOK = None
        _BatchNormBase.forward = bn_orig

    out_vid = vids.get(id(out))
    if out_vid is None:
        raise RuntimeError(
            "model output was not produced by a traced op; cannot compile"
        )
    return TraceGraph(
        nodes=nodes,
        input_vid=0,
        output_vid=out_vid,
        input_shape=tuple(example.shape),
        input_dtype=example.dtype,
        _keepalive=keepalive,
    )


def trace_entropy_step(model, example: np.ndarray, loss_fn) -> TraceGraph:
    """Trace one LD-BN-ADAPT entropy-step forward into a static plan source.

    Runs ``loss_fn(model(example))`` once with BatchNorm layers in
    *training* mode (the rest of the model stays in eval, exactly like
    :func:`repro.adapt.base.set_bn_training`) and records the op stream.
    BatchNorm layers become opaque ``train_bn`` nodes: at replay they
    normalize with the live batch statistics of their input (gradients
    flow through the statistics, PyTorch semantics) and read gamma/beta
    from a plan input, so LD-BN-ADAPT's per-step parameter updates — and
    the fleet's per-stream gamma/beta slots — need no retrace.

    The trace forward itself is side-effect free: the running-statistics
    buffers and ``num_batches_tracked`` counters the training forward
    mutates are snapshotted before and restored after.
    """
    example = np.asarray(example)
    bn_modules = [m for m in model.modules() if isinstance(m, _BatchNormBase)]
    if not bn_modules:
        raise ValueError("model has no BatchNorm layers; nothing to adapt")
    saved_buffers = [
        {
            name: np.array(getattr(m, name))
            for name in ("running_mean", "running_var", "num_batches_tracked")
        }
        for m in bn_modules
    ]
    saved_training = [m.training for m in bn_modules]

    nodes: List[OpNode] = []
    vids: Dict[int, int] = {}
    keepalive: List[Tensor] = []
    x_t = Tensor(example, _copy=False)
    vids[id(x_t)] = 0
    keepalive.append(x_t)
    counter = [1]

    def _ref(arg):
        if isinstance(arg, Tensor):
            vid = vids.get(id(arg))
            if vid is not None:
                return ValueRef(vid)
            return ConstRef(arg)
        return arg

    def _record(function, args, kwargs, out, module=None, train_bn=False):
        vid = counter[0]
        counter[0] += 1
        vids[id(out)] = vid
        keepalive.append(out)
        nodes.append(
            OpNode(
                function=function,
                inputs=[_ref(a) for a in args],
                kwargs=dict(kwargs),
                out_vid=vid,
                out_shape=tuple(out.shape),
                out_dtype=out.data.dtype,
                module=module,
                train_bn=train_bn,
            )
        )

    def hook(cls, args, kwargs, out):
        _record(cls, args, kwargs, out)

    bn_orig = _BatchNormBase.forward

    def bn_forward(self, x):
        tensor_mod._TRACE_HOOK = None
        try:
            out = bn_orig(self, x)
        finally:
            tensor_mod._TRACE_HOOK = hook
        _record(None, (x,), {}, out, module=self, train_bn=True)
        return out

    for module in bn_modules:
        object.__setattr__(module, "training", True)
    tensor_mod._TRACE_HOOK = hook
    _BatchNormBase.forward = bn_forward
    try:
        with autograd.no_grad():
            loss = loss_fn(model(x_t))
    finally:
        tensor_mod._TRACE_HOOK = None
        _BatchNormBase.forward = bn_orig
        for module, training in zip(bn_modules, saved_training):
            object.__setattr__(module, "training", training)
        for module, bufs in zip(bn_modules, saved_buffers):
            for name, value in bufs.items():
                getattr(module, name)[...] = value

    loss_vid = vids.get(id(loss))
    if loss_vid is None:
        raise RuntimeError(
            "loss was not produced by a traced op; cannot compile the "
            "adaptation step"
        )
    return TraceGraph(
        nodes=nodes,
        input_vid=0,
        output_vid=loss_vid,
        input_shape=tuple(example.shape),
        input_dtype=example.dtype,
        _keepalive=keepalive,
    )
