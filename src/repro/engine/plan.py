"""Compile a :class:`~repro.engine.tracer.TraceGraph` into a replayable plan.

The plan is a flat list of zero-argument closures ("stages"), each writing
into buffers fixed at compile time.  Three optimizations make replay fast
while staying **bit-exact** with the eager autograd path (every stage
issues the same numpy kernels on the same values in the same order — only
the bookkeeping around them is removed):

* **Fusion** — a ``conv -> eval-BN -> relu`` chain (and ``linear -> relu``)
  becomes one stage: im2col-GEMM via ``np.matmul(..., out=)`` into the
  stage's arena buffer, then the BN affine and ReLU applied in place as a
  GEMM epilogue.  The BN constants are re-folded from the module's *live*
  state on every replay (O(C) work), so LD-BN-ADAPT updates and the
  per-sample ``(scale, shift)`` fleet override need no retrace.
* **Arena buffer reuse** — liveness analysis assigns op outputs to a pool
  of byte arenas; a buffer is recycled as soon as the last consumer of
  every value aliased to it has run.  Steady-state replays allocate
  nothing beyond tiny per-channel fold vectors.
* **Cached im2col workspaces** — gather indices, padded-image buffers and
  column matrices are precomputed per conv/pool layer for the traced
  input shape; replays gather with ``np.take(..., out=)`` instead of
  rebuilding indices and materializing fresh columns.

The arena/liveness/workspace machinery lives in
:mod:`repro.engine.backends.core` (shared with the adaptation plan); a
codegen backend may pass a *renderer* that is offered every stage as it
is lowered and replaces the accepted ones with compiled-kernel calls at
finalize time — see :mod:`repro.engine.backends.cgen`.  Without a
renderer this module is the pure numpy-closure backend and no autograd
``Context`` (or ``Tensor``) is allocated anywhere on the replay path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn import tensor as T
from ..nn.functional import _pair
from ..nn.tensor import Context
from .backends.core import (  # noqa: F401  (re-exported for compatibility)
    _ALIGN,
    _Arena,
    _Block,
    PlanProfile,
    _timed_step,
    lower_conv,
    lower_pool,
)
from .tracer import ConstRef, OpNode, TraceGraph, ValueRef


@dataclass(frozen=True)
class PlanStats:
    """Introspection summary of a compiled plan."""

    num_ops: int  # traced nodes
    num_stages: int  # replay closures (fused chains collapse)
    fused_stages: int  # stages covering more than one traced node
    arena_blocks: int
    arena_bytes: int  # bytes actually held by the arena
    requested_bytes: int  # bytes the ops would allocate without reuse
    workspace_bytes: int  # dedicated im2col/pool workspaces


def _bn_epilogue(buf3: np.ndarray, module, n: int) -> None:
    """Apply eval-mode BN in place on a ``(N, C, P)`` GEMM output.

    Mirrors the eager ops exactly: per-sample folded affine when the
    fleet override is installed, else normalize with the running stats
    (subtract mean, scale by 1/sqrt(var+eps), then gamma/beta) — the
    same elementwise kernel sequence :func:`repro.nn.functional.batch_norm`
    runs in eval mode, minus the temporaries.
    """
    if module.training:
        raise RuntimeError(
            "compiled plan replayed with a BatchNorm layer in training "
            "mode; adaptation steps must use the eager path"
        )
    c = buf3.shape[1]
    ps = module.per_sample_stats
    if ps is not None:
        scale, shift = ps
        if scale.shape != (n, c):
            raise ValueError(
                f"per_sample_stats shaped {scale.shape}, expected ({n}, {c})"
            )
        buf3 *= scale.reshape(n, c, 1)
        buf3 += shift.reshape(n, c, 1)
    else:
        inv_std = 1.0 / np.sqrt(module.running_var + module.eps)
        buf3 -= module.running_mean.reshape(1, c, 1)
        buf3 *= inv_std.reshape(1, c, 1)
        buf3 *= module.weight.data.reshape(1, c, 1)
        buf3 += module.bias.data.reshape(1, c, 1)


class ExecutionPlan:
    """Executable form of one traced forward at one input shape.

    ``run`` returns a view into plan-owned storage: the contents are
    overwritten by the next ``run`` call, so copy if you need to keep a
    result across frames (serving loops decode immediately and don't).

    ``renderer`` (optional) is a codegen backend's stage renderer: every
    lowered stage is *offered* to it along with the numpy closure; at the
    end of compilation :meth:`finalize` replaces accepted stages with
    compiled-kernel calls (declined or parity-demoted stages keep their
    numpy closures, so fallback is per-stage and structural).
    """

    def __init__(self, graph: TraceGraph, profile: bool = False,
                 renderer=None):
        self._input_shape = graph.input_shape
        self._input_vid = graph.input_vid
        self._steps: List[Callable[[], None]] = []
        self._slots: Dict[int, np.ndarray] = {}
        self._input_cell: List[Optional[np.ndarray]] = [None]
        self._fixed: Dict[int, np.ndarray] = {}
        self._renderer = renderer
        self._pre_replay: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self.backend_info: Dict[str, object] = {"backend": "numpy"}
        # opt-in profiling must be chosen at compile time: the traced
        # graph is dropped after compilation, so closures cannot be
        # re-instrumented later — and the unprofiled closures carry zero
        # timing code, keeping the disabled path cost-free
        self.profile: Optional[PlanProfile] = PlanProfile() if profile else None
        self._compile(graph)
        if renderer is not None:
            self.backend_info = renderer.finalize(self, graph)
            # the renderer holds every offered stage (and its numpy
            # fallback closure, which captures the im2col workspaces);
            # dropping it here is what lets a fused-im2col backend
            # actually free the workspaces it released
            self._renderer = None
        # the graph (and its keepalive of every traced activation) is not
        # retained: closures captured what replay needs, parameters stay
        # reachable through their ConstRef-held tensors

    # -- value access ---------------------------------------------------
    def _getter(self, ref) -> Callable[[], object]:
        if isinstance(ref, ValueRef):
            vid = ref.vid
            fixed = self._fixed.get(vid)
            if fixed is not None:
                return lambda: fixed
            if vid == self._input_vid:
                cell = self._input_cell
                return lambda: cell[0]
            slots = self._slots
            return lambda: slots[vid]
        if isinstance(ref, ConstRef):
            tensor = ref.tensor
            return lambda: tensor.data
        value = ref
        return lambda: value

    def _render_source(self, ref):
        """Classify a stage input for the renderer.

        Returns ``("input", None)`` for the plan input, ``("fixed", arr)``
        for a compile-time-fixed buffer, ``("const", tensor)`` for a
        traced constant/parameter, or ``None`` when the value is only
        available through a dynamic slot (not renderable).
        """
        if isinstance(ref, ValueRef):
            fixed = self._fixed.get(ref.vid)
            if fixed is not None:
                return ("fixed", fixed)
            if ref.vid == self._input_vid:
                return ("input", None)
            return None
        if isinstance(ref, ConstRef):
            return ("const", ref.tensor)
        return None

    def _offer(self, kind: str, spec: dict, fallback):
        """Offer one lowered stage to the renderer; append the step."""
        step = fallback
        if self._renderer is not None:
            placed = self._renderer.offer_stage(kind, spec, fallback)
            if placed is not None:
                step = placed
        self._steps.append(step)

    def _ref_shape_dtype(self, ref, shapes, dtypes):
        if isinstance(ref, ValueRef):
            return shapes[ref.vid], dtypes[ref.vid]
        if isinstance(ref, ConstRef):
            return tuple(ref.tensor.shape), ref.tensor.data.dtype
        return None, None

    # -- compilation ----------------------------------------------------
    def _compile(self, graph: TraceGraph) -> None:
        nodes = graph.nodes
        shapes: Dict[int, Tuple[int, ...]] = {graph.input_vid: graph.input_shape}
        dtypes: Dict[int, np.dtype] = {graph.input_vid: graph.input_dtype}
        consumers: Dict[int, int] = {}
        last_use: Dict[int, int] = {}
        for index, node in enumerate(nodes):
            shapes[node.out_vid] = node.out_shape
            dtypes[node.out_vid] = node.out_dtype
            last_use.setdefault(node.out_vid, index)  # dead outputs die at birth
            for ref in node.inputs:
                if isinstance(ref, ValueRef):
                    consumers[ref.vid] = consumers.get(ref.vid, 0) + 1
                    last_use[ref.vid] = index
        last_use[graph.output_vid] = len(nodes)  # plan output never dies

        dying: Dict[int, List[int]] = {}
        for vid, where in last_use.items():
            dying.setdefault(where, []).append(vid)

        arena = _Arena()
        self._arena = arena
        blocks: Dict[int, _Block] = {}
        workspace_bytes = [0]
        fused = 0
        num_stages = 0

        def release_after(start: int, end: int) -> None:
            for where in range(start, end + 1):
                for vid in dying.get(where, ()):
                    block = blocks.get(vid)
                    if block is not None:
                        block.alive.discard(vid)
                        if not block.alive:
                            arena.release(block)

        def pin_inputs(node: OpNode) -> None:
            # a generic op's output may be a view of any tensor input;
            # its blocks must never be recycled under it
            for ref in node.inputs:
                if isinstance(ref, ValueRef):
                    block = blocks.get(ref.vid)
                    if block is not None:
                        block.pinned = True

        def can_write_inplace(vid: int, end: int, shape, dtype) -> bool:
            block = blocks.get(vid)
            return (
                block is not None
                and not block.pinned
                and block.alive == {vid}
                and last_use[vid] == end
                and self._fixed.get(vid) is not None
                and shapes[vid] == shape
                and dtypes[vid] == dtype
            )

        index = 0
        while index < len(nodes):
            node = nodes[index]
            kind = self._kind(node)
            end = index
            before = len(self._steps)

            if kind == "conv" or kind == "linear":
                bn_node = relu_node = None
                x_ref = node.inputs[0]
                _, x_dtype = self._ref_shape_dtype(x_ref, shapes, dtypes)
                w_shape, w_dtype = self._ref_shape_dtype(
                    node.inputs[1], shapes, dtypes
                )
                gemm_dtype = np.result_type(x_dtype, w_dtype)
                if gemm_dtype == node.out_dtype:
                    scan = index + 1
                    if (
                        kind == "conv"
                        and scan < len(nodes)
                        and self._kind(nodes[scan]) == "bn"
                        and self._consumes(nodes[scan], node.out_vid)
                        and consumers.get(node.out_vid, 0) == 1
                        and node.out_vid != graph.output_vid
                        and nodes[scan].out_dtype == node.out_dtype
                    ):
                        bn_node = nodes[scan]
                        scan += 1
                    tail = bn_node if bn_node is not None else node
                    if (
                        scan < len(nodes)
                        and self._kind(nodes[scan]) == "relu"
                        and self._consumes(nodes[scan], tail.out_vid)
                        and consumers.get(tail.out_vid, 0) == 1
                        and tail.out_vid != graph.output_vid
                        and nodes[scan].out_dtype == tail.out_dtype
                    ):
                        relu_node = nodes[scan]
                        scan += 1
                    end = scan - 1
                    builder = (
                        self._build_conv_stage
                        if kind == "conv"
                        else self._build_linear_stage
                    )
                    builder(
                        node, bn_node, relu_node, shapes, dtypes, arena,
                        blocks, workspace_bytes,
                    )
                    if end > index:
                        fused += 1
                else:
                    self._build_generic_stage(node)
                    pin_inputs(node)
            elif kind == "maxpool":
                self._build_maxpool_stage(
                    node, shapes, dtypes, arena, blocks, workspace_bytes
                )
            elif kind == "relu":
                self._build_relu_stage(
                    node, shapes, dtypes, arena, blocks, can_write_inplace, index
                )
            elif kind == "add":
                self._build_add_stage(
                    node, shapes, dtypes, arena, blocks, can_write_inplace, index
                )
            elif kind in ("reshape", "transpose"):
                self._build_view_stage(node, kind, blocks)
            elif kind == "bn":
                self._build_bn_stage(node, shapes, dtypes)
            else:
                self._build_generic_stage(node)
                pin_inputs(node)

            num_stages += 1
            if self.profile is not None or self._renderer is not None:
                label = "+".join(
                    self._stage_label(nodes[i]) for i in range(index, end + 1)
                )
                if self._renderer is not None:
                    # profiling wraps happen at finalize (the renderer
                    # decides per stage whether the C kernel or the numpy
                    # fallback survived)
                    self._renderer.note_stage(before, len(self._steps), label)
                else:
                    for pos in range(before, len(self._steps)):
                        self._steps[pos] = _timed_step(
                            self._steps[pos], label, self.profile
                        )
            release_after(index, end)
            index = end + 1

        out_fixed = self._fixed.get(graph.output_vid)
        if out_fixed is not None:
            self._fetch_output = lambda: out_fixed
        else:
            slots, ovid = self._slots, graph.output_vid
            self._fetch_output = lambda: slots[ovid]

        self.stats = PlanStats(
            num_ops=len(nodes),
            num_stages=num_stages,
            fused_stages=fused,
            arena_blocks=len(arena.blocks),
            arena_bytes=arena.total_bytes,
            requested_bytes=arena.requested_bytes,
            workspace_bytes=workspace_bytes[0],
        )

    @staticmethod
    def _kind(node: OpNode) -> str:
        if node.module is not None:
            return "bn"
        fn = node.function
        if fn is F._Conv2d:
            return "conv"
        if fn is F._Linear:
            return "linear"
        if fn is F._MaxPool2d:
            return "maxpool"
        if fn is F._ReLU:
            return "relu"
        if fn is T.Add:
            return "add"
        if fn is T.Reshape:
            return "reshape"
        if fn is T.Transpose:
            return "transpose"
        return "generic"

    @classmethod
    def _stage_label(cls, node: OpNode) -> str:
        kind = cls._kind(node)
        if kind == "generic":
            return getattr(node.function, "__name__", "generic").lower()
        return kind

    @staticmethod
    def _consumes(node: OpNode, vid: int) -> bool:
        ref = node.inputs[0]
        return isinstance(ref, ValueRef) and ref.vid == vid

    def _register(self, vid: int, array: np.ndarray, block: Optional[_Block],
                  blocks: Dict[int, _Block]) -> None:
        self._fixed[vid] = array
        if block is not None:
            block.alive.add(vid)
            blocks[vid] = block

    # -- stage builders -------------------------------------------------
    def _build_conv_stage(self, node, bn_node, relu_node, shapes, dtypes,
                          arena, blocks, workspace_bytes):
        x_ref = node.inputs[0]
        x_shape, x_dtype = self._ref_shape_dtype(x_ref, shapes, dtypes)
        weight = node.inputs[1].tensor
        bias_ref = node.inputs[2]
        bias = bias_ref.tensor if isinstance(bias_ref, ConstRef) else None
        stride = _pair(node.inputs[3])
        padding = _pair(node.inputs[4])

        geo = lower_conv(
            x_shape, weight.shape, stride, padding, node.out_dtype, x_dtype
        )
        n, c = geo.n, geo.c
        f_out, p_total, k_total = geo.f_out, geo.p_total, geo.k_total
        identity_cols = geo.identity_cols
        padded, core, cols, flat = geo.padded, geo.core, geo.cols, geo.flat
        workspace_bytes[0] += geo.workspace_nbytes

        block, out3 = arena.alloc((n, f_out, p_total), geo.compute_dtype)
        out_vid = (relu_node or bn_node or node).out_vid
        out4 = out3.reshape(n, f_out, geo.out_h, geo.out_w)
        self._register(out_vid, out4, block, blocks)

        get_x = self._getter(x_ref)
        bn_module = bn_node.module if bn_node is not None else None
        fuse_relu = relu_node is not None

        if self.profile is None or self._renderer is not None:

            def run():
                x = get_x()
                if padded is not None:
                    core[...] = x
                    np.take(padded.reshape(n, -1), flat, axis=1, out=cols,
                            mode="clip")
                    cc = cols
                elif identity_cols:
                    cc = x.reshape(n, c, p_total)
                else:
                    np.take(x.reshape(n, -1), flat, axis=1, out=cols,
                            mode="clip")
                    cc = cols
                np.matmul(weight.data.reshape(f_out, k_total), cc, out=out3)
                if bias is not None:
                    np.add(out3, bias.data.reshape(1, -1, 1), out=out3)
                if bn_module is not None:
                    _bn_epilogue(out3, bn_module, n)
                if fuse_relu:
                    np.maximum(out3, 0.0, out=out3)

        else:
            profile = self.profile

            def run():
                t0 = time.perf_counter()
                x = get_x()
                if padded is not None:
                    core[...] = x
                    np.take(padded.reshape(n, -1), flat, axis=1, out=cols,
                            mode="clip")
                    cc = cols
                elif identity_cols:
                    cc = x.reshape(n, c, p_total)
                else:
                    np.take(x.reshape(n, -1), flat, axis=1, out=cols,
                            mode="clip")
                    cc = cols
                t1 = time.perf_counter()
                np.matmul(weight.data.reshape(f_out, k_total), cc, out=out3)
                t2 = time.perf_counter()
                if bias is not None:
                    np.add(out3, bias.data.reshape(1, -1, 1), out=out3)
                if bn_module is not None:
                    _bn_epilogue(out3, bn_module, n)
                if fuse_relu:
                    np.maximum(out3, 0.0, out=out3)
                t3 = time.perf_counter()
                profile.add_bucket("im2col", t1 - t0)
                profile.add_bucket("gemm", t2 - t1)
                profile.add_bucket("epilogue", t3 - t2)

        self._offer(
            "conv",
            dict(
                geo=geo, x_src=self._render_source(x_ref), weight=weight,
                bias=bias, bn_module=bn_module, relu=fuse_relu, out3=out3,
            ),
            run,
        )

    def _build_linear_stage(self, node, bn_node, relu_node, shapes, dtypes,
                            arena, blocks, workspace_bytes):
        # bn fusion after linear is not emitted (BatchNorm1d after Linear
        # would need the 2-D epilogue); the scan never pairs them because
        # _build path only fuses bn behind conv.
        del bn_node, workspace_bytes
        x_ref = node.inputs[0]
        x_shape, x_dtype = self._ref_shape_dtype(x_ref, shapes, dtypes)
        weight = node.inputs[1].tensor
        bias_ref = node.inputs[2]
        bias = bias_ref.tensor if isinstance(bias_ref, ConstRef) else None
        n = x_shape[0]
        out_features = weight.shape[0]

        block, out2 = arena.alloc((n, out_features), node.out_dtype)
        out_vid = (relu_node or node).out_vid
        self._register(out_vid, out2, block, blocks)

        get_x = self._getter(x_ref)
        fuse_relu = relu_node is not None

        if self.profile is None or self._renderer is not None:

            def run():
                np.matmul(get_x(), weight.data.T, out=out2)
                if bias is not None:
                    np.add(out2, bias.data, out=out2)
                if fuse_relu:
                    np.maximum(out2, 0.0, out=out2)

        else:
            profile = self.profile

            def run():
                t0 = time.perf_counter()
                np.matmul(get_x(), weight.data.T, out=out2)
                t1 = time.perf_counter()
                if bias is not None:
                    np.add(out2, bias.data, out=out2)
                if fuse_relu:
                    np.maximum(out2, 0.0, out=out2)
                t2 = time.perf_counter()
                profile.add_bucket("gemm", t1 - t0)
                profile.add_bucket("epilogue", t2 - t1)

        self._offer(
            "linear",
            dict(
                x_src=self._render_source(x_ref), x_shape=x_shape,
                x_dtype=x_dtype, out_dtype=node.out_dtype, weight=weight,
                bias=bias, relu=fuse_relu, out2=out2,
            ),
            run,
        )

    def _build_maxpool_stage(self, node, shapes, dtypes, arena, blocks,
                             workspace_bytes):
        x_ref = node.inputs[0]
        x_shape, x_dtype = self._ref_shape_dtype(x_ref, shapes, dtypes)
        kernel = _pair(node.inputs[1])
        stride = _pair(node.inputs[2] if node.inputs[2] is not None else kernel)
        padding = _pair(node.inputs[3])

        geo = lower_pool(
            x_shape, node.out_shape, kernel, stride, padding, x_dtype
        )
        n, c, h, w = geo.n, geo.c, geo.h, geo.w
        p_total = geo.p_total
        padded, core, cols, flat = geo.padded, geo.core, geo.cols, geo.flat
        workspace_bytes[0] += geo.workspace_nbytes

        block, out4 = arena.alloc(
            (n, c, geo.out_h, geo.out_w), node.out_dtype
        )
        out2 = out4.reshape(n * c, p_total)
        self._register(node.out_vid, out4, block, blocks)
        get_x = self._getter(x_ref)

        def run():
            x = get_x()
            if padded is not None:
                core[...] = x.reshape(n * c, h, w)
                np.take(padded.reshape(n * c, -1), flat, axis=1, out=cols,
                        mode="clip")
            else:
                np.take(x.reshape(n * c, -1), flat, axis=1, out=cols,
                        mode="clip")
            np.max(cols, axis=1, out=out2)

        self._offer(
            "maxpool",
            dict(
                geo=geo, x_src=self._render_source(x_ref),
                out_dtype=node.out_dtype, out2=out2,
            ),
            run,
        )

    def _build_relu_stage(self, node, shapes, dtypes, arena, blocks,
                          can_write_inplace, index):
        x_ref = node.inputs[0]
        if isinstance(x_ref, ValueRef) and can_write_inplace(
            x_ref.vid, index, node.out_shape, node.out_dtype
        ):
            buf = self._fixed[x_ref.vid]
            block = blocks[x_ref.vid]
            self._register(node.out_vid, buf, block, blocks)
            self._offer(
                "relu",
                dict(x_src=("fixed", buf), out=buf, dtype=node.out_dtype),
                lambda: np.maximum(buf, 0.0, out=buf),
            )
            return
        block, out = arena.alloc(node.out_shape, node.out_dtype)
        self._register(node.out_vid, out, block, blocks)
        get_x = self._getter(x_ref)
        self._offer(
            "relu",
            dict(
                x_src=self._render_source(x_ref), out=out,
                dtype=node.out_dtype,
            ),
            lambda: np.maximum(get_x(), 0.0, out=out),
        )

    def _build_add_stage(self, node, shapes, dtypes, arena, blocks,
                         can_write_inplace, index):
        a_ref, b_ref = node.inputs[0], node.inputs[1]
        target = block = None
        for ref in (a_ref, b_ref):
            if isinstance(ref, ValueRef) and can_write_inplace(
                ref.vid, index, node.out_shape, node.out_dtype
            ):
                target = self._fixed[ref.vid]
                block = blocks[ref.vid]
                break
        if target is None:
            block, target = arena.alloc(node.out_shape, node.out_dtype)
        self._register(node.out_vid, target, block, blocks)
        get_a, get_b = self._getter(a_ref), self._getter(b_ref)
        out = target
        a_shape, _ = self._ref_shape_dtype(a_ref, shapes, dtypes)
        b_shape, _ = self._ref_shape_dtype(b_ref, shapes, dtypes)
        self._offer(
            "add",
            dict(
                a_src=self._render_source(a_ref),
                b_src=self._render_source(b_ref),
                a_shape=a_shape, b_shape=b_shape,
                out_shape=node.out_shape, out=out, dtype=node.out_dtype,
            ),
            lambda: np.add(get_a(), get_b(), out=out),
        )

    def _build_view_stage(self, node, kind, blocks):
        src = node.inputs[0]
        if kind == "reshape":
            param = node.kwargs["shape"]
            transform = lambda a: a.reshape(param)  # noqa: E731
        else:
            param = node.kwargs["axes"]
            transform = lambda a: np.transpose(a, param)  # noqa: E731
        if isinstance(src, ValueRef):
            fixed = self._fixed.get(src.vid)
            if fixed is not None:
                view = transform(fixed)
                # reshape of a non-contiguous view COPIES: freezing that
                # copy would replay stale data, so only precompute when
                # the result genuinely aliases the live buffer
                if np.shares_memory(view, fixed):
                    self._register(
                        node.out_vid, view, blocks.get(src.vid), blocks
                    )
                    return  # pure view of a fixed buffer: zero replay cost
        get_src = self._getter(src)
        slots, vid = self._slots, node.out_vid

        def run():
            slots[vid] = transform(get_src())

        self._steps.append(run)

    def _build_bn_stage(self, node, shapes, dtypes):
        """Standalone eval-mode BN (not behind a conv): literal eager math.

        Never offered to a renderer: the numpy path allocates fresh
        output arrays into dynamic slots, and rendering it would change
        the fallback's allocation semantics — structural parity keeps
        this stage on the oracle path.
        """
        module = node.module
        get_x = self._getter(node.inputs[0])
        slots, vid = self._slots, node.out_vid

        def run():
            x = get_x()
            if module.training:
                raise RuntimeError(
                    "compiled plan replayed with a BatchNorm layer in "
                    "training mode; adaptation steps must use the eager path"
                )
            if x.ndim == 4:
                stat_shape = (1, x.shape[1], 1, 1)
            else:
                stat_shape = (1, x.shape[1])
            ps = module.per_sample_stats
            if ps is not None:
                scale, shift = ps
                shape = (x.shape[0], x.shape[1]) + (1,) * (x.ndim - 2)
                slots[vid] = x * scale.reshape(shape) + shift.reshape(shape)
                return
            mean = module.running_mean.reshape(stat_shape)
            var = module.running_var.reshape(stat_shape)
            inv_std = 1.0 / np.sqrt(var + module.eps)
            x_hat = (x - mean) * inv_std
            gamma = module.weight.data.reshape(stat_shape)
            beta = module.bias.data.reshape(stat_shape)
            slots[vid] = (gamma * x_hat + beta).astype(x.dtype, copy=False)

        self._steps.append(run)

    def _build_generic_stage(self, node):
        """Fallback: re-run the op's forward with a throwaway context."""
        fn = node.function
        getters = [self._getter(ref) for ref in node.inputs]
        kwargs = node.kwargs
        slots, vid = self._slots, node.out_vid

        def run():
            ctx = Context(fn, ())
            slots[vid] = fn.forward(ctx, *[g() for g in getters], **kwargs)

        self._steps.append(run)

    # -- replay ---------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        if x.shape != self._input_shape:
            raise ValueError(
                f"plan compiled for input {self._input_shape}, "
                f"got {x.shape}"
            )
        if self._pre_replay is not None:
            x = self._pre_replay(x)
        self._input_cell[0] = x
        if self.profile is not None:
            self.profile.runs += 1
        for step in self._steps:
            step()
        return self._fetch_output()

    def profile_summary(self) -> Optional[Dict[str, object]]:
        """Per-op timing plus arena byte counters.

        ``None`` unless the plan was compiled with ``profile=True``.
        """
        if self.profile is None:
            return None
        out = self.profile.summary()
        out["arena_bytes"] = self.stats.arena_bytes
        out["requested_bytes"] = self.stats.requested_bytes
        out["workspace_bytes"] = self.stats.workspace_bytes
        return out
