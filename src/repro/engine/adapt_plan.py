"""Compile the LD-BN-ADAPT entropy step into a replayable static plan.

The adaptation hot path — one train-mode forward (BatchNorm normalizing
with live batch statistics), the Shannon-entropy loss, and a backward
pass restricted to BN gamma/beta — previously ran through eager autograd:
a ``Context`` and output ``Tensor`` per op, conv/linear *weight* gradients
computed and discarded (everything but BN affine is frozen), and fresh
temporaries per layer.  This module lowers the traced step
(:func:`repro.engine.tracer.trace_entropy_step`) to closures the same way
:mod:`repro.engine.plan` lowers inference:

* every kernel replays the eager op sequence on the same values in the
  same order, so gradients match the autograd oracle;
* the backward program is pruned to the gradient paths that actually
  reach a BN gamma/beta — conv/linear weight gradients and the gradient
  into the stem conv are never computed;
* activations, saved-for-backward buffers (``x_hat``, pool argmax, ReLU
  masks) and gradient buffers live in the engine's arena
  (:class:`repro.engine.plan._Arena`) with liveness computed over the
  combined forward+backward program, and im2col workspaces are cached per
  layer exactly like the inference plan;
* no autograd ``Context`` or ``Tensor`` is allocated anywhere on the
  replay path.

**Grouped replay** is the fleet-batching mechanism: with ``groups=G`` the
batch axis is split into G contiguous groups of equal size, every
BatchNorm normalizes each group with that group's own batch statistics
and per-group gamma/beta (read from plan-input *slots*), and the loss is
one mean entropy per group.  A single grouped replay therefore equals G
independent serial adaptation steps — one per stream — sharing every
GEMM.  With ``groups=1`` gamma/beta are read live from the model's BN
modules and the plan is the single-stream compiled step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn import tensor as T
from ..nn.functional import _im2col_indices, _pair
from ..nn.modules import _BatchNormBase
from .backends.core import (
    PlanProfile,
    _Arena,
    _timed_step,
    lower_conv,
    lower_pool,
)
from .tracer import ConstRef, OpNode, TraceGraph, ValueRef


class UnsupportedAdaptGraph(RuntimeError):
    """The traced step contains an op the adaptation plan cannot lower.

    Callers fall back to the eager autograd step (which handles every
    op); the compiled path only ever covers graphs it can replay exactly.
    """


@dataclass
class BNLayerTap:
    """Plan inputs/outputs of one BatchNorm layer, in execution order.

    ``gamma_slot``/``beta_slot`` are ``(G, C)`` parameter inputs read at
    every replay — the fleet batcher fills row ``g`` with stream ``g``'s
    adapted gamma/beta.  With ``groups == 1`` they are None and the plan
    reads the live module parameters instead (so single-stream LD-BN-ADAPT
    updates are visible without refilling anything).  After ``run``:

    * ``grad_gamma``/``grad_beta`` hold the entropy gradients, ``(G, C)``;
    * ``batch_mean``/``batch_var`` hold the per-group batch statistics the
      forward normalized with — exactly what the statistics-refresh step
      persists into the running buffers.
    """

    module: _BatchNormBase
    gamma_slot: Optional[np.ndarray]
    beta_slot: Optional[np.ndarray]
    grad_gamma: np.ndarray
    grad_beta: np.ndarray
    batch_mean: np.ndarray
    batch_var: np.ndarray


@dataclass(frozen=True)
class AdaptPlanStats:
    """Introspection summary of a compiled adaptation plan."""

    num_ops: int  # traced nodes (forward incl. loss)
    backward_stages: int  # emitted backward closures (pruned program)
    skipped_backward: int  # traced nodes with no surviving gradient path
    arena_blocks: int
    arena_bytes: int
    requested_bytes: int
    workspace_bytes: int  # dedicated im2col/pool workspaces


class AdaptationPlan:
    """Executable entropy step at one (input shape, group count).

    ``run(x)`` replays the compiled forward, computes the loss, replays
    the pruned backward, and returns the per-group losses ``(G,)``.
    Gradients and batch statistics are left in the :class:`BNLayerTap`
    buffers (overwritten by the next ``run``).
    """

    def __init__(self, graph: TraceGraph, groups: int = 1,
                 profile: bool = False, renderer=None):
        batch = graph.input_shape[0]
        if groups < 1 or batch % groups:
            raise ValueError(
                f"groups={groups} must divide the traced batch size {batch}"
            )
        self.groups = groups
        self.group_size = batch // groups
        self._input_shape = graph.input_shape
        self._fwd: List[Callable[[], None]] = []
        self._bwd: List[Callable[[], None]] = []
        self._fixed: Dict[int, np.ndarray] = {}
        self._grads: Dict[int, np.ndarray] = {}
        self._input_cell: List[Optional[np.ndarray]] = [None]
        self.bn_taps: List[BNLayerTap] = []
        self._renderer = renderer
        self._pre_replay: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self.backend_info: Dict[str, object] = {"backend": "numpy"}
        # profiling is a compile-time choice, exactly as in ExecutionPlan:
        # the unprofiled closures carry no timing code at all
        self.profile: Optional[PlanProfile] = PlanProfile() if profile else None
        self._compile(graph)
        if renderer is not None:
            # both the forward stages and the pruned backward chain are
            # offered for rendering; the renderer walks `_fwd` then
            # `_bwd` (its section order) at finalize
            self.backend_info = renderer.finalize(self, graph)
            # drop the renderer (it holds every offered fallback closure
            # and the workspaces they capture) — see plan.py
            self._renderer = None

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------
    def _getter(self, ref) -> Callable[[], object]:
        if isinstance(ref, ValueRef):
            vid = ref.vid
            if vid == self._input_vid:
                cell = self._input_cell
                return lambda: cell[0]
            fixed = self._fixed[vid]
            return lambda: fixed
        if isinstance(ref, ConstRef):
            tensor = ref.tensor
            return lambda: tensor.data
        value = ref
        return lambda: value

    def _ref_shape_dtype(self, ref):
        if isinstance(ref, ValueRef):
            return self._shapes[ref.vid], self._dtypes[ref.vid]
        if isinstance(ref, ConstRef):
            return tuple(ref.tensor.shape), ref.tensor.data.dtype
        return None, None

    def _render_source(self, ref):
        """Classify a forward-stage input for the renderer (see plan.py)."""
        if isinstance(ref, ValueRef):
            if ref.vid == self._input_vid:
                return ("input", None)
            fixed = self._fixed.get(ref.vid)
            if fixed is not None:
                return ("fixed", fixed)
            return None
        if isinstance(ref, ConstRef):
            return ("const", ref.tensor)
        return None

    def _offer(self, kind: str, spec: dict, fallback) -> None:
        """Offer one lowered forward stage to the renderer; append it."""
        step = fallback
        if self._renderer is not None:
            placed = self._renderer.offer_stage(kind, spec, fallback)
            if placed is not None:
                step = placed
        self._fwd.append(step)

    @staticmethod
    def _kind(node: OpNode) -> str:
        if node.module is not None:
            return "bn"
        fn = node.function
        if fn is F._Conv2d:
            return "conv"
        if fn is F._Linear:
            return "linear"
        if fn is F._MaxPool2d:
            return "maxpool"
        if fn is F._ReLU:
            return "relu"
        if fn is F._LogSoftmax:
            return "logsoftmax"
        if fn is T.Add:
            return "add"
        if fn is T.Mul:
            return "mul"
        if fn is T.Exp:
            return "exp"
        if fn is T.Neg:
            return "neg"
        if fn is T.Sum:
            return "sum"
        if fn is T.Mean:
            return "mean"
        if fn is T.Reshape:
            return "reshape"
        return "unsupported"

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _compile(self, graph: TraceGraph) -> None:
        nodes = graph.nodes
        num = len(nodes)
        self._input_vid = graph.input_vid
        self._loss_vid = graph.output_vid
        shapes: Dict[int, Tuple[int, ...]] = {graph.input_vid: graph.input_shape}
        dtypes: Dict[int, np.dtype] = {graph.input_vid: graph.input_dtype}
        producer: Dict[int, int] = {}
        kinds: List[str] = []
        for index, node in enumerate(nodes):
            kind = self._kind(node)
            if kind == "unsupported":
                raise UnsupportedAdaptGraph(
                    f"op {node.function.__name__} has no adaptation-plan "
                    f"lowering; use the eager step"
                )
            kinds.append(kind)
            shapes[node.out_vid] = node.out_shape
            dtypes[node.out_vid] = node.out_dtype
            producer[node.out_vid] = index
        self._shapes, self._dtypes = shapes, dtypes
        loss_node = nodes[-1]
        if (
            loss_node.out_vid != self._loss_vid
            or kinds[-1] != "mean"
            or loss_node.kwargs.get("axis") is not None
        ):
            raise UnsupportedAdaptGraph(
                "adaptation plan requires the trace to end in a global "
                "mean loss (entropy_loss does)"
            )

        # -- gradient-path analysis ------------------------------------
        # carries: the value's producing subgraph contains a train-mode BN,
        # i.e. a gradient flowing into it can still reach some gamma/beta.
        carries: set = set()
        for node in nodes:
            if node.train_bn:
                carries.add(node.out_vid)
            elif any(
                isinstance(r, ValueRef) and r.vid in carries
                for r in node.inputs
            ):
                carries.add(node.out_vid)
        # reaches: the value feeds the loss (live branch of the trace)
        reaches = {self._loss_vid}
        for node in reversed(nodes):
            if node.out_vid in reaches:
                for r in node.inputs:
                    if isinstance(r, ValueRef):
                        reaches.add(r.vid)
        grad_vids = {v for v in carries if v in reaches}
        # a node emits a backward stage when its output gradient exists
        # (the loss node seeds instead of consuming a gradient)
        has_bwd = [
            nodes[i].out_vid in grad_vids or nodes[i].out_vid == self._loss_vid
            for i in range(num)
        ]
        # which inputs of node i receive gradient contributions
        def grad_inputs(i: int) -> List[int]:
            if not has_bwd[i]:
                return []
            return [
                r.vid
                for r in nodes[i].inputs
                if isinstance(r, ValueRef) and r.vid in grad_vids
            ]

        # -- liveness over the combined forward+backward program --------
        def bwd_pos(i: int) -> int:
            return 2 * num - 1 - i

        # reshape outputs are views: uses of the view keep the source's
        # arena block alive
        alias: Dict[int, int] = {
            node.out_vid: node.inputs[0].vid
            for index, node in enumerate(nodes)
            if kinds[index] == "reshape" and isinstance(node.inputs[0], ValueRef)
        }

        def root(vid: int) -> int:
            while vid in alias:
                vid = alias[vid]
            return vid

        last_use: Dict[object, int] = {}

        def use(key, pos):
            last_use[key] = max(last_use.get(key, -1), pos)

        for index, node in enumerate(nodes):
            use(("a", root(node.out_vid)), index)  # dead outputs die at birth
            for r in node.inputs:
                if isinstance(r, ValueRef):
                    use(("a", root(r.vid)), index)
            kind = kinds[index]
            pos = bwd_pos(index) if has_bwd[index] else index
            if has_bwd[index]:
                if kind in ("relu", "logsoftmax", "exp"):
                    use(("a", root(node.out_vid)), pos)
                elif kind == "mul":
                    for r in node.inputs:
                        if isinstance(r, ValueRef):
                            use(("a", root(r.vid)), pos)
            # internal saved-for-backward / scratch buffers
            if kind == "bn":
                use(("xh", index), pos)
            elif kind == "logsoftmax":
                use(("ls", index), pos)
            elif kind == "maxpool":
                use(("arg", index), pos)
                if has_bwd[index]:
                    use(("gcols", index), pos)
                    use(("gpad", index), pos)
            elif kind == "conv" and has_bwd[index]:
                use(("gcols", index), pos)
                use(("gpad", index), pos)
            elif kind == "relu" and has_bwd[index]:
                use(("mask", index), pos)
        use(("a", root(self._loss_vid)), 2 * num)  # returned to caller: pinned
        # gradient buffers: born at the backward stage of their latest
        # consumer, die at the backward stage of their producer
        for vid in grad_vids:
            use(("g", vid), bwd_pos(producer[vid]))

        dying: Dict[int, List[object]] = {}
        for key, pos in last_use.items():
            if pos <= 2 * num - 1:
                dying.setdefault(pos, []).append(key)

        arena = _Arena()
        self._arena = arena
        blocks: Dict[object, object] = {}
        workspace_bytes = [0]

        def alloc(key, shape, dtype) -> np.ndarray:
            block, view = arena.alloc(shape, dtype)
            block.alive.add(key)
            blocks[key] = block
            return view

        def register(vid: int, array: np.ndarray) -> None:
            self._fixed[vid] = array

        def advance(pos: int) -> None:
            for key in dying.get(pos, ()):
                block = blocks.pop(key, None)
                if block is not None:
                    block.alive.discard(key)
                    if not block.alive:
                        arena.release(block)

        def grad_buffer(vid: int) -> np.ndarray:
            buf = self._grads.get(vid)
            if buf is None:
                buf = alloc(("g", vid), shapes[vid], dtypes[vid])
                self._grads[vid] = buf
            return buf

        written: Dict[int, bool] = {}

        def sink(vid: int):
            """(buffer, fresh) for one gradient contribution into ``vid``."""
            buf = grad_buffer(vid)
            fresh = not written.get(vid, False)
            written[vid] = True
            return buf, fresh

        # per-node compile-time state shared between fwd and bwd closures
        cells: List[dict] = [dict() for _ in range(num)]

        profile = self.profile

        def wrap_tail(steps: List[Callable[[], None]], start: int,
                      label: str) -> None:
            # instrument whatever closures the builder just appended
            for p in range(start, len(steps)):
                steps[p] = _timed_step(steps[p], label, profile)

        # -- forward ----------------------------------------------------
        for index, node in enumerate(nodes):
            kind = kinds[index]
            builder = getattr(self, f"_fwd_{kind}")
            before = len(self._fwd)
            builder(node, index, cells[index], alloc, register, workspace_bytes)
            if self._renderer is not None:
                # profiling wraps for the forward happen at finalize,
                # after the renderer resolves which stages survived
                self._renderer.note_stage(before, len(self._fwd), f"fwd:{kind}")
            elif profile is not None:
                wrap_tail(self._fwd, before, f"fwd:{kind}")
            advance(index)

        # -- backward (pruned) ------------------------------------------
        emitted = 0
        for index in range(num - 1, -1, -1):
            pos = bwd_pos(index)
            if has_bwd[index]:
                node = nodes[index]
                kind = kinds[index]
                builder = getattr(self, f"_bwd_{kind}")
                before = len(self._bwd)
                builder(node, index, cells[index], alloc, sink, grad_inputs(index))
                if self._renderer is not None:
                    # backward stages live in the renderer's second
                    # section; profiling wraps happen at finalize
                    self._renderer.note_stage(
                        before, len(self._bwd), f"bwd:{kind}", section=1
                    )
                elif profile is not None:
                    wrap_tail(self._bwd, before, f"bwd:{kind}")
                emitted += 1
            advance(pos)

        loss_buf = self._fixed[self._loss_vid]
        self._loss_out = loss_buf
        self.stats = AdaptPlanStats(
            num_ops=num,
            backward_stages=emitted,
            skipped_backward=num - emitted,
            arena_blocks=len(arena.blocks),
            arena_bytes=arena.total_bytes,
            requested_bytes=arena.requested_bytes,
            workspace_bytes=workspace_bytes[0],
        )

    # ------------------------------------------------------------------
    # forward stage builders
    # ------------------------------------------------------------------
    def _fwd_conv(self, node, index, cell, alloc, register, workspace_bytes):
        x_ref = node.inputs[0]
        x_shape, x_dtype = self._ref_shape_dtype(x_ref)
        weight = node.inputs[1].tensor
        bias_ref = node.inputs[2]
        bias = bias_ref.tensor if isinstance(bias_ref, ConstRef) else None
        stride = _pair(node.inputs[3])
        padding = _pair(node.inputs[4])

        geo = lower_conv(
            x_shape, weight.shape, stride, padding, node.out_dtype, x_dtype
        )
        n, c = geo.n, geo.c
        f_out, p_total, k_total = geo.f_out, geo.p_total, geo.k_total
        identity_cols = geo.identity_cols
        padded, core, cols, flat = geo.padded, geo.core, geo.cols, geo.flat
        workspace_bytes[0] += geo.workspace_nbytes
        cell.update(
            x_shape=x_shape, stride=stride, padding=padding,
            identity_cols=identity_cols, k_total=k_total, p_total=p_total,
            f_out=f_out,
        )

        out3 = alloc(("a", node.out_vid), (n, f_out, p_total),
                     geo.compute_dtype)
        out4 = out3.reshape(n, f_out, geo.out_h, geo.out_w)
        register(node.out_vid, out4)
        get_x = self._getter(x_ref)

        def run():
            x = get_x()
            if padded is not None:
                core[...] = x
                np.take(padded.reshape(n, -1), flat, axis=1, out=cols,
                        mode="clip")
                cc = cols
            elif identity_cols:
                cc = x.reshape(n, c, p_total)
            else:
                np.take(x.reshape(n, -1), flat, axis=1, out=cols, mode="clip")
                cc = cols
            np.matmul(weight.data.reshape(f_out, k_total), cc, out=out3)
            if bias is not None:
                np.add(out3, bias.data.reshape(1, -1, 1), out=out3)

        self._offer(
            "conv",
            dict(
                geo=geo, x_src=self._render_source(x_ref), weight=weight,
                bias=bias, bn_module=None, relu=False, out3=out3,
            ),
            run,
        )

    def _fwd_linear(self, node, index, cell, alloc, register, workspace_bytes):
        x_ref = node.inputs[0]
        x_shape, _ = self._ref_shape_dtype(x_ref)
        weight = node.inputs[1].tensor
        bias_ref = node.inputs[2]
        bias = bias_ref.tensor if isinstance(bias_ref, ConstRef) else None
        out2 = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out2)
        get_x = self._getter(x_ref)

        x_dtype = self._ref_shape_dtype(x_ref)[1]

        def run():
            np.matmul(get_x(), weight.data.T, out=out2)
            if bias is not None:
                np.add(out2, bias.data, out=out2)

        self._offer(
            "linear",
            dict(
                x_src=self._render_source(x_ref), x_shape=x_shape,
                x_dtype=x_dtype, out_dtype=node.out_dtype, weight=weight,
                bias=bias, relu=False, out2=out2,
            ),
            run,
        )

    def _fwd_relu(self, node, index, cell, alloc, register, workspace_bytes):
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        x_ref = node.inputs[0]
        get_x = self._getter(x_ref)
        self._offer(
            "relu",
            dict(x_src=self._render_source(x_ref), out=out,
                 dtype=node.out_dtype),
            lambda: np.maximum(get_x(), 0.0, out=out),
        )

    def _fwd_add(self, node, index, cell, alloc, register, workspace_bytes):
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        a_ref, b_ref = node.inputs[0], node.inputs[1]
        get_a, get_b = self._getter(a_ref), self._getter(b_ref)
        self._offer(
            "add",
            dict(
                a_src=self._render_source(a_ref),
                b_src=self._render_source(b_ref),
                a_shape=self._ref_shape_dtype(a_ref)[0],
                b_shape=self._ref_shape_dtype(b_ref)[0],
                out_shape=node.out_shape, out=out, dtype=node.out_dtype,
            ),
            lambda: np.add(get_a(), get_b(), out=out),
        )

    def _fwd_mul(self, node, index, cell, alloc, register, workspace_bytes):
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        a_ref, b_ref = node.inputs[0], node.inputs[1]
        get_a, get_b = self._getter(a_ref), self._getter(b_ref)
        self._offer(
            "mul",
            dict(
                a_src=self._render_source(a_ref),
                b_src=self._render_source(b_ref),
                a_shape=self._ref_shape_dtype(a_ref)[0],
                b_shape=self._ref_shape_dtype(b_ref)[0],
                out_shape=node.out_shape, out=out, dtype=node.out_dtype,
            ),
            lambda: np.multiply(get_a(), get_b(), out=out),
        )

    def _fwd_exp(self, node, index, cell, alloc, register, workspace_bytes):
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        x_ref = node.inputs[0]
        get_x = self._getter(x_ref)
        self._offer(
            "exp",
            dict(x_src=self._render_source(x_ref), out=out,
                 dtype=node.out_dtype),
            lambda: np.exp(get_x(), out=out),
        )

    def _fwd_neg(self, node, index, cell, alloc, register, workspace_bytes):
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        x_ref = node.inputs[0]
        get_x = self._getter(x_ref)
        self._offer(
            "neg",
            dict(x_src=self._render_source(x_ref), out=out,
                 dtype=node.out_dtype),
            lambda: np.negative(get_x(), out=out),
        )

    def _fwd_reshape(self, node, index, cell, alloc, register, workspace_bytes):
        src = node.inputs[0]
        shape = node.kwargs["shape"]
        if not isinstance(src, ValueRef) or src.vid == self._input_vid:
            raise UnsupportedAdaptGraph("reshape of a non-activation input")
        base = self._fixed[src.vid]
        view = base.reshape(shape)
        if not np.shares_memory(view, base):  # pragma: no cover - arena bufs
            raise UnsupportedAdaptGraph("non-view reshape in adaptation trace")
        register(node.out_vid, view)
        # pure view: zero replay cost, no stage emitted — but keep the
        # source alive as long as the view (same arena block)

    def _fwd_sum(self, node, index, cell, alloc, register, workspace_bytes):
        axis = node.kwargs.get("axis")
        keepdims = node.kwargs.get("keepdims", False)
        if not isinstance(axis, int):
            raise UnsupportedAdaptGraph("sum lowering supports a single axis")
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        get_x = self._getter(node.inputs[0])
        cell.update(axis=axis, keepdims=keepdims)
        self._fwd.append(
            lambda: np.sum(get_x(), axis=axis, keepdims=keepdims, out=out)
        )

    def _fwd_mean(self, node, index, cell, alloc, register, workspace_bytes):
        # only emitted for the final global-mean loss (validated upfront):
        # lowered as one mean per group so a grouped replay returns each
        # stream's own loss
        in_shape, _ = self._ref_shape_dtype(node.inputs[0])
        groups = self.groups
        per_group = int(np.prod(in_shape)) // groups
        out = np.empty((groups,), dtype=node.out_dtype)
        register(node.out_vid, out)
        get_x = self._getter(node.inputs[0])
        cell.update(per_group=per_group, in_shape=in_shape)
        self._fwd.append(
            lambda: np.mean(get_x().reshape(groups, per_group), axis=1, out=out)
        )

    def _fwd_logsoftmax(self, node, index, cell, alloc, register,
                        workspace_bytes):
        axis = node.inputs[1]
        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        register(node.out_vid, out)
        scratch = alloc(("ls", index), node.out_shape, node.out_dtype)
        get_x = self._getter(node.inputs[0])
        cell.update(axis=axis, scratch=scratch)

        def run():
            x = get_x()
            mx = x.max(axis=axis, keepdims=True)
            np.subtract(x, mx, out=out)  # shifted
            np.exp(out, out=scratch)
            s = scratch.sum(axis=axis, keepdims=True)
            np.log(s, out=s)
            np.subtract(out, s, out=out)

        self._fwd.append(run)

    def _fwd_maxpool(self, node, index, cell, alloc, register, workspace_bytes):
        x_ref = node.inputs[0]
        x_shape, x_dtype = self._ref_shape_dtype(x_ref)
        kernel = _pair(node.inputs[1])
        stride = _pair(node.inputs[2] if node.inputs[2] is not None else kernel)
        padding = _pair(node.inputs[3])
        geo = lower_pool(
            x_shape, node.out_shape, kernel, stride, padding, x_dtype
        )
        n, c, h, w = geo.n, geo.c, geo.h, geo.w
        p_total = geo.p_total
        padded, core, cols, flat = geo.padded, geo.core, geo.cols, geo.flat
        workspace_bytes[0] += geo.workspace_nbytes
        arg = alloc(("arg", index), (n * c, p_total), np.intp)

        out4 = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        out2 = out4.reshape(n * c, p_total)
        register(node.out_vid, out4)
        get_x = self._getter(x_ref)
        cell.update(
            x_shape=x_shape, kernel=kernel, stride=stride, padding=padding,
            h_eff=geo.h_eff, w_eff=geo.w_eff, arg=arg, scatter=geo.kij,
            p_total=p_total,
        )

        def run():
            x = get_x()
            if padded is not None:
                core[...] = x.reshape(n * c, h, w)
                np.take(padded.reshape(n * c, -1), flat, axis=1, out=cols,
                        mode="clip")
            else:
                np.take(x.reshape(n * c, -1), flat, axis=1, out=cols,
                        mode="clip")
            np.argmax(cols, axis=1, out=arg)
            np.max(cols, axis=1, out=out2)

        self._offer(
            "maxpool",
            dict(
                geo=geo, x_src=self._render_source(x_ref),
                out_dtype=node.out_dtype, out2=out2, arg=arg,
            ),
            run,
        )

    def _fwd_bn(self, node, index, cell, alloc, register, workspace_bytes):
        if not node.train_bn:
            raise UnsupportedAdaptGraph(
                "eval-mode BN inside an adaptation trace"
            )
        module = node.module
        x_ref = node.inputs[0]
        x_shape, _ = self._ref_shape_dtype(x_ref)
        groups, group_size = self.groups, self.group_size
        c = module.num_features
        if x_shape[0] != groups * group_size:
            raise UnsupportedAdaptGraph("BN input batch does not match groups")
        if len(x_shape) == 4:
            gshape = (groups, group_size, c, x_shape[2], x_shape[3])
            axes = (1, 3, 4)
            pshape = (groups, 1, c, 1, 1)
        elif len(x_shape) == 2:
            gshape = (groups, group_size, c)
            axes = (1,)
            pshape = (groups, 1, c)
        else:  # pragma: no cover - BN accepts 2-D/4-D only
            raise UnsupportedAdaptGraph(f"BN on {len(x_shape)}-D input")
        m = float(group_size * int(np.prod(x_shape[2:], dtype=np.int64)))
        eps = module.eps

        out = alloc(("a", node.out_vid), node.out_shape, node.out_dtype)
        xhat = alloc(("xh", index), node.out_shape, node.out_dtype)
        # inv_std persists in a plan-owned buffer (not a per-run
        # temporary): the rendered backward reads it through a pointer
        # fixed at compile time.  Tiny — (G, C) per BN layer.
        inv_std = np.empty((groups, c), dtype=node.out_dtype)
        inv5 = inv_std.reshape(pshape)
        if groups > 1:
            # ones/zeros (the BN identity), not np.empty: the backend
            # parity probe replays the traced example before the fleet
            # fills the slots, and garbage would make probes flaky
            gamma_slot = np.ones((groups, c), dtype=np.float64)
            beta_slot = np.zeros((groups, c), dtype=np.float64)
            get_gamma = lambda: gamma_slot.reshape(pshape)  # noqa: E731
            get_beta = lambda: beta_slot.reshape(pshape)  # noqa: E731
        else:
            gamma_slot = beta_slot = None
            stat = (1, 1, c) + (1,) * (len(pshape) - 3)
            get_gamma = lambda: module.weight.data.reshape(stat)  # noqa: E731
            get_beta = lambda: module.bias.data.reshape(stat)  # noqa: E731
        tap = BNLayerTap(
            module=module,
            gamma_slot=gamma_slot,
            beta_slot=beta_slot,
            grad_gamma=np.empty((groups, c), dtype=np.float64),
            grad_beta=np.empty((groups, c), dtype=np.float64),
            batch_mean=np.empty((groups, c), dtype=np.float64),
            batch_var=np.empty((groups, c), dtype=np.float64),
        )
        self.bn_taps.append(tap)
        get_x = self._getter(x_ref)
        hw = int(np.prod(x_shape[2:], dtype=np.int64))
        cell.update(
            gshape=gshape, axes=axes, m=m, tap=tap, xhat=xhat,
            get_gamma=get_gamma, inv_std=inv_std, inv5=inv5, hw=hw,
            gamma_slot=gamma_slot, module=module,
        )

        def run():
            x5 = get_x().reshape(gshape)
            mean = x5.mean(axis=axes, keepdims=True)
            var = x5.var(axis=axes, keepdims=True)
            # same ufunc sequence as `1.0 / np.sqrt(var + eps)`, written
            # into the persistent buffer — bitwise identical values
            np.add(var, eps, out=inv5)
            np.sqrt(inv5, out=inv5)
            np.divide(1.0, inv5, out=inv5)
            xh5 = xhat.reshape(gshape)
            np.subtract(x5, mean, out=xh5)
            np.multiply(xh5, inv5, out=xh5)
            out5 = out.reshape(gshape)
            np.multiply(xh5, get_gamma(), out=out5)
            np.add(out5, get_beta(), out=out5)
            tap.batch_mean[...] = mean.reshape(groups, c)
            tap.batch_var[...] = var.reshape(groups, c)

        self._fwd.append(run)
        register(node.out_vid, out)

    # ------------------------------------------------------------------
    # backward stage builders (emitted in reverse node order)
    # ------------------------------------------------------------------
    def _contribute(self, vid, sink, compute_fresh, compute_value,
                    offer=None):
        """Emit one gradient contribution into ``vid``.

        ``compute_fresh(dst)`` writes the contribution with ``out=``;
        ``compute_value()`` returns it (used in accumulate mode, where the
        eager path also materializes a temporary before ``existing +
        grad``).  ``offer`` is an optional ``(kind, spec)`` renderer offer
        for the fresh-write form — the destination buffer is added to the
        spec once the sink fixes it.  Accumulating contributions are never
        offered (the rendered backward covers the reduced single-writer
        chain).
        """
        dst, fresh = sink(vid)
        if fresh:
            fallback = lambda: compute_fresh(dst)  # noqa: E731
            if offer is not None and self._renderer is not None:
                kind, spec = offer
                placed = self._renderer.offer_stage(
                    kind, dict(spec, dst=dst), fallback
                )
                if placed is not None:
                    self._bwd.append(placed)
                    return
            self._bwd.append(fallback)
        else:
            self._bwd.append(lambda: np.add(dst, compute_value(), out=dst))

    def _bwd_mean(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:  # pragma: no cover - loss always carries
            return
        vid = grad_in[0]
        seed = 1.0 / cell["per_group"]
        self._contribute(
            vid, sink,
            lambda dst: dst.fill(seed),
            lambda: seed,
            offer=("fill", dict(value=seed, dtype=self._dtypes[vid])),
        )

    def _bwd_neg(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        self._contribute(
            grad_in[0], sink,
            lambda dst: np.negative(g, out=dst),
            lambda: -g,
        )

    def _bwd_sum(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        axis = cell["axis"]
        keepdims = cell["keepdims"]
        in_shape = self._shapes[grad_in[0]]
        axis_norm = axis % len(in_shape)

        def expanded():
            return g if keepdims else np.expand_dims(g, axis_norm)

        self._contribute(
            grad_in[0], sink,
            lambda dst: np.copyto(dst, expanded()),
            expanded,
        )

    def _bwd_mul(self, node, index, cell, alloc, sink, grad_in):
        g = self._grads[node.out_vid]
        a_ref, b_ref = node.inputs[0], node.inputs[1]
        get_a, get_b = self._getter(a_ref), self._getter(b_ref)
        if isinstance(a_ref, ValueRef) and a_ref.vid in grad_in:
            self._contribute(
                a_ref.vid, sink,
                lambda dst: np.multiply(g, get_b(), out=dst),
                lambda: g * get_b(),
            )
        if isinstance(b_ref, ValueRef) and b_ref.vid in grad_in:
            self._contribute(
                b_ref.vid, sink,
                lambda dst: np.multiply(g, get_a(), out=dst),
                lambda: g * get_a(),
            )

    def _bwd_exp(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        out = self._fixed[node.out_vid]
        self._contribute(
            grad_in[0], sink,
            lambda dst: np.multiply(g, out, out=dst),
            lambda: g * out,
        )

    def _bwd_logsoftmax(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        out = self._fixed[node.out_vid]
        axis = cell["axis"]
        scratch = cell["scratch"]

        def value():
            np.exp(out, out=scratch)  # softmax
            s = g.sum(axis=axis, keepdims=True)
            np.multiply(scratch, s, out=scratch)
            return scratch

        self._contribute(
            grad_in[0], sink,
            lambda dst: np.subtract(g, value(), out=dst),
            lambda: g - value(),
        )

    def _bwd_reshape(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        in_shape = self._shapes[grad_in[0]]

        def reshaped():
            return g.reshape(in_shape)

        self._contribute(
            grad_in[0], sink,
            lambda dst: np.copyto(dst, reshaped()),
            reshaped,
            offer=("copy", dict(g=g, dtype=node.out_dtype)),
        )

    def _bwd_add(self, node, index, cell, alloc, sink, grad_in):
        g = self._grads[node.out_vid]
        for ref in node.inputs[:2]:
            if isinstance(ref, ValueRef) and ref.vid in grad_in:
                self._contribute(
                    ref.vid, sink,
                    lambda dst: np.copyto(dst, g),
                    lambda: g,
                    offer=("copy", dict(g=g, dtype=node.out_dtype)),
                )

    def _bwd_relu(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        out = self._fixed[node.out_vid]
        mask = alloc(("mask", index), node.out_shape, np.bool_)

        def fresh(dst):
            np.greater(out, 0, out=mask)
            np.multiply(g, mask, out=dst)

        def value():
            np.greater(out, 0, out=mask)
            return g * mask

        self._contribute(
            grad_in[0], sink, fresh, value,
            offer=("relu_bwd", dict(g=g, y=out, dtype=node.out_dtype)),
        )

    def _bwd_linear(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g = self._grads[node.out_vid]
        weight = node.inputs[1].tensor
        self._contribute(
            grad_in[0], sink,
            lambda dst: np.matmul(g, weight.data, out=dst),
            lambda: g @ weight.data,
            offer=("linear_bwd", dict(
                g=g, weight=weight,
                g_shape=self._shapes[node.out_vid],
                fin=int(weight.shape[1]), dtype=node.out_dtype,
            )),
        )

    def _bwd_conv(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g4 = self._grads[node.out_vid]
        weight = node.inputs[1].tensor
        n, c, h, w = cell["x_shape"]
        stride, padding = cell["stride"], cell["padding"]
        k_total, p_total, f_out = cell["k_total"], cell["p_total"], cell["f_out"]
        dtype = node.out_dtype
        grad_cols = alloc(("gcols", index), (n, k_total, p_total), dtype)
        if cell["identity_cols"]:
            def value():
                g_mat = g4.reshape(n, f_out, p_total)
                np.einsum(
                    "fk,nfp->nkp", weight.data.reshape(f_out, k_total), g_mat,
                    out=grad_cols, optimize=True,
                )
                return grad_cols.reshape(n, c, h, w)

            self._contribute(
                grad_in[0], sink,
                lambda dst: np.copyto(dst, value()),
                value,
                offer=("conv_bwd", dict(
                    g=g4, weight=weight, g_dims=(n, f_out, p_total),
                    kt=k_total, dtype=dtype,
                )),
            )
            return
        else:
            kernel = (weight.shape[2], weight.shape[3])
            k, i, j, _, _ = _im2col_indices(c, h, w, kernel, stride, padding)
            hp, wp = h + 2 * padding[0], w + 2 * padding[1]
            gpad = alloc(("gpad", index), (n, c, hp, wp), dtype)
            inner = gpad[:, :, padding[0]:padding[0] + h,
                         padding[1]:padding[1] + w]

            def value():
                g_mat = g4.reshape(n, f_out, p_total)
                np.einsum(
                    "fk,nfp->nkp", weight.data.reshape(f_out, k_total), g_mat,
                    out=grad_cols, optimize=True,
                )
                gpad.fill(0.0)
                np.add.at(gpad, (slice(None), k, i, j), grad_cols)
                return inner

        self._contribute(
            grad_in[0], sink,
            lambda dst: np.copyto(dst, value()),
            value,
        )

    def _bwd_maxpool(self, node, index, cell, alloc, sink, grad_in):
        if not grad_in:
            return
        g4 = self._grads[node.out_vid]
        n, c, h, w = cell["x_shape"]
        kernel, stride, padding = cell["kernel"], cell["stride"], cell["padding"]
        h_eff, w_eff = cell["h_eff"], cell["w_eff"]
        arg = cell["arg"]
        k, i, j = cell["scatter"]
        p_total = cell["p_total"]
        dtype = node.out_dtype
        grad_cols = alloc(
            ("gcols", index), (n * c, kernel[0] * kernel[1], p_total), dtype
        )
        gpad = alloc(("gpad", index), (n * c, 1, h_eff, w_eff), dtype)
        ph, pw = padding

        def value():
            g_flat = g4.reshape(n * c, -1)
            grad_cols.fill(0.0)
            np.put_along_axis(
                grad_cols, arg[:, None, :], g_flat[:, None, :], axis=1
            )
            gpad.fill(0.0)
            np.add.at(gpad, (slice(None), k, i, j), grad_cols)
            grad = gpad.reshape(n, c, h_eff, w_eff)
            if ph or pw:
                return grad[:, :, ph:ph + h, pw:pw + w]
            return grad

        self._contribute(
            grad_in[0], sink,
            lambda dst: np.copyto(dst, value()),
            value,
        )

    def _bwd_bn(self, node, index, cell, alloc, sink, grad_in):
        g = self._grads[node.out_vid]
        gshape, axes, m = cell["gshape"], cell["axes"], cell["m"]
        tap, xhat = cell["tap"], cell["xhat"]
        get_gamma = cell["get_gamma"]
        inv5 = cell["inv5"]
        groups = self.groups
        c = tap.module.num_features

        def grads_gamma_beta():
            g5 = g.reshape(gshape)
            xh5 = xhat.reshape(gshape)
            tap.grad_gamma[...] = (
                (g5 * xh5).sum(axis=axes, keepdims=True).reshape(groups, c)
            )
            tap.grad_beta[...] = (
                g5.sum(axis=axes, keepdims=True).reshape(groups, c)
            )
            return g5, xh5

        gamma_src = (
            ("slot", cell["gamma_slot"]) if cell["gamma_slot"] is not None
            else ("module", cell["module"])
        )
        spec = dict(
            g=g, xhat=xhat, inv_std=cell["inv_std"],
            grad_gamma=tap.grad_gamma, grad_beta=tap.grad_beta,
            dims=(groups, self.group_size, c, cell["hw"]),
            m=m, gamma=gamma_src, dtype=node.out_dtype,
        )

        if grad_in:
            def value():
                g5, xh5 = grads_gamma_beta()
                dx_hat = g5 * get_gamma()
                grad5 = (
                    inv5
                    / m
                    * (
                        m * dx_hat
                        - dx_hat.sum(axis=axes, keepdims=True)
                        - xh5 * (dx_hat * xh5).sum(axis=axes, keepdims=True)
                    )
                )
                return grad5.reshape(self._shapes[grad_in[0]])

            self._contribute(
                grad_in[0], sink,
                lambda dst: np.copyto(dst, value()),
                value,
                offer=("bn_bwd", spec),
            )
        else:
            # the first BN in the network: nothing upstream needs gradient
            fallback = lambda: grads_gamma_beta()  # noqa: E731
            step = fallback
            if self._renderer is not None:
                placed = self._renderer.offer_stage("bn_bwd", spec, fallback)
                if placed is not None:
                    step = placed
            self._bwd.append(step)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """One compiled entropy step; returns per-group losses ``(G,)``.

        BN gradients and batch statistics are left in :attr:`bn_taps`
        (plan-owned buffers, overwritten by the next ``run``).
        """
        if x.shape != self._input_shape:
            raise ValueError(
                f"adaptation plan compiled for input {self._input_shape}, "
                f"got {x.shape}"
            )
        if self._pre_replay is not None:
            x = self._pre_replay(x)
        self._input_cell[0] = x
        if self.profile is not None:
            self.profile.runs += 1
        for step in self._fwd:
            step()
        for step in self._bwd:
            step()
        return self._loss_out

    def profile_summary(self) -> Optional[Dict[str, object]]:
        """Per-op timing plus arena byte counters.

        ``None`` unless the plan was compiled with ``profile=True``.
        """
        if self.profile is None:
            return None
        out = self.profile.summary()
        out["arena_bytes"] = self.stats.arena_bytes
        out["requested_bytes"] = self.stats.requested_bytes
        out["workspace_bytes"] = self.stats.workspace_bytes
        return out
