"""Photometric/geometric augmentations for source training.

UFLD's source training uses light augmentation (the CARLANE baseline does
the same); keeping some appearance variation in the source set also makes
the no-adaptation baseline realistic rather than brittle.  All transforms
are label-aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .encoding import flip_labels


@dataclass(frozen=True)
class AugmentConfig:
    """Augmentation strengths (all optional; defaults are mild)."""

    brightness: float = 0.1  # +- uniform gain delta
    contrast: float = 0.1  # +- uniform gamma delta
    noise_sigma: float = 0.01
    hflip_prob: float = 0.5
    channel_jitter: float = 0.05


def augment_batch(
    images: np.ndarray,
    labels: np.ndarray,
    num_cells: int,
    rng: np.random.Generator,
    config: Optional[AugmentConfig] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Augment a training batch in place-safe fashion.

    Parameters
    ----------
    images:
        ``(N, 3, H, W)`` float32 in [0, 1].
    labels:
        ``(N, anchors, lanes)`` int64 UFLD labels.
    num_cells:
        Needed to mirror labels on horizontal flip.

    Returns
    -------
    (images, labels):
        New arrays; inputs are not modified.
    """
    cfg = config if config is not None else AugmentConfig()
    images = images.copy()
    labels = labels.copy()
    n = images.shape[0]

    # horizontal flip (per sample)
    if cfg.hflip_prob > 0:
        flips = rng.random(n) < cfg.hflip_prob
        for i in np.nonzero(flips)[0]:
            images[i] = images[i, :, :, ::-1]
            labels[i] = flip_labels(labels[i], num_cells)

    # brightness gain
    if cfg.brightness > 0:
        gains = 1.0 + rng.uniform(-cfg.brightness, cfg.brightness, size=(n, 1, 1, 1))
        images *= gains.astype(np.float32)

    # contrast (gamma)
    if cfg.contrast > 0:
        gammas = 1.0 + rng.uniform(-cfg.contrast, cfg.contrast, size=n)
        for i in range(n):
            images[i] = np.power(np.clip(images[i], 0.0, 1.0), gammas[i])

    # per-channel gain jitter
    if cfg.channel_jitter > 0:
        jitter = 1.0 + rng.uniform(
            -cfg.channel_jitter, cfg.channel_jitter, size=(n, 3, 1, 1)
        )
        images *= jitter.astype(np.float32)

    # sensor noise
    if cfg.noise_sigma > 0:
        images += rng.normal(0.0, cfg.noise_sigma, size=images.shape).astype(
            np.float32
        )

    return np.clip(images, 0.0, 1.0), labels
