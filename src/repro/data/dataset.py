"""Datasets, loaders and the 30 FPS frame stream.

* :class:`LaneDataset` — an in-memory labeled set of rendered frames (the
  synthetic equivalent of a CARLANE split);
* :func:`generate_dataset` — sample N independent frames from a domain;
* :class:`DataLoader` — shuffled mini-batches for training;
* :class:`FrameStream` — a temporally coherent "drive": one scene evolving
  at 33.3 ms steps through a target domain, optionally drifting *between*
  domains (the MuLane multi-target condition).  This is what the online
  adaptation pipeline consumes frame by frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..models.ufld import UFLDConfig
from ..utils.rng import child_seed
from .camera import CameraModel, default_camera, row_anchor_rows
from .domains import DomainConfig, ScenarioConfig
from .encoding import encode_labels
from .geometry import LaneScene, evolve_scene, sample_scene
from .render import render_scene


@dataclass
class LaneSample:
    """One rendered, labeled frame."""

    image: np.ndarray  # (3, H, W) float32
    label: np.ndarray  # (anchors, lanes) int64, absent = num_cells
    gt_cells: np.ndarray  # (anchors, lanes) float64, NaN = absent
    domain: str
    timestamp: float = 0.0


class LaneDataset:
    """An in-memory dataset of rendered frames with UFLD labels."""

    def __init__(self, samples: Sequence[LaneSample], name: str = "dataset"):
        if not samples:
            raise ValueError("LaneDataset requires at least one sample")
        self.name = name
        self.samples = list(samples)
        self.images = np.stack([s.image for s in self.samples])
        self.labels = np.stack([s.label for s in self.samples])
        self.gt_cells = np.stack([s.gt_cells for s in self.samples])
        self.domains = [s.domain for s in self.samples]

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, idx: int) -> LaneSample:
        return self.samples[idx]

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "LaneDataset":
        return LaneDataset(
            [self.samples[i] for i in indices], name=name or f"{self.name}-subset"
        )

    def domain_counts(self) -> dict:
        counts: dict = {}
        for d in self.domains:
            counts[d] = counts.get(d, 0) + 1
        return counts


class DataLoader:
    """Mini-batch iterator over a :class:`LaneDataset`.

    Yields ``(images, labels)`` numpy batches; reshuffles each epoch when
    ``shuffle`` is set.  Drops no samples (last batch may be smaller).
    """

    def __init__(
        self,
        dataset: LaneDataset,
        batch_size: int,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]


def _render_labeled_frame(
    scene: LaneScene,
    domain: DomainConfig,
    config: UFLDConfig,
    rng: np.random.Generator,
    timestamp: float = 0.0,
) -> LaneSample:
    """Render a scene and produce its UFLD labels + metric ground truth."""
    h, _ = scene.camera.image_hw
    anchor_rows = row_anchor_rows(config.num_anchors, h, scene.camera.horizon_frac)
    boundary_cols = scene.boundary_cols_at_rows(anchor_rows)
    labels, gt = encode_labels(
        boundary_cols,
        image_w=scene.camera.image_hw[1],
        num_cells=config.num_cells,
        num_slots=config.num_lanes,
    )
    sample = domain.sample(rng)
    image = render_scene(scene, sample, rng)
    return LaneSample(
        image=image, label=labels, gt_cells=gt, domain=domain.name, timestamp=timestamp
    )


def _domain_camera(domain: DomainConfig, config: UFLDConfig) -> CameraModel:
    cam = default_camera(config.input_hw)
    return CameraModel(
        image_hw=cam.image_hw,
        focal_px=cam.focal_px,
        height_m=cam.height_m,
        horizon_frac=domain.horizon_frac,
        cx_frac=cam.cx_frac,
    )


def generate_dataset(
    domain: DomainConfig,
    config: UFLDConfig,
    num_frames: int,
    rng: np.random.Generator,
    scene_lanes: Optional[int] = None,
    name: Optional[str] = None,
) -> LaneDataset:
    """Sample ``num_frames`` independent frames from a domain.

    ``scene_lanes`` controls how many boundary curves the road actually
    has; labels always use ``config.num_lanes`` slots (extra slots stay
    absent), which is how 2-lane MoLane frames live inside the 4-slot
    MuLane label space.
    """
    lanes = scene_lanes if scene_lanes is not None else config.num_lanes
    camera = _domain_camera(domain, config)
    samples: List[LaneSample] = []
    for _ in range(num_frames):
        scene = sample_scene(
            rng,
            num_lanes=lanes,
            image_hw=config.input_hw,
            lane_width_m=domain.lane_width_m,
            curvature_scale=domain.curvature_scale,
            heading_scale=domain.heading_scale,
            camera=camera,
            missing_boundary_prob=domain.missing_boundary_prob,
        )
        samples.append(_render_labeled_frame(scene, domain, config, rng))
    return LaneDataset(samples, name=name or f"{domain.name}-{num_frames}")


class FrameStream:
    """A temporally coherent camera stream through one or more domains.

    Emulates the paper's deployment setting: a 30 FPS camera on a vehicle
    driving through the *target* domain, producing unlabeled frames the
    model must adapt to online.  Labels are attached for *evaluation only*
    — the adaptation algorithms never see them.

    For multi-target streams (MuLane), the stream switches domain every
    ``switch_every`` frames, modelling e.g. the transition between model-
    track and highway footage in the benchmark's mixed test set.
    """

    def __init__(
        self,
        domains: Sequence[DomainConfig],
        config: UFLDConfig,
        rng: np.random.Generator,
        fps: float = 30.0,
        scene_lanes_per_domain: Optional[Sequence[int]] = None,
        switch_every: int = 150,
    ):
        if not domains:
            raise ValueError("FrameStream needs at least one domain")
        self.domains = list(domains)
        self.config = config
        self.rng = rng
        self.fps = fps
        self.switch_every = switch_every
        if scene_lanes_per_domain is None:
            self.scene_lanes = [config.num_lanes] * len(self.domains)
        else:
            self.scene_lanes = list(scene_lanes_per_domain)
        self._frame_index = 0
        self._domain_index = 0
        self._scene: Optional[LaneScene] = None

    def _new_scene(self) -> LaneScene:
        domain = self.domains[self._domain_index]
        return sample_scene(
            self.rng,
            num_lanes=self.scene_lanes[self._domain_index],
            image_hw=self.config.input_hw,
            lane_width_m=domain.lane_width_m,
            curvature_scale=domain.curvature_scale,
            heading_scale=domain.heading_scale,
            camera=_domain_camera(domain, self.config),
            missing_boundary_prob=domain.missing_boundary_prob,
        )

    def __iter__(self) -> Iterator[LaneSample]:
        return self

    def __next__(self) -> LaneSample:
        if len(self.domains) > 1 and self._frame_index > 0 and (
            self._frame_index % self.switch_every == 0
        ):
            self._domain_index = (self._domain_index + 1) % len(self.domains)
            self._scene = None
        if self._scene is None:
            self._scene = self._new_scene()
        else:
            self._scene = evolve_scene(self._scene, self.rng)
        domain = self.domains[self._domain_index]
        timestamp = self._frame_index / self.fps
        sample = _render_labeled_frame(
            self._scene, domain, self.config, self.rng, timestamp=timestamp
        )
        self._frame_index += 1
        return sample

    def take(self, count: int) -> LaneDataset:
        """Materialize the next ``count`` frames as a dataset."""
        return LaneDataset(
            [next(self) for _ in range(count)], name="stream-window"
        )


class ScenarioStream:
    """A camera stream driven by a :class:`ScenarioConfig` shift schedule.

    Unlike :class:`FrameStream`'s fixed round-robin domain rotation, the
    effective domain is resolved per frame from the scenario's timed
    events (cuts, ramps, oscillations), shifted by the stream's
    deterministic phase offset.  The road scene is resampled only at cut
    events — gradual and periodic shifts relight the same road, which is
    what makes them *appearance* drifts rather than new drives.

    Seeding is namespaced via ``child_seed(seed, "scenario/<name>/<id>")``
    so a stream's frames depend only on ``(seed, scenario, stream_id)``,
    never on pool size or placement order.
    """

    def __init__(
        self,
        scenario: "ScenarioConfig",
        config: UFLDConfig,
        seed: int,
        stream_id: str = "s0",
        fps: float = 30.0,
        scene_lanes: Optional[int] = None,
        horizon: int = 10_000,
    ):
        if not isinstance(scenario, ScenarioConfig):
            raise TypeError(f"expected ScenarioConfig, got {type(scenario)!r}")
        self.scenario = scenario
        self.config = config
        self.stream_id = stream_id
        self.fps = fps
        self.scene_lanes = scene_lanes if scene_lanes is not None else config.num_lanes
        self.rng = np.random.default_rng(
            child_seed(seed, f"scenario/{scenario.name}/{stream_id}")
        )
        self.phase = scenario.phase_offset(seed, stream_id)
        self._resets = set(scenario.scene_reset_frames(self.phase, horizon))
        self._frame_index = 0
        self._scene: Optional[LaneScene] = None

    def _new_scene(self, domain: DomainConfig) -> LaneScene:
        return sample_scene(
            self.rng,
            num_lanes=self.scene_lanes,
            image_hw=self.config.input_hw,
            lane_width_m=domain.lane_width_m,
            curvature_scale=domain.curvature_scale,
            heading_scale=domain.heading_scale,
            camera=_domain_camera(domain, self.config),
            missing_boundary_prob=domain.missing_boundary_prob,
        )

    def __iter__(self) -> Iterator[LaneSample]:
        return self

    def __next__(self) -> LaneSample:
        domain = self.scenario.domain_at(self._frame_index, self.phase)
        if self._scene is None or self._frame_index in self._resets:
            self._scene = self._new_scene(domain)
        else:
            self._scene = evolve_scene(self._scene, self.rng)
        timestamp = self._frame_index / self.fps
        sample = _render_labeled_frame(
            self._scene, domain, self.config, self.rng, timestamp=timestamp
        )
        self._frame_index += 1
        return sample

    def take(self, count: int) -> LaneDataset:
        """Materialize the next ``count`` frames as a dataset."""
        return LaneDataset(
            [next(self) for _ in range(count)],
            name=f"{self.scenario.name}-{self.stream_id}",
        )
