"""CARLANE-style benchmark builders: MoLane, TuLane, MuLane.

Mirrors the structure of the CARLANE benchmark suite [Stuhr et al.,
NeurIPS 2022] the paper evaluates on (Fig. 1):

* **MoLane** — 2 lanes.  Source: CARLA simulation; target: real 1/8-scale
  *model vehicle* track.
* **TuLane** — 4 lanes.  Source: CARLA; target: *TuSimple* U.S. highway
  recordings.
* **MuLane** — 4-slot multi-target mix of both targets (balanced), with
  MoLane frames occupying the inner two slots.

Each benchmark provides a labeled source training set, an *unlabeled*
target training pool (labels retained only for post-hoc analysis), a
labeled target test set, and a factory for temporally coherent 30 FPS
target streams (for the real-time pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.ufld import UFLDConfig
from ..utils.rng import split_rng
from .dataset import FrameStream, LaneDataset, generate_dataset
from .domains import CARLA_SIM, MODEL_VEHICLE, TUSIMPLE_HIGHWAY, DomainConfig


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one benchmark."""

    name: str
    num_lanes: int  # label slots
    source_domain: DomainConfig
    target_domains: Tuple[DomainConfig, ...]
    # how many boundary curves the road has per target domain
    target_scene_lanes: Tuple[int, ...]
    source_scene_lanes: int

    @property
    def is_multi_target(self) -> bool:
        return len(self.target_domains) > 1


MOLANE = BenchmarkSpec(
    name="molane",
    num_lanes=2,
    source_domain=CARLA_SIM,
    target_domains=(MODEL_VEHICLE,),
    target_scene_lanes=(2,),
    source_scene_lanes=2,
)

TULANE = BenchmarkSpec(
    name="tulane",
    num_lanes=4,
    source_domain=CARLA_SIM,
    target_domains=(TUSIMPLE_HIGHWAY,),
    target_scene_lanes=(4,),
    source_scene_lanes=4,
)

MULANE = BenchmarkSpec(
    name="mulane",
    num_lanes=4,
    source_domain=CARLA_SIM,
    target_domains=(MODEL_VEHICLE, TUSIMPLE_HIGHWAY),
    target_scene_lanes=(2, 4),
    source_scene_lanes=4,
)

BENCHMARKS: Dict[str, BenchmarkSpec] = {
    b.name: b for b in (MOLANE, TULANE, MULANE)
}


def get_benchmark_spec(name: str) -> BenchmarkSpec:
    """Look up a benchmark by name ("molane", "tulane", "mulane")."""
    key = name.lower()
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}")
    return BENCHMARKS[key]


@dataclass
class Benchmark:
    """Materialized benchmark: datasets + stream factory."""

    spec: BenchmarkSpec
    config: UFLDConfig
    source_train: LaneDataset
    target_train: LaneDataset  # treat as UNLABELED for adaptation
    target_test: LaneDataset
    _stream_rng: np.random.Generator = field(repr=False, default=None)

    @property
    def name(self) -> str:
        return self.spec.name

    def target_stream(
        self,
        rng: Optional[np.random.Generator] = None,
        fps: float = 30.0,
        switch_every: int = 150,
    ) -> FrameStream:
        """A fresh temporally coherent target-domain stream."""
        gen = rng if rng is not None else self._stream_rng
        if gen is None:
            gen = np.random.default_rng()
        return FrameStream(
            domains=self.spec.target_domains,
            config=self.config,
            rng=gen,
            fps=fps,
            scene_lanes_per_domain=self.spec.target_scene_lanes,
            switch_every=switch_every,
        )


def _mixed_target_dataset(
    spec: BenchmarkSpec,
    config: UFLDConfig,
    num_frames: int,
    rng: np.random.Generator,
    name: str,
) -> LaneDataset:
    """Balanced mixture across the benchmark's target domains."""
    if num_frames < 1:
        raise ValueError("target splits need at least one frame")
    domains = spec.target_domains
    lanes = spec.target_scene_lanes
    per = [num_frames // len(domains)] * len(domains)
    per[0] += num_frames - sum(per)
    rngs = split_rng(rng, len(domains))
    samples = []
    for domain, n, scene_lanes, child in zip(domains, per, lanes, rngs):
        if n == 0:  # fewer frames than domains: skip empty splits
            continue
        ds = generate_dataset(
            domain, config, n, child, scene_lanes=scene_lanes
        )
        samples.extend(ds.samples)
    # interleave domains so evaluation batches are mixed
    order = rng.permutation(len(samples))
    return LaneDataset([samples[i] for i in order], name=name)


def make_benchmark(
    name: str,
    config: UFLDConfig,
    source_frames: int = 400,
    target_train_frames: int = 200,
    target_test_frames: int = 200,
    seed: int = 0,
) -> Benchmark:
    """Build a full benchmark instance.

    ``config.num_lanes`` is overridden to the benchmark's slot count so a
    single preset string works for all three benchmarks:

    >>> from repro.models import get_config
    >>> bench = make_benchmark("molane", get_config("tiny-r18"),
    ...                        source_frames=4, target_train_frames=2,
    ...                        target_test_frames=2, seed=1)
    >>> bench.config.num_lanes
    2
    """
    spec = get_benchmark_spec(name)
    config = config.with_lanes(spec.num_lanes)
    root = np.random.default_rng(seed)
    rng_source, rng_train, rng_test, rng_stream = split_rng(root, 4)

    source = generate_dataset(
        spec.source_domain,
        config,
        source_frames,
        rng_source,
        scene_lanes=spec.source_scene_lanes,
        name=f"{spec.name}-source",
    )
    target_train = _mixed_target_dataset(
        spec, config, target_train_frames, rng_train, f"{spec.name}-target-train"
    )
    target_test = _mixed_target_dataset(
        spec, config, target_test_frames, rng_test, f"{spec.name}-target-test"
    )
    return Benchmark(
        spec=spec,
        config=config,
        source_train=source,
        target_train=target_train,
        target_test=target_test,
        _stream_rng=rng_stream,
    )
