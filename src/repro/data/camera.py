"""Pinhole camera model for projecting ground-plane lanes into the image.

The synthetic CARLANE substitute generates lane geometry in *ground-plane*
coordinates (lateral offset X in meters, forward distance Z in meters) and
projects it through a forward-facing pinhole camera, which produces the
characteristic perspective convergence toward the vanishing point that the
real benchmarks exhibit.  Using a physical model (instead of drawing 2-D
curves directly) means camera pose changes — a *geometric* component of
domain shift — are expressible with one parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class CameraModel:
    """Forward-facing pinhole camera above a flat ground plane.

    Attributes
    ----------
    image_hw:
        Output image size (height, width) in pixels.
    focal_px:
        Focal length in pixels (same for x and y).
    height_m:
        Camera height above the ground plane in meters.
    horizon_frac:
        Vertical position of the horizon line as a fraction of image
        height (0 = top).  Encodes camera pitch.
    cx_frac:
        Horizontal principal point as a fraction of image width.
    """

    image_hw: Tuple[int, int] = (64, 160)
    focal_px: float = 100.0
    height_m: float = 1.5
    horizon_frac: float = 0.35
    cx_frac: float = 0.5

    @property
    def horizon_px(self) -> float:
        return self.horizon_frac * self.image_hw[0]

    @property
    def cx_px(self) -> float:
        return self.cx_frac * self.image_hw[1]

    def depth_for_rows(self, rows_px: np.ndarray) -> np.ndarray:
        """Ground-plane depth Z (meters) seen at the given image rows.

        Rows above (or at) the horizon map to ``inf``; callers treat those
        as "no ground visible".
        """
        rows = np.asarray(rows_px, dtype=np.float64)
        dy = rows - self.horizon_px
        with np.errstate(divide="ignore"):
            z = np.where(dy > 0.5, self.focal_px * self.height_m / dy, np.inf)
        return z

    def row_for_depth(self, z_m: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`depth_for_rows`."""
        z = np.asarray(z_m, dtype=np.float64)
        return self.horizon_px + self.focal_px * self.height_m / z

    def lateral_to_col(self, x_m: np.ndarray, z_m: np.ndarray) -> np.ndarray:
        """Project lateral ground offsets X at depths Z to image columns."""
        x = np.asarray(x_m, dtype=np.float64)
        z = np.asarray(z_m, dtype=np.float64)
        return self.cx_px + self.focal_px * x / z

    def col_to_lateral(self, cols_px: np.ndarray, z_m: np.ndarray) -> np.ndarray:
        """Back-project image columns at known depth to lateral offsets."""
        cols = np.asarray(cols_px, dtype=np.float64)
        z = np.asarray(z_m, dtype=np.float64)
        return (cols - self.cx_px) * z / self.focal_px


def default_camera(image_hw: Tuple[int, int]) -> CameraModel:
    """Reasonable camera intrinsics scaled to an image size.

    The focal length scales with width so the field of view (and thus lane
    appearance) is resolution-independent.
    """
    h, w = image_hw
    return CameraModel(
        image_hw=(h, w),
        focal_px=0.9 * w,
        height_m=1.5,
        horizon_frac=0.35,
        cx_frac=0.5,
    )


def row_anchor_rows(num_anchors: int, image_h: int, horizon_frac: float = 0.35) -> np.ndarray:
    """Pixel rows of the UFLD row anchors.

    Anchors are spaced evenly from just below the horizon to the bottom of
    the image — mirroring how TuSimple/CULane anchor rows cover the road
    region only.
    """
    if num_anchors < 2:
        raise ValueError("need at least 2 row anchors")
    top = (horizon_frac + 0.08) * image_h
    bottom = image_h - 1.0
    return np.linspace(top, bottom, num_anchors)
