"""Lane-scene geometry: ground-plane lane boundaries and their image traces.

A :class:`LaneScene` is a snapshot of the road ahead: several lane-boundary
curves on the ground plane, each of the clothoid-like form

    X(Z) = offset + heading * Z + 0.5 * curvature * Z**2

(the standard second-order road model used by lane-keeping systems), plus
the camera observing them.  Scenes know how to evaluate their boundaries at
arbitrary image rows, which provides both the rasterizer's input and the
ground-truth labels.

Scene *sequences* (for the 30 FPS online-adaptation stream) evolve the
curvature/heading/offset parameters with a bounded random walk, emulating
driving along a road; see :func:`evolve_scene`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from .camera import CameraModel, default_camera

# Standard lane width range (meters) — US highway ~3.7 m, model track narrower.
DEFAULT_LANE_WIDTH_M = 3.7


@dataclass(frozen=True)
class LaneBoundary:
    """One painted lane boundary on the ground plane."""

    offset_m: float  # lateral offset at Z=0 (vehicle position)
    heading: float  # lateral slope dX/dZ at Z=0
    curvature: float  # d2X/dZ2 (constant over the visible range)
    visible: bool = True  # False models a missing boundary (road edge, worn paint)

    def lateral_at(self, z_m: np.ndarray) -> np.ndarray:
        """Lateral position X (meters) at forward distances Z."""
        z = np.asarray(z_m, dtype=np.float64)
        return self.offset_m + self.heading * z + 0.5 * self.curvature * z * z


@dataclass(frozen=True)
class LaneScene:
    """A full road snapshot: ordered lane boundaries + camera.

    Boundaries are ordered left-to-right; ``boundaries[i]`` fills lane slot
    ``i`` of the UFLD label layout.  MoLane scenes carry 2 boundaries (the
    ego lane), TuLane/MuLane scenes carry 4 (ego + adjacent lanes).
    """

    boundaries: Tuple[LaneBoundary, ...]
    camera: CameraModel
    max_depth_m: float = 60.0
    min_depth_m: float = 3.0
    # drivable-surface margins beyond the outermost boundaries.  These are
    # randomized per scene so that the road/roadside edge carries no fixed
    # geometric relationship to the lane positions — otherwise models can
    # regress lanes from the (blur-resistant) road edge and sidestep the
    # marking-appearance domain shift entirely.
    left_margin_m: float = 2.2
    right_margin_m: float = 2.2

    @property
    def num_lanes(self) -> int:
        return len(self.boundaries)

    def boundary_cols_at_rows(self, rows_px: np.ndarray) -> np.ndarray:
        """Image columns of every boundary at the given rows.

        Returns ``(num_boundaries, num_rows)`` float64; ``nan`` marks rows
        where the boundary is not visible (above horizon, beyond the depth
        range, outside the image, or a non-visible boundary).
        """
        rows = np.asarray(rows_px, dtype=np.float64)
        z = self.camera.depth_for_rows(rows)
        in_range = np.isfinite(z) & (z >= self.min_depth_m) & (z <= self.max_depth_m)
        z_safe = np.where(in_range, z, 1.0)  # dummy depth outside range
        width = self.camera.image_hw[1]
        out = np.full((self.num_lanes, rows.size), np.nan)
        for i, boundary in enumerate(self.boundaries):
            if not boundary.visible:
                continue
            x = boundary.lateral_at(z_safe)
            cols = self.camera.lateral_to_col(x, z_safe)
            valid = in_range & (cols >= -0.5) & (cols <= width - 0.5)
            out[i, valid] = cols[valid]
        return out

    def road_edges_at_rows(self, rows_px: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Left/right extent of the drivable surface at each row (columns).

        Used by the rasterizer to paint road vs roadside.  The road spans
        half a lane width beyond the outermost boundaries.
        """
        rows = np.asarray(rows_px, dtype=np.float64)
        z = self.camera.depth_for_rows(rows)
        finite = np.isfinite(z)
        z_safe = np.where(finite, z, 1.0)
        left = self.boundaries[0].lateral_at(z_safe) - self.left_margin_m
        right = self.boundaries[-1].lateral_at(z_safe) + self.right_margin_m
        left_cols = self.camera.lateral_to_col(left, z_safe)
        right_cols = self.camera.lateral_to_col(right, z_safe)
        left_cols[~finite] = np.nan
        right_cols[~finite] = np.nan
        return left_cols, right_cols


def sample_scene(
    rng: np.random.Generator,
    num_lanes: int,
    image_hw: Tuple[int, int],
    lane_width_m: float = DEFAULT_LANE_WIDTH_M,
    curvature_scale: float = 0.004,
    heading_scale: float = 0.035,
    offset_jitter_m: float = 0.65,
    lane_width_jitter: float = 0.15,
    camera: Optional[CameraModel] = None,
    missing_boundary_prob: float = 0.0,
) -> LaneScene:
    """Draw a random plausible road scene.

    The ego vehicle sits roughly centred in its lane; all boundaries share
    one road curvature and heading (they are parallel curves), with small
    per-boundary offset jitter.

    Parameters
    ----------
    num_lanes:
        Number of boundary curves (2 → MoLane layout, 4 → TuLane layout).
    curvature_scale / heading_scale:
        Standard deviations of the road curvature (1/m) and heading.
    offset_jitter_m:
        Lateral jitter of the vehicle within its lane.  Large enough by
        default that lane positions vary substantially across frames —
        a positional prior alone cannot score well, so models must read
        the image (this is what makes the appearance domain shift bite).
    lane_width_jitter:
        Relative per-scene variation of the lane width.
    missing_boundary_prob:
        Probability that an *outer* boundary is absent (unpainted edge),
        exercising the "absent lane" class.
    """
    cam = camera if camera is not None else default_camera(image_hw)
    curvature = rng.normal(0.0, curvature_scale)
    heading = rng.normal(0.0, heading_scale)
    ego_offset = float(np.clip(rng.normal(0.0, offset_jitter_m), -1.4, 1.4))
    lane_width_m = lane_width_m * float(
        rng.uniform(1.0 - lane_width_jitter, 1.0 + lane_width_jitter)
    )

    # boundary offsets left→right, centred on the ego lane
    half = lane_width_m / 2.0
    if num_lanes == 2:
        offsets = [-half, half]
    elif num_lanes == 4:
        offsets = [-half - lane_width_m, -half, half, half + lane_width_m]
    else:
        # generic symmetric layout
        offsets = [
            (i - (num_lanes - 1) / 2.0) * lane_width_m for i in range(num_lanes)
        ]

    boundaries: List[LaneBoundary] = []
    for idx, off in enumerate(offsets):
        outer = idx in (0, len(offsets) - 1) and num_lanes > 2
        visible = True
        if outer and missing_boundary_prob > 0.0:
            visible = rng.random() >= missing_boundary_prob
        boundaries.append(
            LaneBoundary(
                offset_m=off - ego_offset + rng.normal(0.0, 0.03),
                heading=heading,
                curvature=curvature,
                visible=visible,
            )
        )
    return LaneScene(
        boundaries=tuple(boundaries),
        camera=cam,
        # independent random shoulders: the road edge is decorrelated from
        # the lane geometry (see LaneScene docstring)
        left_margin_m=float(rng.uniform(0.8, 6.0)),
        right_margin_m=float(rng.uniform(0.8, 6.0)),
    )


def evolve_scene(
    scene: LaneScene,
    rng: np.random.Generator,
    curvature_step: float = 3e-4,
    heading_step: float = 2e-3,
    offset_step: float = 0.03,
    curvature_limit: float = 0.008,
    heading_limit: float = 0.05,
) -> LaneScene:
    """One 33 ms step of "driving": smoothly perturb the road parameters.

    Curvature and heading follow a mean-reverting random walk (clipped),
    and the vehicle drifts slightly in its lane.  All boundaries move
    together, preserving lane parallelism.
    """
    first = scene.boundaries[0]
    d_curv = rng.normal(0.0, curvature_step) - 0.05 * first.curvature
    d_head = rng.normal(0.0, heading_step) - 0.05 * first.heading
    d_off = rng.normal(0.0, offset_step)
    new_curv = float(np.clip(first.curvature + d_curv, -curvature_limit, curvature_limit))
    new_head = float(np.clip(first.heading + d_head, -heading_limit, heading_limit))

    new_boundaries = tuple(
        replace(
            b,
            curvature=new_curv if b.visible else b.curvature,
            heading=new_head,
            offset_m=b.offset_m + d_off,
        )
        for b in scene.boundaries
    )
    return replace(scene, boundaries=new_boundaries)
