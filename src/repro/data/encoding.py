"""Row-anchor label encoding/decoding for UFLD.

UFLD labels a frame as an ``(anchors, lanes)`` integer grid: for each row
anchor and lane slot, the index of the horizontal cell the lane crosses, or
``num_cells`` for "absent".  This module converts between:

* boundary columns in pixels (from :class:`~repro.data.geometry.LaneScene`),
* continuous positions in *cell units* (used by the accuracy metric), and
* the quantized integer labels (used by the training loss).

Cell-unit convention: position ``p`` lies in cell ``round(p)``; cell ``i``
has its center at pixel ``(i + 0.5) * image_w / num_cells``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def cols_to_cell_units(cols_px: np.ndarray, image_w: int, num_cells: int) -> np.ndarray:
    """Pixel columns → continuous positions in cell units (NaN passes through)."""
    cell_w = image_w / num_cells
    return cols_px / cell_w - 0.5


def cell_units_to_cols(positions: np.ndarray, image_w: int, num_cells: int) -> np.ndarray:
    """Continuous cell-unit positions → pixel columns."""
    cell_w = image_w / num_cells
    return (positions + 0.5) * cell_w


def encode_labels(
    boundary_cols: np.ndarray,
    image_w: int,
    num_cells: int,
    num_slots: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize boundary columns into UFLD training labels.

    Parameters
    ----------
    boundary_cols:
        ``(num_boundaries, num_anchors)`` pixel columns with NaN for
        not-visible points (output of ``LaneScene.boundary_cols_at_rows``
        evaluated at the anchor rows).
    image_w:
        Image width in pixels.
    num_cells:
        Number of location cells (the absent class is ``num_cells``).
    num_slots:
        Number of lane slots in the label layout.  When the scene has
        fewer boundaries than slots (e.g. a 2-lane MoLane frame inside the
        4-slot MuLane label space), boundaries are centred among the slots
        and the outer slots stay absent.

    Returns
    -------
    (labels, gt_cells):
        ``labels`` — ``(num_anchors, num_slots)`` int64, values in
        ``[0, num_cells]``;
        ``gt_cells`` — ``(num_anchors, num_slots)`` float64 continuous
        cell-unit positions with NaN where absent (metric ground truth).
    """
    num_boundaries, num_anchors = boundary_cols.shape
    if num_boundaries > num_slots:
        raise ValueError(
            f"{num_boundaries} boundaries do not fit in {num_slots} lane slots"
        )
    offset = (num_slots - num_boundaries) // 2
    gt = np.full((num_anchors, num_slots), np.nan)
    gt[:, offset : offset + num_boundaries] = cols_to_cell_units(
        boundary_cols, image_w, num_cells
    ).T

    labels = np.full((num_anchors, num_slots), num_cells, dtype=np.int64)
    visible = ~np.isnan(gt)
    quantized = np.clip(np.round(gt[visible]), 0, num_cells - 1).astype(np.int64)
    labels[visible] = quantized
    # points that project outside the cell range are treated as absent
    outside = visible & ((gt < -0.5) | (gt > num_cells - 0.5))
    labels[outside] = num_cells
    gt[outside] = np.nan
    return labels, gt


def flip_labels(labels: np.ndarray, num_cells: int) -> np.ndarray:
    """Labels of the horizontally mirrored image.

    Lane slot order reverses (leftmost becomes rightmost) and present
    cells mirror around the image centre; absent stays absent.
    """
    flipped = labels[:, ::-1].copy()
    present = flipped < num_cells
    flipped[present] = num_cells - 1 - flipped[present]
    return flipped


def flip_gt(gt_cells: np.ndarray, num_cells: int) -> np.ndarray:
    """Continuous ground truth of the mirrored image (NaN preserved)."""
    flipped = gt_cells[:, ::-1].copy()
    return (num_cells - 1) - flipped
