"""``repro.data`` — the synthetic CARLANE substitute.

Procedural lane-scene generation (ground-plane geometry + pinhole camera +
layered rasterizer) with three appearance domains standing in for CARLA
simulation, the MoLane model-vehicle track, and TuSimple highways.  See
DESIGN.md section 2 for the substitution argument.
"""

from .augment import AugmentConfig, augment_batch
from .benchmarks import (
    BENCHMARKS,
    Benchmark,
    BenchmarkSpec,
    MOLANE,
    MULANE,
    TULANE,
    get_benchmark_spec,
    make_benchmark,
)
from .camera import CameraModel, default_camera, row_anchor_rows
from .dataset import DataLoader, FrameStream, LaneDataset, LaneSample, generate_dataset
from .domains import (
    CARLA_SIM,
    DOMAINS,
    MODEL_VEHICLE,
    TUSIMPLE_HIGHWAY,
    DomainConfig,
    DomainSample,
    get_domain,
)
from .encoding import (
    cell_units_to_cols,
    cols_to_cell_units,
    encode_labels,
    flip_gt,
    flip_labels,
)
from .geometry import LaneBoundary, LaneScene, evolve_scene, sample_scene
from .render import render_scene
from .visualize import ascii_frame, ascii_lanes, frame_report

__all__ = [
    "CameraModel",
    "default_camera",
    "row_anchor_rows",
    "LaneBoundary",
    "LaneScene",
    "sample_scene",
    "evolve_scene",
    "render_scene",
    "ascii_frame",
    "ascii_lanes",
    "frame_report",
    "DomainConfig",
    "DomainSample",
    "DOMAINS",
    "CARLA_SIM",
    "MODEL_VEHICLE",
    "TUSIMPLE_HIGHWAY",
    "get_domain",
    "encode_labels",
    "flip_labels",
    "flip_gt",
    "cols_to_cell_units",
    "cell_units_to_cols",
    "LaneSample",
    "LaneDataset",
    "DataLoader",
    "FrameStream",
    "generate_dataset",
    "AugmentConfig",
    "augment_batch",
    "Benchmark",
    "BenchmarkSpec",
    "BENCHMARKS",
    "MOLANE",
    "TULANE",
    "MULANE",
    "get_benchmark_spec",
    "make_benchmark",
]
