"""``repro.data`` — the synthetic CARLANE substitute.

Procedural lane-scene generation (ground-plane geometry + pinhole camera +
layered rasterizer) with three appearance domains standing in for CARLA
simulation, the MoLane model-vehicle track, and TuSimple highways.  See
DESIGN.md section 2 for the substitution argument.
"""

from .augment import AugmentConfig, augment_batch
from .benchmarks import (
    BENCHMARKS,
    Benchmark,
    BenchmarkSpec,
    MOLANE,
    MULANE,
    TULANE,
    get_benchmark_spec,
    make_benchmark,
)
from .camera import CameraModel, default_camera, row_anchor_rows
from .dataset import (
    DataLoader,
    FrameStream,
    LaneDataset,
    LaneSample,
    ScenarioStream,
    generate_dataset,
)
from .domains import (
    CARLA_SIM,
    DOMAINS,
    FOG_GLARE,
    FOG_HIGHWAY,
    GLARE_HIGHWAY,
    MODEL_VEHICLE,
    NIGHT_HIGHWAY,
    RAIN_HIGHWAY,
    SCENARIOS,
    SENSOR_DEGRADED,
    TUNNEL_SODIUM,
    TUSIMPLE_HIGHWAY,
    DomainConfig,
    DomainSample,
    ScenarioConfig,
    ShiftEvent,
    blend_domains,
    compose_domains,
    get_domain,
    get_scenario,
)
from .encoding import (
    cell_units_to_cols,
    cols_to_cell_units,
    encode_labels,
    flip_gt,
    flip_labels,
)
from .geometry import LaneBoundary, LaneScene, evolve_scene, sample_scene
from .render import render_scene
from .visualize import ascii_frame, ascii_lanes, frame_report

__all__ = [
    "CameraModel",
    "default_camera",
    "row_anchor_rows",
    "LaneBoundary",
    "LaneScene",
    "sample_scene",
    "evolve_scene",
    "render_scene",
    "ascii_frame",
    "ascii_lanes",
    "frame_report",
    "DomainConfig",
    "DomainSample",
    "DOMAINS",
    "CARLA_SIM",
    "MODEL_VEHICLE",
    "TUSIMPLE_HIGHWAY",
    "NIGHT_HIGHWAY",
    "RAIN_HIGHWAY",
    "FOG_HIGHWAY",
    "GLARE_HIGHWAY",
    "TUNNEL_SODIUM",
    "SENSOR_DEGRADED",
    "FOG_GLARE",
    "get_domain",
    "blend_domains",
    "compose_domains",
    "ShiftEvent",
    "ScenarioConfig",
    "SCENARIOS",
    "get_scenario",
    "ScenarioStream",
    "encode_labels",
    "flip_labels",
    "flip_gt",
    "cols_to_cell_units",
    "cell_units_to_cols",
    "LaneSample",
    "LaneDataset",
    "DataLoader",
    "FrameStream",
    "generate_dataset",
    "AugmentConfig",
    "augment_batch",
    "Benchmark",
    "BenchmarkSpec",
    "BENCHMARKS",
    "MOLANE",
    "TULANE",
    "MULANE",
    "get_benchmark_spec",
    "make_benchmark",
]
