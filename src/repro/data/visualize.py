"""Terminal-friendly visualization of frames and lane predictions.

Rendering lane detections as ASCII art makes the synthetic benchmark and
the model's behaviour inspectable anywhere (CI logs, SSH sessions) with no
imaging dependency.  Used by the examples and handy in tests when a
failure needs eyeballing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..models.ufld import UFLDConfig, cells_to_pixels
from .camera import row_anchor_rows

# dark -> bright luminance ramp
_RAMP = " .:-=+*#%@"


def ascii_frame(
    image: np.ndarray,
    width: int = 80,
    height: Optional[int] = None,
) -> str:
    """Render a (3, H, W) [0,1] image as ASCII luminance art."""
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got {image.shape}")
    luma = image.mean(axis=0)
    h, w = luma.shape
    out_h = height if height is not None else max(1, int(width * h / w * 0.5))
    rows_idx = np.linspace(0, h - 1, out_h).astype(int)
    cols_idx = np.linspace(0, w - 1, width).astype(int)
    sampled = luma[np.ix_(rows_idx, cols_idx)]
    levels = np.clip(sampled * (len(_RAMP) - 1), 0, len(_RAMP) - 1).astype(int)
    return "\n".join("".join(_RAMP[v] for v in row) for row in levels)


def ascii_lanes(
    config: UFLDConfig,
    positions_cells: np.ndarray,
    gt_cells: Optional[np.ndarray] = None,
    width: int = 80,
) -> str:
    """Render predicted (and optionally ground-truth) lane points.

    ``positions_cells`` is ``(anchors, lanes)`` in cell units with NaN for
    absent (the output of :func:`repro.models.decode_predictions` for one
    frame).  Predictions draw as digits (lane slot index); ground truth as
    ``|``; overlapping prediction+truth as ``*`` — so a well-adapted model
    shows mostly ``*``.
    """
    anchors, lanes = positions_cells.shape
    img_h, img_w = config.input_hw
    anchor_rows = row_anchor_rows(config.num_anchors, img_h)
    grid = [[" "] * width for _ in range(anchors)]

    def col_of(cell_pos: float) -> int:
        px = cells_to_pixels(np.array([cell_pos]), config, img_w)[0]
        return int(np.clip(px / img_w * (width - 1), 0, width - 1))

    if gt_cells is not None:
        for a in range(anchors):
            for l in range(lanes):
                if not np.isnan(gt_cells[a, l]):
                    grid[a][col_of(gt_cells[a, l])] = "|"
    for a in range(anchors):
        for l in range(lanes):
            if not np.isnan(positions_cells[a, l]):
                c = col_of(positions_cells[a, l])
                grid[a][c] = "*" if grid[a][c] == "|" else str(l % 10)
    lines = [
        f"y={anchor_rows[a]:5.1f} |" + "".join(grid[a]) + "|" for a in range(anchors)
    ]
    return "\n".join(lines)


def frame_report(
    image: np.ndarray,
    config: UFLDConfig,
    positions_cells: np.ndarray,
    gt_cells: Optional[np.ndarray] = None,
    width: int = 80,
) -> str:
    """Image + lane overlay, stacked — a one-call debugging view."""
    parts = [ascii_frame(image, width=width)]
    parts.append("-" * width)
    parts.append(ascii_lanes(config, positions_cells, gt_cells, width=width - 9))
    return "\n".join(parts)
