"""Rasterizer: turn a :class:`LaneScene` + :class:`DomainSample` into an image.

The renderer is fully vectorized numpy and deliberately simple — a layered
composition of sky, roadside, road surface, lane markings, clutter, glare,
vignette, color cast, photometric transfer and sensor noise.  It is *not*
photorealistic; it only needs to (a) contain lanes detectable from local
evidence, and (b) expose the appearance axes along which CARLANE's
sim-to-real shift lives, so that adapting BN statistics measurably helps.

Output: float32 CHW image in [0, 1].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .domains import DomainSample
from .geometry import LaneScene


def _vertical_gradient(h: int, w: int, top: float, bottom: float) -> np.ndarray:
    column = np.linspace(top, bottom, h, dtype=np.float64)
    return np.repeat(column[:, None], w, axis=1)


def _low_freq_noise(
    rng: np.random.Generator, h: int, w: int, strength: float, cell: int = 4
) -> np.ndarray:
    """Blocky low-frequency texture (cheap stand-in for asphalt grain)."""
    gh = max(1, -(-h // cell))  # ceil division so upsampling covers h x w
    gw = max(1, -(-w // cell))
    coarse = rng.normal(0.0, strength, size=(gh, gw))
    up = np.repeat(np.repeat(coarse, cell, axis=0), cell, axis=1)
    return up[:h, :w]


def _box_blur(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur with edge replication; ``radius`` in pixels."""
    if radius <= 0:
        return image
    size = 2 * radius + 1
    kernel = np.ones(size) / size
    padded = np.pad(image, ((radius, radius), (0, 0)), mode="edge")
    out = np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="valid"), 0, padded
    )
    padded = np.pad(out, ((0, 0), (radius, radius)), mode="edge")
    out = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), 1, padded
    )
    return out


def render_scene(
    scene: LaneScene,
    sample: DomainSample,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render one frame.

    Parameters
    ----------
    scene:
        Geometry (lane boundaries + camera).
    sample:
        One frame's appearance parameters (draw via ``DomainConfig.sample``).
    rng:
        Generator for texture/noise/clutter randomness.

    Returns
    -------
    np.ndarray
        ``(3, H, W)`` float32 image in [0, 1].
    """
    h, w = scene.camera.image_hw
    rows = np.arange(h, dtype=np.float64)
    cols = np.arange(w, dtype=np.float64)
    col_grid = np.broadcast_to(cols[None, :], (h, w))

    # ---- base layers: sky / roadside / road --------------------------
    luma = _vertical_gradient(h, w, sample.sky_top, sample.sky_bottom)
    horizon = scene.camera.horizon_px
    below = rows >= horizon

    left_edge, right_edge = scene.road_edges_at_rows(rows)
    left_b = np.where(np.isnan(left_edge), -1e9, left_edge)
    right_b = np.where(np.isnan(right_edge), 1e9, right_edge)
    ground_mask = below[:, None] & np.ones((1, w), dtype=bool)
    road_mask = ground_mask & (col_grid >= left_b[:, None]) & (
        col_grid <= right_b[:, None]
    )
    roadside_mask = ground_mask & ~road_mask

    luma = np.where(roadside_mask, sample.roadside_albedo, luma)
    luma = np.where(road_mask, sample.road_albedo, luma)

    # asphalt / floor texture on the ground region
    texture = _low_freq_noise(rng, h, w, sample.texture_strength)
    luma = luma + texture * ground_mask

    # ---- lane markings ------------------------------------------------
    boundary_cols = scene.boundary_cols_at_rows(rows)  # (L, H)
    depth = scene.camera.depth_for_rows(rows)  # (H,)
    finite_depth = np.where(np.isfinite(depth), depth, 1.0)
    # perspective-correct marking width in pixels at each row
    width_px = scene.camera.focal_px * sample.marking_width_m / finite_depth
    width_px = np.clip(width_px, 0.6, 8.0)

    marking_alpha = np.zeros((h, w))
    for lane_idx in range(boundary_cols.shape[0]):
        centers = boundary_cols[lane_idx]  # (H,)
        valid = ~np.isnan(centers)
        if not valid.any():
            continue
        centers_safe = np.where(valid, centers, -1e9)
        dist = np.abs(col_grid - centers_safe[:, None])
        half = (width_px / 2.0)[:, None]
        alpha = np.clip(half + 0.5 - dist, 0.0, 1.0)  # antialiased edge
        if sample.dash_period_m > 0.0:
            phase = np.mod(finite_depth, sample.dash_period_m)
            on = (phase < sample.dash_duty * sample.dash_period_m)[:, None]
            alpha = alpha * on
        alpha *= valid[:, None]
        marking_alpha = np.maximum(marking_alpha, alpha)

    visibility = (1.0 - sample.marking_wear) * sample.marking_brightness
    luma = luma * (1.0 - marking_alpha) + visibility * marking_alpha

    # ---- clutter: dark/bright boxes on or near the road ---------------
    for _ in range(sample.clutter_count):
        ch = int(rng.integers(max(2, h // 16), max(3, h // 6)))
        cw = int(rng.integers(max(2, w // 20), max(3, w // 7)))
        top = int(rng.integers(int(horizon), max(int(horizon) + 1, h - ch)))
        left = int(rng.integers(0, max(1, w - cw)))
        sign = -1.0 if rng.random() < 0.7 else 1.0  # mostly shadows/vehicles
        luma[top : top + ch, left : left + cw] += sign * sample.clutter_strength

    # ---- glare: bright blob near the horizon ---------------------------
    if sample.glare_strength > 0.0:
        gx = rng.uniform(0.2, 0.8) * w
        gy = horizon + rng.uniform(-0.05, 0.1) * h
        sigma = 0.18 * w
        yy = rows[:, None] - gy
        xx = cols[None, :] - gx
        blob = np.exp(-(xx * xx + yy * yy) / (2 * sigma * sigma))
        luma = luma + sample.glare_strength * blob

    # ---- optics & sensor ------------------------------------------------
    if sample.blur_radius > 0:
        luma = _box_blur(luma, sample.blur_radius)

    if sample.vignette > 0.0:
        cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
        ry = (rows[:, None] - cy) / (h / 2.0)
        rx = (cols[None, :] - cx) / (w / 2.0)
        falloff = 1.0 - sample.vignette * np.clip(rx * rx + ry * ry, 0.0, 1.5) / 1.5
        luma = luma * falloff

    luma = np.clip(luma * sample.illumination, 0.0, 1.0)
    luma = np.power(luma, sample.contrast_gamma)

    # atmospheric haze: affine blend toward a bright veil.  This is a pure
    # gain+offset transform of the image — the canonical first/second-
    # moment shift that BN-statistics adaptation corrects exactly.
    if sample.haze > 0.0:
        luma = (1.0 - sample.haze) * luma + sample.haze * 0.85

    image = luma[None, :, :] * np.asarray(sample.color_cast).reshape(3, 1, 1)
    image = image + rng.normal(0.0, sample.noise_sigma, size=image.shape)
    return np.clip(image, 0.0, 1.0).astype(np.float32)
