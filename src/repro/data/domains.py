"""Domain configurations: the synthetic stand-ins for CARLANE's domains.

CARLANE's domain gap is between *simulated* training imagery (CARLA) and
*real* target imagery (a 1/8-scale model vehicle for MoLane; TuSimple U.S.
highways for TuLane; both for MuLane).  The gap is dominated by low-level
appearance statistics — illumination, contrast, sensor noise, optics blur,
road texture, marking quality, color balance — precisely the statistics
that batch-norm adaptation corrects.

Each :class:`DomainConfig` describes a *distribution* over appearance (and
mild geometry) parameters; :meth:`DomainConfig.sample` draws one frame's
concrete :class:`DomainSample`.  Three canonical domains are provided:

* :data:`CARLA_SIM` — the labeled source domain: clean, crisp, noise-free;
* :data:`MODEL_VEHICLE` — MoLane's target: dark indoor track, tape
  markings, vignetting, warm cast;
* :data:`TUSIMPLE_HIGHWAY` — TuLane's target: bright hazy highway, worn
  paint, clutter and glare.

The shift *magnitudes* were tuned once so that a source-trained model
degrades substantially but not catastrophically on targets (mirroring
Fig. 2's no-adaptation bars) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

Range = Tuple[float, float]


def _draw(rng: np.random.Generator, bounds: Range) -> float:
    lo, hi = bounds
    if hi < lo:
        raise ValueError(f"invalid range {bounds}")
    return float(rng.uniform(lo, hi)) if hi > lo else float(lo)


@dataclass(frozen=True)
class DomainSample:
    """Concrete appearance parameters for one rendered frame."""

    road_albedo: float
    roadside_albedo: float
    sky_top: float
    sky_bottom: float
    marking_brightness: float
    marking_width_m: float
    marking_wear: float  # 0 = pristine paint, 1 = invisible
    dash_period_m: float  # 0 = solid lines
    dash_duty: float
    illumination: float
    contrast_gamma: float
    color_cast: Tuple[float, float, float]
    noise_sigma: float
    blur_radius: int
    vignette: float
    clutter_count: int
    clutter_strength: float
    glare_strength: float
    texture_strength: float
    haze: float  # atmospheric haze blend factor (affine contrast loss)


@dataclass(frozen=True)
class DomainConfig:
    """A named distribution over frame appearance + geometry tweaks."""

    name: str
    # appearance ranges
    road_albedo: Range = (0.32, 0.38)
    roadside_albedo: Range = (0.45, 0.55)
    sky_top: Range = (0.75, 0.85)
    sky_bottom: Range = (0.55, 0.65)
    marking_brightness: Range = (0.9, 1.0)
    marking_width_m: Range = (0.12, 0.18)
    marking_wear: Range = (0.0, 0.05)
    dash_period_m: Range = (0.0, 0.0)
    dash_duty: Range = (0.5, 0.5)
    illumination: Range = (0.95, 1.05)
    contrast_gamma: Range = (1.0, 1.0)
    color_cast_r: Range = (1.0, 1.0)
    color_cast_g: Range = (1.0, 1.0)
    color_cast_b: Range = (1.0, 1.0)
    noise_sigma: Range = (0.005, 0.012)
    blur_radius: Tuple[int, int] = (0, 0)
    vignette: Range = (0.0, 0.0)
    clutter_count: Tuple[int, int] = (0, 0)
    clutter_strength: Range = (0.0, 0.0)
    glare_strength: Range = (0.0, 0.0)
    texture_strength: Range = (0.01, 0.02)
    haze: Range = (0.0, 0.0)
    # geometry tweaks
    lane_width_m: float = 3.7
    curvature_scale: float = 0.003
    heading_scale: float = 0.015
    horizon_frac: float = 0.35
    missing_boundary_prob: float = 0.0

    def sample(self, rng: np.random.Generator) -> DomainSample:
        """Draw one frame's appearance parameters."""
        return DomainSample(
            road_albedo=_draw(rng, self.road_albedo),
            roadside_albedo=_draw(rng, self.roadside_albedo),
            sky_top=_draw(rng, self.sky_top),
            sky_bottom=_draw(rng, self.sky_bottom),
            marking_brightness=_draw(rng, self.marking_brightness),
            marking_width_m=_draw(rng, self.marking_width_m),
            marking_wear=_draw(rng, self.marking_wear),
            dash_period_m=_draw(rng, self.dash_period_m),
            dash_duty=_draw(rng, self.dash_duty),
            illumination=_draw(rng, self.illumination),
            contrast_gamma=_draw(rng, self.contrast_gamma),
            color_cast=(
                _draw(rng, self.color_cast_r),
                _draw(rng, self.color_cast_g),
                _draw(rng, self.color_cast_b),
            ),
            noise_sigma=_draw(rng, self.noise_sigma),
            blur_radius=int(rng.integers(self.blur_radius[0], self.blur_radius[1] + 1)),
            vignette=_draw(rng, self.vignette),
            clutter_count=int(
                rng.integers(self.clutter_count[0], self.clutter_count[1] + 1)
            ),
            clutter_strength=_draw(rng, self.clutter_strength),
            glare_strength=_draw(rng, self.glare_strength),
            texture_strength=_draw(rng, self.texture_strength),
            haze=_draw(rng, self.haze),
        )


# ----------------------------------------------------------------------
# canonical domains
# ----------------------------------------------------------------------
CARLA_SIM = DomainConfig(
    name="carla_sim",
    # clean simulator rendering: crisp markings, uniform road, no sensor noise
    road_albedo=(0.33, 0.37),
    roadside_albedo=(0.48, 0.52),
    marking_brightness=(0.92, 1.0),
    marking_wear=(0.0, 0.05),
    noise_sigma=(0.004, 0.01),
    blur_radius=(0, 0),
    texture_strength=(0.008, 0.015),
    lane_width_m=3.7,
)

MODEL_VEHICLE = DomainConfig(
    name="model_vehicle",
    # 1/8-scale indoor track: dim halogen lighting (strong global gain
    # drop), warm/blue-deficient color cast, elevated sensor noise, dark
    # floor with tape markings.  The shift is dominated by first/second-
    # moment statistics — exactly what BN-statistics adaptation corrects
    # (see the probe study in EXPERIMENTS.md).
    road_albedo=(0.18, 0.26),
    roadside_albedo=(0.30, 0.42),
    sky_top=(0.42, 0.55),
    sky_bottom=(0.32, 0.46),
    marking_brightness=(0.55, 0.75),
    marking_width_m=(0.14, 0.20),
    marking_wear=(0.05, 0.25),
    illumination=(0.25, 0.40),
    contrast_gamma=(0.95, 1.05),
    color_cast_r=(1.05, 1.15),
    color_cast_g=(0.90, 1.00),
    color_cast_b=(0.55, 0.75),
    noise_sigma=(0.05, 0.09),
    blur_radius=(0, 1),
    vignette=(0.05, 0.15),
    texture_strength=(0.02, 0.05),
    # geometry matches the source: CARLANE's residual camera-pitch/track
    # differences are dropped because geometric shift is orthogonal to the
    # BN-statistics mechanism under study (DESIGN.md section 2)
    lane_width_m=3.7,
    curvature_scale=0.005,
)

TUSIMPLE_HIGHWAY = DomainConfig(
    name="tusimple_highway",
    # over-exposed hazy U.S. highway: strong global gain increase, blue
    # cast, elevated noise, worn dashed paint, traffic clutter and glare.
    # Like the model-vehicle domain the dominant shift is statistical
    # (gain/cast/noise), with mild structured extras for realism.
    road_albedo=(0.44, 0.54),
    roadside_albedo=(0.52, 0.64),
    sky_top=(0.85, 0.95),
    sky_bottom=(0.75, 0.90),
    marking_brightness=(0.72, 0.85),
    marking_wear=(0.15, 0.35),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(1.00, 1.20),
    contrast_gamma=(0.90, 1.00),
    color_cast_r=(0.95, 1.05),
    color_cast_g=(0.95, 1.05),
    color_cast_b=(1.10, 1.30),
    noise_sigma=(0.05, 0.08),
    haze=(0.45, 0.65),
    blur_radius=(0, 1),
    clutter_count=(1, 4),
    clutter_strength=(0.10, 0.25),
    glare_strength=(0.00, 0.20),
    texture_strength=(0.02, 0.045),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

DOMAINS: Dict[str, DomainConfig] = {
    d.name: d for d in (CARLA_SIM, MODEL_VEHICLE, TUSIMPLE_HIGHWAY)
}


def get_domain(name: str) -> DomainConfig:
    """Look up a canonical domain by name."""
    if name not in DOMAINS:
        raise KeyError(f"unknown domain {name!r}; available: {sorted(DOMAINS)}")
    return DOMAINS[name]
