"""Domain configurations: the synthetic stand-ins for CARLANE's domains.

CARLANE's domain gap is between *simulated* training imagery (CARLA) and
*real* target imagery (a 1/8-scale model vehicle for MoLane; TuSimple U.S.
highways for TuLane; both for MuLane).  The gap is dominated by low-level
appearance statistics — illumination, contrast, sensor noise, optics blur,
road texture, marking quality, color balance — precisely the statistics
that batch-norm adaptation corrects.

Each :class:`DomainConfig` describes a *distribution* over appearance (and
mild geometry) parameters; :meth:`DomainConfig.sample` draws one frame's
concrete :class:`DomainSample`.  Three canonical domains are provided:

* :data:`CARLA_SIM` — the labeled source domain: clean, crisp, noise-free;
* :data:`MODEL_VEHICLE` — MoLane's target: dark indoor track, tape
  markings, vignetting, warm cast;
* :data:`TUSIMPLE_HIGHWAY` — TuLane's target: bright hazy highway, worn
  paint, clutter and glare.

The shift *magnitudes* were tuned once so that a source-trained model
degrades substantially but not catastrophically on targets (mirroring
Fig. 2's no-adaptation bars) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..utils.rng import child_seed

Range = Tuple[float, float]


def _draw(rng: np.random.Generator, bounds: Range) -> float:
    lo, hi = bounds
    if hi < lo:
        raise ValueError(f"invalid range {bounds}")
    return float(rng.uniform(lo, hi)) if hi > lo else float(lo)


@dataclass(frozen=True)
class DomainSample:
    """Concrete appearance parameters for one rendered frame."""

    road_albedo: float
    roadside_albedo: float
    sky_top: float
    sky_bottom: float
    marking_brightness: float
    marking_width_m: float
    marking_wear: float  # 0 = pristine paint, 1 = invisible
    dash_period_m: float  # 0 = solid lines
    dash_duty: float
    illumination: float
    contrast_gamma: float
    color_cast: Tuple[float, float, float]
    noise_sigma: float
    blur_radius: int
    vignette: float
    clutter_count: int
    clutter_strength: float
    glare_strength: float
    texture_strength: float
    haze: float  # atmospheric haze blend factor (affine contrast loss)


@dataclass(frozen=True)
class DomainConfig:
    """A named distribution over frame appearance + geometry tweaks."""

    name: str
    # appearance ranges
    road_albedo: Range = (0.32, 0.38)
    roadside_albedo: Range = (0.45, 0.55)
    sky_top: Range = (0.75, 0.85)
    sky_bottom: Range = (0.55, 0.65)
    marking_brightness: Range = (0.9, 1.0)
    marking_width_m: Range = (0.12, 0.18)
    marking_wear: Range = (0.0, 0.05)
    dash_period_m: Range = (0.0, 0.0)
    dash_duty: Range = (0.5, 0.5)
    illumination: Range = (0.95, 1.05)
    contrast_gamma: Range = (1.0, 1.0)
    color_cast_r: Range = (1.0, 1.0)
    color_cast_g: Range = (1.0, 1.0)
    color_cast_b: Range = (1.0, 1.0)
    noise_sigma: Range = (0.005, 0.012)
    blur_radius: Tuple[int, int] = (0, 0)
    vignette: Range = (0.0, 0.0)
    clutter_count: Tuple[int, int] = (0, 0)
    clutter_strength: Range = (0.0, 0.0)
    glare_strength: Range = (0.0, 0.0)
    texture_strength: Range = (0.01, 0.02)
    haze: Range = (0.0, 0.0)
    # geometry tweaks
    lane_width_m: float = 3.7
    curvature_scale: float = 0.003
    heading_scale: float = 0.015
    horizon_frac: float = 0.35
    missing_boundary_prob: float = 0.0

    def sample(self, rng: np.random.Generator) -> DomainSample:
        """Draw one frame's appearance parameters."""
        return DomainSample(
            road_albedo=_draw(rng, self.road_albedo),
            roadside_albedo=_draw(rng, self.roadside_albedo),
            sky_top=_draw(rng, self.sky_top),
            sky_bottom=_draw(rng, self.sky_bottom),
            marking_brightness=_draw(rng, self.marking_brightness),
            marking_width_m=_draw(rng, self.marking_width_m),
            marking_wear=_draw(rng, self.marking_wear),
            dash_period_m=_draw(rng, self.dash_period_m),
            dash_duty=_draw(rng, self.dash_duty),
            illumination=_draw(rng, self.illumination),
            contrast_gamma=_draw(rng, self.contrast_gamma),
            color_cast=(
                _draw(rng, self.color_cast_r),
                _draw(rng, self.color_cast_g),
                _draw(rng, self.color_cast_b),
            ),
            noise_sigma=_draw(rng, self.noise_sigma),
            blur_radius=int(rng.integers(self.blur_radius[0], self.blur_radius[1] + 1)),
            vignette=_draw(rng, self.vignette),
            clutter_count=int(
                rng.integers(self.clutter_count[0], self.clutter_count[1] + 1)
            ),
            clutter_strength=_draw(rng, self.clutter_strength),
            glare_strength=_draw(rng, self.glare_strength),
            texture_strength=_draw(rng, self.texture_strength),
            haze=_draw(rng, self.haze),
        )


# ----------------------------------------------------------------------
# canonical domains
# ----------------------------------------------------------------------
CARLA_SIM = DomainConfig(
    name="carla_sim",
    # clean simulator rendering: crisp markings, uniform road, no sensor noise
    road_albedo=(0.33, 0.37),
    roadside_albedo=(0.48, 0.52),
    marking_brightness=(0.92, 1.0),
    marking_wear=(0.0, 0.05),
    noise_sigma=(0.004, 0.01),
    blur_radius=(0, 0),
    texture_strength=(0.008, 0.015),
    lane_width_m=3.7,
)

MODEL_VEHICLE = DomainConfig(
    name="model_vehicle",
    # 1/8-scale indoor track: dim halogen lighting (strong global gain
    # drop), warm/blue-deficient color cast, elevated sensor noise, dark
    # floor with tape markings.  The shift is dominated by first/second-
    # moment statistics — exactly what BN-statistics adaptation corrects
    # (see the probe study in EXPERIMENTS.md).
    road_albedo=(0.18, 0.26),
    roadside_albedo=(0.30, 0.42),
    sky_top=(0.42, 0.55),
    sky_bottom=(0.32, 0.46),
    marking_brightness=(0.55, 0.75),
    marking_width_m=(0.14, 0.20),
    marking_wear=(0.05, 0.25),
    illumination=(0.25, 0.40),
    contrast_gamma=(0.95, 1.05),
    color_cast_r=(1.05, 1.15),
    color_cast_g=(0.90, 1.00),
    color_cast_b=(0.55, 0.75),
    noise_sigma=(0.05, 0.09),
    blur_radius=(0, 1),
    vignette=(0.05, 0.15),
    texture_strength=(0.02, 0.05),
    # geometry matches the source: CARLANE's residual camera-pitch/track
    # differences are dropped because geometric shift is orthogonal to the
    # BN-statistics mechanism under study (DESIGN.md section 2)
    lane_width_m=3.7,
    curvature_scale=0.005,
)

TUSIMPLE_HIGHWAY = DomainConfig(
    name="tusimple_highway",
    # over-exposed hazy U.S. highway: strong global gain increase, blue
    # cast, elevated noise, worn dashed paint, traffic clutter and glare.
    # Like the model-vehicle domain the dominant shift is statistical
    # (gain/cast/noise), with mild structured extras for realism.
    road_albedo=(0.44, 0.54),
    roadside_albedo=(0.52, 0.64),
    sky_top=(0.85, 0.95),
    sky_bottom=(0.75, 0.90),
    marking_brightness=(0.72, 0.85),
    marking_wear=(0.15, 0.35),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(1.00, 1.20),
    contrast_gamma=(0.90, 1.00),
    color_cast_r=(0.95, 1.05),
    color_cast_g=(0.95, 1.05),
    color_cast_b=(1.10, 1.30),
    noise_sigma=(0.05, 0.08),
    haze=(0.45, 0.65),
    blur_radius=(0, 1),
    clutter_count=(1, 4),
    clutter_strength=(0.10, 0.25),
    glare_strength=(0.00, 0.20),
    texture_strength=(0.02, 0.045),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

DOMAINS: Dict[str, DomainConfig] = {
    d.name: d for d in (CARLA_SIM, MODEL_VEHICLE, TUSIMPLE_HIGHWAY)
}


def get_domain(name: str) -> DomainConfig:
    """Look up a canonical domain by name."""
    if name not in DOMAINS:
        raise KeyError(f"unknown domain {name!r}; available: {sorted(DOMAINS)}")
    return DOMAINS[name]


# ----------------------------------------------------------------------
# domain algebra: blending and composition
# ----------------------------------------------------------------------
# Field groups used by blend/compose.  Kept explicit (rather than
# introspected) so a new DomainConfig field must be classified here
# before scenarios can silently ignore it.
_RANGE_FIELDS = (
    "road_albedo", "roadside_albedo", "sky_top", "sky_bottom",
    "marking_brightness", "marking_width_m", "marking_wear",
    "dash_period_m", "dash_duty", "illumination", "contrast_gamma",
    "color_cast_r", "color_cast_g", "color_cast_b", "noise_sigma",
    "vignette", "clutter_strength", "glare_strength",
    "texture_strength", "haze",
)
_INT_RANGE_FIELDS = ("blur_radius", "clutter_count")
_GEOMETRY_FIELDS = (
    "lane_width_m", "curvature_scale", "heading_scale", "horizon_frac",
    "missing_boundary_prob",
)

_DEFAULTS = DomainConfig(name="_defaults")


def blend_domains(
    a: DomainConfig, b: DomainConfig, t: float, name: Optional[str] = None
) -> DomainConfig:
    """Linearly interpolate two domains' parameter distributions.

    ``t=0`` reproduces ``a`` (up to the name), ``t=1`` reproduces ``b``;
    ranges interpolate endpoint-wise, integer ranges round to nearest.
    Used for gradual shifts (ramps / waves) in scenario schedules.
    """
    t = float(min(max(t, 0.0), 1.0))
    kwargs: Dict[str, object] = {}
    for f in _RANGE_FIELDS:
        (alo, ahi), (blo, bhi) = getattr(a, f), getattr(b, f)
        kwargs[f] = (alo + t * (blo - alo), ahi + t * (bhi - ahi))
    for f in _INT_RANGE_FIELDS:
        (alo, ahi), (blo, bhi) = getattr(a, f), getattr(b, f)
        kwargs[f] = (
            int(round(alo + t * (blo - alo))),
            int(round(ahi + t * (bhi - ahi))),
        )
    for f in _GEOMETRY_FIELDS:
        av, bv = getattr(a, f), getattr(b, f)
        kwargs[f] = av + t * (bv - av)
    return DomainConfig(
        name=name or f"{a.name}~{b.name}@{t:.2f}", **kwargs
    )


def compose_domains(
    base: DomainConfig, *overlays: DomainConfig, name: Optional[str] = None
) -> DomainConfig:
    """Stack degradations: overlay fields that differ from the
    :class:`DomainConfig` defaults override ``base`` (later overlays
    win).  This is how compound scenarios (fog + glare) are built from
    single-degradation domains without re-declaring every range.
    """
    kwargs: Dict[str, object] = {}
    fields = _RANGE_FIELDS + _INT_RANGE_FIELDS + _GEOMETRY_FIELDS
    for f in fields:
        kwargs[f] = getattr(base, f)
    for overlay in overlays:
        for f in fields:
            value = getattr(overlay, f)
            if value != getattr(_DEFAULTS, f):
                kwargs[f] = value
    composed_name = name or "+".join(
        [base.name] + [o.name for o in overlays]
    )
    return DomainConfig(name=composed_name, **kwargs)


# ----------------------------------------------------------------------
# degradation domains for the scenario matrix
# ----------------------------------------------------------------------
# All highway-based degradations keep TUSIMPLE_HIGHWAY's geometry so a
# mid-scenario shift changes *appearance statistics* (the mechanism BN
# adaptation corrects) without teleporting the road.

NIGHT_HIGHWAY = DomainConfig(
    name="night_highway",
    # unlit rural highway: strong gain drop, dark sky, headlight-only
    # marking visibility, elevated shot noise from sensor gain-up
    road_albedo=(0.20, 0.28),
    roadside_albedo=(0.22, 0.32),
    sky_top=(0.04, 0.10),
    sky_bottom=(0.06, 0.14),
    marking_brightness=(0.50, 0.70),
    marking_wear=(0.15, 0.35),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(0.20, 0.35),
    contrast_gamma=(1.10, 1.25),
    color_cast_b=(1.05, 1.20),
    noise_sigma=(0.08, 0.12),
    texture_strength=(0.015, 0.03),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

RAIN_HIGHWAY = DomainConfig(
    name="rain_highway",
    # wet road: darker specular asphalt, droplet blur, gray veil,
    # markings smeared by the water film
    road_albedo=(0.22, 0.30),
    roadside_albedo=(0.38, 0.48),
    sky_top=(0.60, 0.72),
    sky_bottom=(0.55, 0.68),
    marking_brightness=(0.60, 0.75),
    marking_wear=(0.25, 0.45),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(0.60, 0.78),
    noise_sigma=(0.06, 0.10),
    blur_radius=(1, 2),
    haze=(0.20, 0.35),
    texture_strength=(0.03, 0.06),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

FOG_HIGHWAY = DomainConfig(
    name="fog_highway",
    # dense fog: dominant haze veil (affine contrast collapse), mild
    # blur, washed-out sky — the archetypal first/second-moment shift
    road_albedo=(0.44, 0.54),
    roadside_albedo=(0.52, 0.64),
    sky_top=(0.82, 0.92),
    sky_bottom=(0.80, 0.90),
    marking_brightness=(0.70, 0.82),
    marking_wear=(0.15, 0.35),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(0.85, 1.00),
    noise_sigma=(0.04, 0.07),
    blur_radius=(1, 2),
    haze=(0.78, 0.90),
    texture_strength=(0.01, 0.02),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

GLARE_HIGHWAY = DomainConfig(
    name="glare_highway",
    # low sun into the lens: over-exposure, strong horizon bloom,
    # crushed contrast
    road_albedo=(0.48, 0.58),
    roadside_albedo=(0.55, 0.66),
    sky_top=(0.90, 0.98),
    sky_bottom=(0.85, 0.95),
    marking_brightness=(0.72, 0.85),
    marking_wear=(0.15, 0.35),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(1.25, 1.45),
    contrast_gamma=(0.80, 0.92),
    color_cast_r=(1.05, 1.15),
    noise_sigma=(0.03, 0.06),
    glare_strength=(0.55, 0.80),
    texture_strength=(0.02, 0.045),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

TUNNEL_SODIUM = DomainConfig(
    name="tunnel_sodium",
    # sodium-lit tunnel: heavy warm cast, strong vignetting from the
    # bore, low ambient light, no sky
    road_albedo=(0.30, 0.38),
    roadside_albedo=(0.25, 0.35),
    sky_top=(0.10, 0.18),
    sky_bottom=(0.12, 0.20),
    marking_brightness=(0.65, 0.80),
    marking_wear=(0.10, 0.25),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(0.35, 0.50),
    color_cast_r=(1.15, 1.30),
    color_cast_g=(0.95, 1.05),
    color_cast_b=(0.45, 0.60),
    noise_sigma=(0.05, 0.09),
    vignette=(0.35, 0.55),
    texture_strength=(0.015, 0.03),
    lane_width_m=3.7,
)

SENSOR_DEGRADED = DomainConfig(
    name="sensor_degraded",
    # failing camera: severe noise, defocus blur, channel imbalance —
    # appearance statistics drift without any scene change
    road_albedo=(0.44, 0.54),
    roadside_albedo=(0.52, 0.64),
    sky_top=(0.85, 0.95),
    sky_bottom=(0.75, 0.90),
    marking_brightness=(0.72, 0.85),
    marking_wear=(0.15, 0.35),
    dash_period_m=(8.0, 12.0),
    dash_duty=(0.4, 0.6),
    illumination=(0.80, 0.95),
    color_cast_g=(0.80, 0.92),
    noise_sigma=(0.14, 0.20),
    blur_radius=(2, 3),
    texture_strength=(0.02, 0.045),
    lane_width_m=3.7,
    missing_boundary_prob=0.15,
)

FOG_GLARE = compose_domains(
    FOG_HIGHWAY, GLARE_HIGHWAY, name="fog_glare"
)

for _d in (
    NIGHT_HIGHWAY, RAIN_HIGHWAY, FOG_HIGHWAY, GLARE_HIGHWAY,
    TUNNEL_SODIUM, SENSOR_DEGRADED, FOG_GLARE,
):
    DOMAINS[_d.name] = _d
del _d


# ----------------------------------------------------------------------
# scenario schedules
# ----------------------------------------------------------------------
_SHIFT_KINDS = ("cut", "ramp", "oscillate", "wave")


@dataclass(frozen=True)
class ShiftEvent:
    """One timed shift in a scenario schedule.

    * ``cut`` — abrupt switch to ``domain`` at ``at_frame``;
    * ``ramp`` — linear blend into ``domain`` over ``duration`` frames;
    * ``oscillate`` — square-wave alternation between the pre-event
      domain and ``domain`` with the given (even) ``period``;
    * ``wave`` — smooth triangle-wave oscillation, same period rules.
    """

    at_frame: int
    domain: str
    kind: str = "cut"
    duration: int = 0
    period: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _SHIFT_KINDS:
            raise ValueError(
                f"unknown shift kind {self.kind!r}; one of {_SHIFT_KINDS}"
            )
        if self.at_frame < 0:
            raise ValueError(f"at_frame must be >= 0, got {self.at_frame}")
        if self.kind == "ramp" and self.duration < 1:
            raise ValueError("ramp shifts need duration >= 1")
        if self.kind in ("oscillate", "wave") and (
            self.period < 2 or self.period % 2
        ):
            raise ValueError("periodic shifts need an even period >= 2")


@dataclass(frozen=True)
class ScenarioConfig:
    """A named, timed schedule of domain shifts over one stream.

    The schedule is resolved per frame by :meth:`domain_at`; a later
    event supersedes an earlier one (an oscillation runs until the next
    event's start).  ``phase_jitter_frames`` delays the whole schedule
    by a per-stream offset derived via :func:`repro.utils.rng.child_seed`
    from ``(seed, scenario, stream_id)`` only, so realizations are
    invariant to pool size and placement — exactly like arrival seeds.
    """

    name: str
    base: str
    events: Tuple[ShiftEvent, ...] = ()
    phase_jitter_frames: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        get_domain(self.base)
        last = -1
        for ev in self.events:
            if ev.at_frame <= last:
                raise ValueError(
                    f"scenario {self.name!r}: events must have strictly "
                    f"increasing at_frame"
                )
            last = ev.at_frame
            get_domain(ev.domain)
        if self.phase_jitter_frames < 0:
            raise ValueError("phase_jitter_frames must be >= 0")

    def phase_offset(self, seed: int, stream_id: str) -> int:
        """Deterministic per-stream schedule delay in frames."""
        if self.phase_jitter_frames <= 0:
            return 0
        word = child_seed(seed, f"scenario/{self.name}/{stream_id}/phase")
        return int(word % (self.phase_jitter_frames + 1))

    def domain_at(self, frame: int, phase: int = 0) -> DomainConfig:
        """Effective appearance domain at a stream-local frame index."""
        if frame < 0:
            raise ValueError(f"frame must be >= 0, got {frame}")
        current = get_domain(self.base)
        for ev in self.events:
            start = ev.at_frame + phase
            if frame < start:
                break
            target = get_domain(ev.domain)
            if ev.kind == "cut":
                current = target
            elif ev.kind == "ramp":
                span = frame - start
                if span >= ev.duration:
                    current = target
                else:
                    current = blend_domains(
                        current, target, (span + 1) / (ev.duration + 1)
                    )
            else:  # oscillate / wave around the pre-event domain
                anchor = current
                pos = (frame - start) % ev.period
                half = ev.period // 2
                if ev.kind == "oscillate":
                    current = target if pos < half else anchor
                else:
                    t = pos / half if pos <= half else (ev.period - pos) / half
                    current = blend_domains(anchor, target, t)
        return current

    def shift_frames(self, phase: int = 0, horizon: int = 0) -> List[int]:
        """Frames where a shift *lands* (for recovery-time measurement).

        Cuts land at their start, ramps at completion, oscillations at
        every square-wave edge, waves at every peak.
        """
        out: List[int] = []
        for i, ev in enumerate(self.events):
            start = ev.at_frame + phase
            end = horizon
            if i + 1 < len(self.events):
                end = min(end, self.events[i + 1].at_frame + phase)
            if ev.kind == "cut":
                if start < horizon:
                    out.append(start)
            elif ev.kind == "ramp":
                if start + ev.duration < end:
                    out.append(start + ev.duration)
            else:
                half = ev.period // 2
                first = start if ev.kind == "oscillate" else start + half
                step = half if ev.kind == "oscillate" else ev.period
                frame = first
                while frame < end:
                    out.append(frame)
                    frame += step
        return sorted(set(out))

    def scene_reset_frames(self, phase: int = 0, horizon: int = 0) -> List[int]:
        """Frames where the road *scene* is resampled (cut events only;
        gradual and periodic shifts relight the same road)."""
        return [
            ev.at_frame + phase
            for ev in self.events
            if ev.kind == "cut" and ev.at_frame + phase < horizon
        ]


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------
# Frame indices are designed for ~48-frame serving horizons (quick CI
# runs use 32); shifts land no earlier than frame 10 so a drift
# detector's warmup window sees the initial regime.

SCENARIOS: Dict[str, ScenarioConfig] = {
    s.name: s
    for s in (
        ScenarioConfig(
            name="steady_highway",
            base="tusimple_highway",
            description="stationary control: no scheduled shift; any "
            "drift alarm here is a false positive",
        ),
        # Abrupt events land at frame 18 (and 34), deliberately off the
        # common power-of-two stride grids: real shifts are asynchronous
        # to the adaptation cadence, and aligning them would let the
        # no-reset policy adapt at the shift frame by pure coincidence.
        ScenarioConfig(
            name="night_cut",
            base="tusimple_highway",
            events=(ShiftEvent(18, "night_highway"),),
            description="novel abrupt shift: day highway cuts to unlit "
            "night at frame 18",
        ),
        ScenarioConfig(
            name="dusk_ramp",
            base="tusimple_highway",
            events=(ShiftEvent(12, "night_highway", kind="ramp", duration=16),),
            description="gradual novel shift: 16-frame dusk fade into "
            "night; slower than the adaptation cadence, so no reset "
            "should be needed",
        ),
        ScenarioConfig(
            name="fog_bank",
            base="tusimple_highway",
            events=(
                ShiftEvent(18, "fog_highway"),
                ShiftEvent(34, "tusimple_highway"),
            ),
            description="transient degradation: drive into a fog bank "
            "at 18 and out at 34 (return shift should bank-warm-start)",
        ),
        ScenarioConfig(
            name="fog_glare",
            base="tusimple_highway",
            events=(ShiftEvent(18, "fog_glare"),),
            description="compound degradation: fog veil and low-sun "
            "bloom land together",
        ),
        ScenarioConfig(
            name="tunnel_strobe",
            base="tusimple_highway",
            events=(ShiftEvent(18, "tunnel_sodium", kind="oscillate", period=16),),
            description="recurring abrupt shift: tunnel entries/exits "
            "every 8 frames; the cluster bank should warm-start "
            "re-entries",
        ),
        ScenarioConfig(
            name="sensor_decay",
            base="tusimple_highway",
            events=(
                ShiftEvent(10, "sensor_degraded", kind="ramp", duration=20),
            ),
            description="slow sensor failure: noise/blur ramp over 20 "
            "frames",
        ),
        ScenarioConfig(
            name="rain_onset",
            base="tusimple_highway",
            events=(ShiftEvent(14, "rain_highway"),),
            phase_jitter_frames=6,
            description="abrupt rain with per-stream phase offsets: "
            "streams hit the squall up to 6 frames apart",
        ),
        ScenarioConfig(
            name="day_night_wave",
            base="tusimple_highway",
            events=(ShiftEvent(10, "night_highway", kind="wave", period=24),),
            description="smooth recurring oscillation between day and "
            "night lighting",
        ),
        ScenarioConfig(
            name="track_handover",
            base="tusimple_highway",
            events=(
                ShiftEvent(18, "model_vehicle"),
                ShiftEvent(34, "tusimple_highway"),
            ),
            description="cross-benchmark handover: highway to the "
            "1/8-scale indoor track and back",
        ),
    )
}


def get_scenario(name: str) -> ScenarioConfig:
    """Look up a named scenario."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name]
