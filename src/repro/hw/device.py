"""Jetson Orin device profiles (power modes) for the latency/energy model.

The paper measures LD-BN-ADAPT on an Nvidia Jetson AGX Orin across its
power modes (Fig. 3).  Without the physical board, we model each power
mode as a :class:`DeviceProfile`: peak FP32 throughput, DRAM bandwidth,
achievable efficiency fractions and per-kernel launch overhead.  The
numbers derive from Orin's public specifications (2048-core Ampere GPU,
up to 1.3 GHz, LPDDR5 at 204.8 GB/s) with per-mode clock scaling taken
from the nvpmodel tables, and the efficiency fractions calibrated once so
the *feasibility pattern* of Fig. 3 is reproduced:

* R-18 at 60 W meets the 33.3 ms (30 FPS) deadline;
* R-18 at 60 W / R-18 at 50 W / R-34 at 60 W meet 55.5 ms (18 FPS);
* every other (model, mode) pair misses both.

We claim fidelity of *orderings and feasibility*, not of absolute
milliseconds — see DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union


@dataclass(frozen=True)
class DeviceProfile:
    """One power mode of an edge device.

    Attributes
    ----------
    name:
        Human-readable mode name (e.g. ``"orin-60w"``).
    power_w:
        Mode power budget in watts (used for energy estimates).
    peak_flops:
        Peak FP32 throughput at this mode's GPU clock (FLOP/s).
    mem_bandwidth:
        Peak DRAM bandwidth at this mode's EMC clock (bytes/s).
    efficiency_infer:
        Fraction of peak achievable by inference kernels (im2col GEMMs
        reach 40-50 % of peak on Ampere for these layer sizes).
    efficiency_train:
        Fraction of peak achievable by training kernels (lower: smaller
        effective GEMMs in weight-gradient computation, more traffic).
    kernel_overhead_s:
        Fixed launch/framework overhead per layer invocation.
    cpu_cores:
        CPU cores available to the threaded kernel backend at this power
        mode (nvpmodel gates the Carmel/A78AE cluster per mode: 12 cores
        at 60/50 W, 8 at 30 W, 4 at 15 W).  The cgen backend sizes its
        worker pool from this when no explicit thread count is given.
    thread_efficiency:
        Parallelizable fraction of a kernel pass for Amdahl pricing
        (:func:`repro.hw.deadline.parallel_speedup`).  ~0.85 calibrated
        against the threaded cgen GEMM kernels: tile dispatch, the
        barrier per stage and the serial epilogues bound the speedup.
    """

    name: str
    power_w: float
    peak_flops: float
    mem_bandwidth: float
    efficiency_infer: float = 0.70
    efficiency_train: float = 0.60
    kernel_overhead_s: float = 20e-6
    cpu_cores: int = 12
    thread_efficiency: float = 0.85

    @property
    def effective_flops_infer(self) -> float:
        return self.peak_flops * self.efficiency_infer

    @property
    def effective_flops_train(self) -> float:
        return self.peak_flops * self.efficiency_train

    def scaled(
        self,
        clock_factor: float,
        bw_factor: float,
        name: str,
        power_w: float,
        cpu_cores: int = None,
    ) -> "DeviceProfile":
        """Derive a throttled profile from this one.

        ``cpu_cores`` overrides the core count (power modes gate CPU
        clusters, not just clocks); ``None`` inherits.
        """
        return DeviceProfile(
            name=name,
            power_w=power_w,
            peak_flops=self.peak_flops * clock_factor,
            mem_bandwidth=self.mem_bandwidth * bw_factor,
            efficiency_infer=self.efficiency_infer,
            efficiency_train=self.efficiency_train,
            kernel_overhead_s=self.kernel_overhead_s,
            cpu_cores=self.cpu_cores if cpu_cores is None else cpu_cores,
            thread_efficiency=self.thread_efficiency,
        )


# Orin AGX at MAXN: 2048 CUDA cores x 2 FLOP x 1.3 GHz = 5.325 TFLOPS FP32.
_ORIN_MAXN = DeviceProfile(
    name="orin-60w",
    power_w=60.0,
    peak_flops=2048 * 2 * 1.3e9,
    mem_bandwidth=204.8e9,
)

# Per-mode GPU clock scaling (approximate nvpmodel tables: 1.3 GHz MAXN,
# ~975 MHz @50W, ~624 MHz + reduced EMC @30W, ~420 MHz @15W).
ORIN_POWER_MODES: Dict[str, DeviceProfile] = {
    "orin-60w": _ORIN_MAXN,
    "orin-50w": _ORIN_MAXN.scaled(0.75, 1.00, "orin-50w", 50.0),
    "orin-30w": _ORIN_MAXN.scaled(0.42, 0.66, "orin-30w", 30.0, cpu_cores=8),
    "orin-15w": _ORIN_MAXN.scaled(0.22, 0.50, "orin-15w", 15.0, cpu_cores=4),
}

# Fig. 3's x-axis order (lowest to highest power)
POWER_MODE_ORDER: List[str] = ["orin-15w", "orin-30w", "orin-50w", "orin-60w"]


def get_power_mode(name: str) -> DeviceProfile:
    """Look up an Orin power-mode profile ("orin-15w" ... "orin-60w")."""
    key = name.lower()
    if key not in ORIN_POWER_MODES:
        raise KeyError(
            f"unknown power mode {name!r}; available: {sorted(ORIN_POWER_MODES)}"
        )
    return ORIN_POWER_MODES[key]


def build_device_pool(modes: Union[str, Sequence[str]]) -> List[DeviceProfile]:
    """Build a (possibly heterogeneous) device pool from power-mode names.

    ``modes`` is a comma-separated string or a sequence of entries, each
    ``"<mode>"`` or ``"<mode>:<count>"``::

        build_device_pool("orin-60w:2,orin-30w")
        # -> [orin-60w, orin-60w, orin-30w]

    The fleet's device-pool serving (``repro.serve``) prices every
    stream per device, so mixed power modes in one pool are first-class:
    the placement policies and the migration planner see each device's
    own roofline costs.
    """
    if isinstance(modes, str):
        entries = [entry.strip() for entry in modes.split(",")]
    else:
        entries = [str(entry).strip() for entry in modes]
    entries = [entry for entry in entries if entry]
    if not entries:
        raise ValueError("device pool needs at least one power-mode entry")
    pool: List[DeviceProfile] = []
    for entry in entries:
        name, _, count_str = entry.partition(":")
        count = 1
        if count_str:
            try:
                count = int(count_str)
            except ValueError:
                raise ValueError(
                    f"bad device-pool entry {entry!r}: count must be an integer"
                ) from None
        if count < 1:
            raise ValueError(f"bad device-pool entry {entry!r}: count must be >= 1")
        pool.extend([get_power_mode(name)] * count)
    return pool
