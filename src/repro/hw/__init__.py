"""``repro.hw`` — analytic Jetson Orin latency/energy model (Fig. 3 substrate)."""

from .deadline import (
    DEADLINE_18FPS_MS,
    DEADLINE_30FPS_MS,
    NAMED_DEADLINES,
    FeasibilityEntry,
    adaptation_budget_ms,
    deadline_slack_ms,
    feasibility_table,
    max_fps,
    meets_deadline,
)
from .device import (
    ORIN_POWER_MODES,
    POWER_MODE_ORDER,
    DeviceProfile,
    get_power_mode,
)
from .energy import (
    EnergyEstimate,
    OperatingPoint,
    design_space,
    frame_energy,
    select_operating_point,
)
from .roofline import (
    LatencyBreakdown,
    amortized_frame_latency,
    backward_latency,
    batched_inference_latency_ms,
    batching_speedup,
    forward_latency,
    ld_bn_adapt_latency,
    sota_epoch_latency,
    update_latency,
)

__all__ = [
    "DeviceProfile",
    "ORIN_POWER_MODES",
    "POWER_MODE_ORDER",
    "get_power_mode",
    "LatencyBreakdown",
    "forward_latency",
    "backward_latency",
    "update_latency",
    "ld_bn_adapt_latency",
    "amortized_frame_latency",
    "batched_inference_latency_ms",
    "batching_speedup",
    "sota_epoch_latency",
    "DEADLINE_30FPS_MS",
    "DEADLINE_18FPS_MS",
    "NAMED_DEADLINES",
    "meets_deadline",
    "deadline_slack_ms",
    "adaptation_budget_ms",
    "max_fps",
    "feasibility_table",
    "FeasibilityEntry",
    "EnergyEstimate",
    "frame_energy",
    "OperatingPoint",
    "design_space",
    "select_operating_point",
]
