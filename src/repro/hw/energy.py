"""Energy estimates and power-constrained mode selection.

Sec. IV's design-space discussion: "the best model can be selected based
on the power constraints and the type of task... if there is a strict
power constraint of 50 W then R-18 should be used; ... if a more robust
model is required ... then R-34 should be selected."  These helpers turn
the latency model into per-frame energy and into the (model, power mode)
selection rule behind that paragraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..models.spec import ModelSpec
from .deadline import meets_deadline
from .device import DeviceProfile
from .roofline import ld_bn_adapt_latency


@dataclass(frozen=True)
class EnergyEstimate:
    """Per-frame energy at one (model, device) operating point."""

    config: str
    latency_ms: float
    power_w: float

    @property
    def energy_mj(self) -> float:
        """Per-frame energy in millijoules (power x latency)."""
        return self.power_w * self.latency_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "latency_ms": self.latency_ms,
            "power_w": self.power_w,
            "energy_mj": self.energy_mj,
        }


def frame_energy(
    spec: ModelSpec, device: DeviceProfile, adapt_batch_size: int = 1
) -> EnergyEstimate:
    """Energy of one inference+adaptation frame at a device power mode."""
    breakdown = ld_bn_adapt_latency(spec, device, adapt_batch_size)
    return EnergyEstimate(
        config=f"{spec.name}@{device.name}",
        latency_ms=breakdown.total_ms,
        power_w=device.power_w,
    )


@dataclass(frozen=True)
class OperatingPoint:
    """One candidate in the multi-objective design space."""

    model_name: str
    device: DeviceProfile
    latency_ms: float
    energy_mj: float

    @property
    def config(self) -> str:
        return f"{self.model_name}@{self.device.name}"


def design_space(
    specs: Dict[str, ModelSpec],
    devices: Iterable[DeviceProfile],
    adapt_batch_size: int = 1,
) -> List[OperatingPoint]:
    """Enumerate all (model, power mode) operating points."""
    points = []
    for model_name, spec in sorted(specs.items()):
        for device in devices:
            breakdown = ld_bn_adapt_latency(spec, device, adapt_batch_size)
            points.append(
                OperatingPoint(
                    model_name=model_name,
                    device=device,
                    latency_ms=breakdown.total_ms,
                    energy_mj=device.power_w * breakdown.total_ms,
                )
            )
    return points


def select_operating_point(
    points: Iterable[OperatingPoint],
    deadline_ms: float,
    power_budget_w: Optional[float] = None,
    prefer: str = "energy",
) -> Optional[OperatingPoint]:
    """Pick the best feasible operating point.

    Filters to points meeting the deadline (and power budget when given),
    then minimizes energy (``prefer="energy"``) or latency
    (``prefer="latency"``).  Returns None when nothing is feasible —
    callers must handle that (e.g. relax the deadline, Sec. IV).
    """
    if prefer not in ("energy", "latency"):
        raise ValueError(f"unknown preference {prefer!r}")
    feasible = [
        p
        for p in points
        if meets_deadline(p.latency_ms, deadline_ms)
        and (power_budget_w is None or p.device.power_w <= power_budget_w)
    ]
    if not feasible:
        return None
    key = (lambda p: p.energy_mj) if prefer == "energy" else (lambda p: p.latency_ms)
    return min(feasible, key=key)
