"""Roofline latency model: layer specs x device profiles → milliseconds.

Each layer's time is ``max(compute time, memory time) + launch overhead``
(the classic roofline), summed over the model.  Backward passes cost ~2x
the forward compute (two GEMMs: input-gradient and weight-gradient) and
~2x the traffic.  An LD-BN-ADAPT step is one train-mode forward plus one
backward — although only gamma/beta are *updated*, their gradients flow
through every downstream layer, so the backward sweep is not cheaper than
a regular one; the savings are in optimizer/update work, which is
negligible (~0.02 % of parameters).

These functions reproduce Fig. 3 (per-power-mode latency of inference +
adaptation, batch size 1) and the Sec. II claim that one epoch of the
CARLANE-SOTA baseline takes over an hour on the Orin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..models.spec import ModelSpec
from .deadline import parallel_speedup
from .device import DeviceProfile

# backward ≈ 2x forward compute for GEMM layers (dX and dW products)
BACKWARD_COMPUTE_FACTOR = 2.0
# backward reads activations + gradients and writes gradients
BACKWARD_BYTES_FACTOR = 2.0


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-frame latency decomposition (milliseconds)."""

    inference_ms: float
    adapt_forward_ms: float
    adapt_backward_ms: float
    update_ms: float

    @property
    def adaptation_ms(self) -> float:
        return self.adapt_forward_ms + self.adapt_backward_ms + self.update_ms

    @property
    def total_ms(self) -> float:
        return self.inference_ms + self.adaptation_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "inference_ms": self.inference_ms,
            "adapt_forward_ms": self.adapt_forward_ms,
            "adapt_backward_ms": self.adapt_backward_ms,
            "update_ms": self.update_ms,
            "adaptation_ms": self.adaptation_ms,
            "total_ms": self.total_ms,
        }


def _pass_time(
    spec: ModelSpec,
    device: DeviceProfile,
    batch_size: int,
    compute_factor: float,
    bytes_factor: float,
    efficiency: float,
    threads: int = 1,
) -> float:
    """Roofline time (seconds) of one pass over the network.

    ``threads`` is the kernel-pool width of the serving backend: only
    the *compute* term is divided by the Amdahl speedup
    (:func:`~repro.hw.deadline.parallel_speedup`) — DRAM traffic rides a
    shared bus and does not scale, so memory-bound layers keep their
    cost and the model re-prices exactly what threading accelerates.
    ``threads=1`` is an exact no-op, keeping every archived single-
    thread latency stable.
    """
    total = 0.0
    eff_flops = device.peak_flops * efficiency
    speedup = parallel_speedup(device, threads) if threads > 1 else 1.0
    for layer in spec.layers:
        flops = layer.flops * batch_size * compute_factor
        data = layer.bytes_moved * batch_size * bytes_factor
        compute_t = flops / eff_flops / speedup
        memory_t = data / device.mem_bandwidth
        total += max(compute_t, memory_t) + device.kernel_overhead_s
    return total


def forward_latency(
    spec: ModelSpec, device: DeviceProfile, batch_size: int = 1,
    training: bool = False, threads: int = 1,
) -> float:
    """Forward-pass latency in seconds."""
    eff = device.efficiency_train if training else device.efficiency_infer
    return _pass_time(spec, device, batch_size, 1.0, 1.0, eff, threads=threads)


def backward_latency(
    spec: ModelSpec, device: DeviceProfile, batch_size: int = 1,
    threads: int = 1,
) -> float:
    """Backward-pass latency in seconds."""
    return _pass_time(
        spec,
        device,
        batch_size,
        BACKWARD_COMPUTE_FACTOR,
        BACKWARD_BYTES_FACTOR,
        device.efficiency_train,
        threads=threads,
    )


def update_latency(
    spec: ModelSpec, device: DeviceProfile, params_updated: int,
    threads: int = 1,
) -> float:
    """Optimizer-update latency (seconds) — reads grad, writes param.

    Pure DRAM traffic; ``threads`` is accepted for interface symmetry
    but memory time does not scale with the kernel-pool width.
    """
    bytes_touched = 3 * 4 * params_updated  # param + grad + momentum, fp32
    return bytes_touched / device.mem_bandwidth + device.kernel_overhead_s


def ld_bn_adapt_latency(
    spec: ModelSpec,
    device: DeviceProfile,
    batch_size: int = 1,
    threads: int = 1,
) -> LatencyBreakdown:
    """Per-frame latency of inference followed by one LD-BN-ADAPT step.

    Matches the paper's measurement protocol: each incoming frame is
    processed by (a) eval-mode inference, then (b) an adaptation step on a
    ``batch_size`` batch (Fig. 3 uses batch size 1, i.e. adaptation after
    every frame).
    """
    bn_params = spec.bn_params
    return LatencyBreakdown(
        inference_ms=1e3 * forward_latency(
            spec, device, 1, training=False, threads=threads),
        adapt_forward_ms=1e3 * forward_latency(
            spec, device, batch_size, training=True, threads=threads),
        adapt_backward_ms=1e3 * backward_latency(
            spec, device, batch_size, threads=threads),
        update_ms=1e3 * update_latency(spec, device, bn_params),
    )


def batched_inference_latency_ms(
    spec: ModelSpec, device: DeviceProfile, batch_size: int,
    threads: int = 1,
) -> float:
    """Latency (ms) of one eval-mode forward over a ``batch_size`` batch.

    This is the quantity the fleet-serving scheduler plans with: FLOP and
    DRAM terms scale linearly with the batch, but the per-layer kernel
    launch overhead is paid once per batch, so the *per-frame* cost
    ``batched_inference_latency_ms(b) / b`` strictly decreases with ``b``
    — the roofline-level case for cross-stream batching.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return 1e3 * forward_latency(
        spec, device, batch_size, training=False, threads=threads
    )


def batching_speedup(
    spec: ModelSpec, device: DeviceProfile, batch_size: int
) -> float:
    """Per-frame inference speedup of a ``batch_size`` batch vs. batch 1.

    ``b * latency(1) / latency(b)`` — how much faster one shared batched
    pass serves ``b`` concurrent streams than ``b`` serial passes.
    """
    serial = batch_size * batched_inference_latency_ms(spec, device, 1)
    return serial / batched_inference_latency_ms(spec, device, batch_size)


def amortized_frame_latency(
    spec: ModelSpec, device: DeviceProfile, adapt_batch_size: int
) -> float:
    """Mean per-frame latency (ms) when adapting every ``adapt_batch_size``
    frames: every frame pays inference; the adaptation step is shared."""
    breakdown = ld_bn_adapt_latency(spec, device, adapt_batch_size)
    return breakdown.inference_ms + breakdown.adaptation_ms / adapt_batch_size


def sota_epoch_latency(
    spec: ModelSpec,
    device: DeviceProfile,
    num_source: int,
    num_target: int,
    batch_size: int = 16,
    kmeans_clusters: int = 10,
    kmeans_iters: int = 20,
    embed_dim: int = 2048,
    io_overhead_s: float = 12e-3,
) -> Dict[str, float]:
    """Latency (seconds) of ONE epoch of the CARLANE-SOTA baseline.

    Components per epoch (Sec. II): an embedding pass over both domains,
    k-means on the embeddings, a pseudo-labeling pass over the target,
    and a full forward+backward training sweep over source + target.
    ``io_overhead_s`` models per-sample CPU preprocessing of the 1280x720
    frames (JPEG decode + resize + augmentation, ~12 ms on the Orin's CPU
    cluster), paid on every pass that touches images.
    """
    total_samples = num_source + num_target
    fwd = forward_latency(spec, device, batch_size, training=False) / batch_size
    fwd_train = forward_latency(spec, device, batch_size, training=True) / batch_size
    bwd = backward_latency(spec, device, batch_size) / batch_size

    embed_time = total_samples * (fwd + io_overhead_s)
    pseudo_time = num_target * (fwd + io_overhead_s)
    train_time = total_samples * (fwd_train + bwd + io_overhead_s)
    # k-means: iters x N x k x D MACs at training efficiency
    kmeans_flops = 2.0 * kmeans_iters * total_samples * kmeans_clusters * embed_dim
    kmeans_time = kmeans_flops / device.effective_flops_train

    total = embed_time + pseudo_time + train_time + kmeans_time
    return {
        "embedding_s": embed_time,
        "pseudo_label_s": pseudo_time,
        "training_s": train_time,
        "kmeans_s": kmeans_time,
        "total_s": total,
        "total_hours": total / 3600.0,
    }
