"""Real-time deadline definitions and feasibility checks.

Two deadlines from the paper (Sec. IV):

* **33.3 ms** — the 30 FPS camera rate ("tight real-time performance
  constraints of up to 30 FPS");
* **55.5 ms** — 18 FPS, "similar to Audi A8 sedan with level 3 autonomous
  driving system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .device import DeviceProfile

DEADLINE_30FPS_MS = 1000.0 / 30.0  # 33.33 ms
DEADLINE_18FPS_MS = 1000.0 / 18.0  # 55.56 ms

NAMED_DEADLINES: Dict[str, float] = {
    "30fps": DEADLINE_30FPS_MS,
    "18fps_audi_a8": DEADLINE_18FPS_MS,
}


def parallel_speedup(device: DeviceProfile, threads: int) -> float:
    """Amdahl speedup of a ``threads``-wide kernel pool on ``device``.

    ``1 / ((1 - p) + p / t)`` with ``p = device.thread_efficiency`` and
    ``t`` clamped to ``[1, device.cpu_cores]`` — asking for more threads
    than the power mode's gated CPU cluster has buys nothing, and the
    serial fraction (stage dispatch, barriers, epilogues) caps the gain.
    This is the factor the roofline model divides *compute* time by when
    pricing a threaded-backend device; memory time is shared-bus bound
    and does not scale.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    t = float(min(threads, max(1, device.cpu_cores)))
    p = device.thread_efficiency
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"thread_efficiency must be in [0, 1], got {p}")
    return 1.0 / ((1.0 - p) + p / t)


def meets_deadline(latency_ms: float, deadline_ms: float) -> bool:
    """True when a per-frame latency fits within the frame period."""
    if latency_ms < 0 or deadline_ms <= 0:
        raise ValueError("latencies and deadlines must be positive")
    return latency_ms <= deadline_ms


def deadline_slack_ms(latency_ms: float, deadline_ms: float) -> float:
    """Slack a frame finished with: ``deadline - latency`` (negative = miss).

    The quantity the fleet's admission controller watches — sustained low
    or negative slack means the device is hot and optional work (the
    adaptation step) should be shed.
    """
    if latency_ms < 0 or deadline_ms <= 0:
        raise ValueError("latencies and deadlines must be positive")
    return deadline_ms - latency_ms


def adaptation_budget_ms(
    batch_deadline_ms: float,
    inference_done_ms: float,
    headroom_ms: float = 0.0,
) -> float:
    """Time left for adaptation steps after a served batch's forward pass.

    ``batch_deadline_ms`` is the earliest absolute deadline in the batch
    and ``inference_done_ms`` the absolute clock at which the shared
    forward completes; whatever remains (minus a safety ``headroom_ms``)
    is the budget the admission controller may spend on adaptation
    without the roofline model predicting a new deadline miss.  May be
    negative — the batch is already doomed and no step should be granted.
    """
    if headroom_ms < 0:
        raise ValueError("headroom_ms must be non-negative")
    return batch_deadline_ms - inference_done_ms - headroom_ms


def stream_utilization(service_ms: float, period_ms: float) -> float:
    """Fraction of one device a stream occupies, per camera period.

    ``service_ms`` is the stream's roofline-estimated per-period service
    demand on a *specific* device (inference at batch 1 plus its share
    of the adaptation step) — heterogeneous pools price the same stream
    differently per power mode.  The device-pool placement policies sum
    these utilizations to compare device loads; a device whose total
    exceeds ~1.0 cannot keep up even with perfect batching.
    """
    if period_ms <= 0:
        raise ValueError(f"period_ms must be positive, got {period_ms}")
    if service_ms < 0:
        raise ValueError(f"service_ms must be >= 0, got {service_ms}")
    return service_ms / period_ms


@dataclass(frozen=True)
class FeasibilityEntry:
    """One (configuration, deadline) feasibility record."""

    config: str
    latency_ms: float
    deadline_name: str
    deadline_ms: float
    feasible: bool


def feasibility_table(
    latencies: Dict[str, float],
    deadlines: Dict[str, float] = None,
) -> List[FeasibilityEntry]:
    """Cross every configuration latency with every deadline.

    ``latencies`` maps configuration names (e.g. ``"r18@orin-60w"``) to
    per-frame milliseconds.  Returns a flat list of records, the data
    behind Fig. 3's deadline lines.
    """
    targets = deadlines if deadlines is not None else NAMED_DEADLINES
    table = []
    for config, latency in sorted(latencies.items()):
        for name, deadline in sorted(targets.items()):
            table.append(
                FeasibilityEntry(
                    config=config,
                    latency_ms=latency,
                    deadline_name=name,
                    deadline_ms=deadline,
                    feasible=meets_deadline(latency, deadline),
                )
            )
    return table


def max_fps(latency_ms: float) -> float:
    """Highest sustainable frame rate for a per-frame latency."""
    if latency_ms <= 0:
        raise ValueError("latency must be positive")
    return 1000.0 / latency_ms
