"""Result formatting: fixed-width tables, markdown and JSON dumps.

Every experiment harness returns structured rows; these helpers render
them the way the paper presents its results (and EXPERIMENTS.md records
them) without pulling in any plotting dependency.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render rows as a fixed-width text table.

    >>> print(format_table([{"a": 1.5, "b": "x"}], ["a", "b"]))
    a    | b
    -----+--
    1.50 | x
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), max((len(r[i]) for r in rendered), default=0))
        for i, c in enumerate(cols)
    ]
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    return f"{header}\n{rule}\n{body}"


def format_markdown_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render rows as a GitHub-markdown table (for EXPERIMENTS.md)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    lines = ["| " + " | ".join(cols) + " |", "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in cols) + " |")
    return "\n".join(lines)


def save_json(path: str, payload: object) -> None:
    """Write a JSON report, creating parent directories."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=_json_default)


def load_json(path: str) -> object:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def merge_json_section(path: str, section: str, payload: object) -> None:
    """Update one named section of a JSON artifact, keeping the others.

    Lets several harnesses share one result file (e.g. the batched-vs-
    serial sweep and the jittered-admission study both archive into
    ``serve_throughput.json``) without clobbering each other.  A legacy
    artifact that is not a dict of sections is replaced wholesale.
    """
    existing = {}
    if os.path.isfile(path):
        loaded = load_json(path)
        if isinstance(loaded, dict):
            existing = loaded
    existing[section] = payload
    save_json(path, existing)


def _json_default(obj):
    """Fallback serializer for numpy scalars and dataclass-likes."""
    import numpy as np

    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if hasattr(obj, "as_dict"):
        return obj.as_dict()
    if hasattr(obj, "__dict__"):
        return obj.__dict__
    raise TypeError(f"not JSON serializable: {type(obj)}")
