"""FIG3 — per-frame latency on Jetson Orin power modes.

Reproduces Fig. 3: the latency of *inference followed by LD-BN-ADAPT
(batch size 1)* for UFLD with ResNet-18 and ResNet-34 backbones at full
paper scale (288x800 input), across the Orin power modes 15/30/50/60 W,
against the 33.3 ms (30 FPS) and 55.5 ms (18 FPS / Audi A8 L3) deadlines.

This experiment is purely analytic (it consumes the roofline model in
:mod:`repro.hw`), so it runs at paper scale in microseconds.  The
feasibility *pattern* asserted in the test suite matches the paper's:

* only R-18 @ 60 W meets 30 FPS;
* exactly {R-18@60W, R-18@50W, R-34@60W} meet 18 FPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..hw.deadline import DEADLINE_18FPS_MS, DEADLINE_30FPS_MS
from ..hw.device import ORIN_POWER_MODES, POWER_MODE_ORDER
from ..hw.roofline import ld_bn_adapt_latency
from ..models.registry import get_config

PAPER_MODELS = {"r18": "paper-r18", "r34": "paper-r34"}

# Fig. 3 ground truth: which (backbone, mode) pairs meet which deadline
PAPER_FEASIBILITY: Dict[tuple, tuple] = {
    ("r18", "orin-60w"): (True, True),
    ("r18", "orin-50w"): (False, True),
    ("r18", "orin-30w"): (False, False),
    ("r18", "orin-15w"): (False, False),
    ("r34", "orin-60w"): (False, True),
    ("r34", "orin-50w"): (False, False),
    ("r34", "orin-30w"): (False, False),
    ("r34", "orin-15w"): (False, False),
}


@dataclass(frozen=True)
class Fig3Row:
    """One bar of Fig. 3 (a backbone at a power mode)."""

    backbone: str
    power_mode: str
    power_w: float
    inference_ms: float
    adaptation_ms: float
    total_ms: float
    meets_30fps: bool
    meets_18fps: bool
    paper_meets_30fps: bool
    paper_meets_18fps: bool

    @property
    def matches_paper(self) -> bool:
        return (self.meets_30fps, self.meets_18fps) == (
            self.paper_meets_30fps,
            self.paper_meets_18fps,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "backbone": self.backbone,
            "power_mode": self.power_mode,
            "power_w": self.power_w,
            "inference_ms": self.inference_ms,
            "adaptation_ms": self.adaptation_ms,
            "total_ms": self.total_ms,
            "meets_30fps": self.meets_30fps,
            "meets_18fps": self.meets_18fps,
            "matches_paper": self.matches_paper,
        }


@dataclass
class Fig3Result:
    rows: List[Fig3Row] = field(default_factory=list)

    def get(self, backbone: str, power_mode: str) -> Fig3Row:
        for row in self.rows:
            if row.backbone == backbone and row.power_mode == power_mode:
                return row
        raise KeyError((backbone, power_mode))

    @property
    def all_match_paper(self) -> bool:
        return all(row.matches_paper for row in self.rows)

    def summary_rows(self) -> List[Dict[str, object]]:
        return [row.as_dict() for row in self.rows]


def run_fig3(
    backbones: Sequence[str] = ("r18", "r34"),
    power_modes: Sequence[str] = tuple(POWER_MODE_ORDER),
    adapt_batch_size: int = 1,
) -> Fig3Result:
    """Evaluate the latency grid (analytic; paper-size models)."""
    result = Fig3Result()
    for backbone in backbones:
        spec = get_config(PAPER_MODELS[backbone]).to_spec(f"ufld-{backbone}")
        for mode in power_modes:
            device = ORIN_POWER_MODES[mode]
            breakdown = ld_bn_adapt_latency(spec, device, adapt_batch_size)
            paper30, paper18 = PAPER_FEASIBILITY.get((backbone, mode), (False, False))
            result.rows.append(
                Fig3Row(
                    backbone=backbone,
                    power_mode=mode,
                    power_w=device.power_w,
                    inference_ms=breakdown.inference_ms,
                    adaptation_ms=breakdown.adaptation_ms,
                    total_ms=breakdown.total_ms,
                    meets_30fps=breakdown.total_ms <= DEADLINE_30FPS_MS,
                    meets_18fps=breakdown.total_ms <= DEADLINE_18FPS_MS,
                    paper_meets_30fps=paper30,
                    paper_meets_18fps=paper18,
                )
            )
    return result
