"""Ablation experiments (Sec. III/IV claims beyond the two figures).

* :func:`run_param_census` — TXT2: BN parameters are a tiny fraction of
  the model (the "~1 %" lightweightness claim), per backbone and relative
  to both the full model and the backbone alone.
* :func:`run_variant_comparison` — ABL1: BN-based adaptation vs the
  conv/FC parameter-group variants the authors "also tested [and] found
  the BN-based approach to be the most effective".
* :func:`run_batch_size_ablation` — ABL2: accuracy and amortized latency
  across adaptation batch sizes 1/2/4 (Fig. 2's bs sweep + the latency
  side the paper mentions when discarding bs>1).
* :func:`run_stats_mode_ablation` — design-choice ablation called out in
  DESIGN.md: statistics "replace" (paper) vs EMA blending.
* :func:`run_sota_cost` — TXT3: CARLANE-SOTA epoch time on the Orin
  (> 1 h) vs one LD-BN-ADAPT step (tens of ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..adapt import (
    ConvAdapt,
    FCAdapt,
    LDBNAdapt,
    LDBNAdaptConfig,
    VariantConfig,
)
from ..data.benchmarks import make_benchmark
from ..hw.device import ORIN_POWER_MODES
from ..hw.roofline import amortized_frame_latency, ld_bn_adapt_latency, sota_epoch_latency
from ..metrics.lane_accuracy import evaluate_model
from ..models.flops import parameter_census
from ..models.registry import get_config
from ..models.spec import resnet_backbone_spec
from ..utils.rng import make_rng
from .config import CARLANE_SPLIT_SIZES, RunScale, get_run_scale
from .fig2_accuracy import train_source_model


# ----------------------------------------------------------------------
# TXT2: parameter census
# ----------------------------------------------------------------------
def run_param_census(
    presets: Sequence[str] = ("paper-r18", "paper-r34"),
) -> List[Dict[str, object]]:
    """BN / conv / FC parameter fractions for the paper-size models."""
    rows = []
    for preset in presets:
        config = get_config(preset)
        spec = config.to_spec(preset)
        census = parameter_census(spec)
        backbone_layers, _, _ = resnet_backbone_spec(
            config.depth, config.width_mult, config.input_hw
        )
        backbone_params = sum(l.params for l in backbone_layers)
        rows.append(
            {
                "preset": preset,
                "total_params": census.total,
                "bn_params": census.batchnorm,
                "bn_fraction_of_model": census.bn_fraction,
                "bn_fraction_of_backbone": census.batchnorm / backbone_params,
                "conv_fraction": census.conv_fraction,
                "linear_fraction": census.linear_fraction,
            }
        )
    return rows


# ----------------------------------------------------------------------
# ABL1: parameter-group variants
# ----------------------------------------------------------------------
@dataclass
class VariantResult:
    method: str
    accuracy_percent: float
    trainable_params: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "accuracy_percent": self.accuracy_percent,
            "trainable_params": self.trainable_params,
        }


def run_variant_comparison(
    scale: Optional[RunScale] = None,
    benchmark_name: str = "molane",
    backbone: str = "r18",
    variant_lr: float = 1e-4,
    batch_size: int = 4,
    passes: int = 4,
) -> List[VariantResult]:
    """BN vs conv vs FC adaptation on one benchmark (expected: BN wins).

    ``batch_size`` defaults to 4 rather than the paper's 1: at the scaled
    input resolution the deepest feature maps are ~1x3, so single-frame BN
    statistics are too noisy — a documented scale artifact (the paper's
    288x800 input gives 9x25 deep support).  All variants use the same
    batch size so the comparison stays fair.

    ``passes`` streams the unlabeled pool several times, capturing the
    *stability* dimension of the comparison: entropy descent on the large
    conv group peaks early and then drifts toward confident-but-wrong
    predictions, while the 2-orders-smaller BN group keeps improving and
    plateaus — this is why the paper finds "the BN-based approach to be
    the most effective".
    """
    scale = scale if scale is not None else get_run_scale()
    config = get_config(scale.preset(backbone))
    benchmark = make_benchmark(
        benchmark_name,
        config,
        source_frames=scale.source_frames,
        target_train_frames=scale.target_train_frames,
        target_test_frames=scale.target_test_frames,
        seed=scale.seed,
    )
    model = train_source_model(benchmark, backbone, scale)
    pristine = model.state_dict()
    results = []

    def run_with(adapter) -> float:
        for _ in range(passes):
            for i in range(len(benchmark.target_train)):
                adapter.observe_frame(benchmark.target_train.images[i])
        return evaluate_model(model, benchmark.target_test).accuracy_percent

    # no adaptation reference
    results.append(
        VariantResult(
            "no_adapt",
            evaluate_model(model, benchmark.target_test).accuracy_percent,
            0,
        )
    )

    adapter = LDBNAdapt(
        model,
        LDBNAdaptConfig(
            lr=scale.adapt_lr, batch_size=batch_size,
            stats_mode="ema", ema_momentum=0.2,
        ),
    )
    results.append(
        VariantResult(
            "ld_bn_adapt", run_with(adapter), adapter.trainable_parameter_count()
        )
    )

    model.load_state_dict(pristine)
    adapter = ConvAdapt(model, VariantConfig(lr=variant_lr, batch_size=batch_size))
    results.append(
        VariantResult(
            "conv_adapt", run_with(adapter), adapter.trainable_parameter_count()
        )
    )

    model.load_state_dict(pristine)
    adapter = FCAdapt(model, VariantConfig(lr=variant_lr, batch_size=batch_size))
    results.append(
        VariantResult(
            "fc_adapt", run_with(adapter), adapter.trainable_parameter_count()
        )
    )
    return results


# ----------------------------------------------------------------------
# ABL2: batch-size sensitivity (accuracy + latency)
# ----------------------------------------------------------------------
def run_batch_size_ablation(
    scale: Optional[RunScale] = None,
    benchmark_name: str = "molane",
    backbone: str = "r18",
    batch_sizes: Sequence[int] = (1, 2, 4),
    power_mode: str = "orin-60w",
) -> List[Dict[str, object]]:
    """Accuracy (executed) and amortized Orin latency (analytic) per bs."""
    scale = scale if scale is not None else get_run_scale()
    config = get_config(scale.preset(backbone))
    benchmark = make_benchmark(
        benchmark_name,
        config,
        source_frames=scale.source_frames,
        target_train_frames=scale.target_train_frames,
        target_test_frames=scale.target_test_frames,
        seed=scale.seed,
    )
    model = train_source_model(benchmark, backbone, scale)
    pristine = model.state_dict()
    no_adapt_acc = evaluate_model(model, benchmark.target_test).accuracy_percent

    paper_spec = get_config(f"paper-{backbone}").to_spec()
    device = ORIN_POWER_MODES[power_mode]

    rows = []
    for bs in batch_sizes:
        model.load_state_dict(pristine)
        adapter = LDBNAdapt(
            model,
            LDBNAdaptConfig(
                lr=scale.adapt_lr, batch_size=bs,
                stats_mode="ema", ema_momentum=0.2,
            ),
        )
        for i in range(len(benchmark.target_train)):
            adapter.observe_frame(benchmark.target_train.images[i])
        acc = evaluate_model(model, benchmark.target_test).accuracy_percent
        per_step = ld_bn_adapt_latency(paper_spec, device, bs)
        rows.append(
            {
                "batch_size": bs,
                "accuracy_percent": acc,
                "no_adapt_percent": no_adapt_acc,
                "adapt_steps": adapter.steps_taken,
                "step_latency_ms": per_step.total_ms,
                "amortized_frame_ms": amortized_frame_latency(paper_spec, device, bs),
            }
        )
    return rows


# ----------------------------------------------------------------------
# stats-mode ablation (replace vs EMA)
# ----------------------------------------------------------------------
def run_stats_mode_ablation(
    scale: Optional[RunScale] = None,
    benchmark_name: str = "molane",
    backbone: str = "r18",
    ema_momenta: Sequence[float] = (0.1, 0.3),
) -> List[Dict[str, object]]:
    """Paper's statistics replacement vs EMA blending."""
    scale = scale if scale is not None else get_run_scale()
    config = get_config(scale.preset(backbone))
    benchmark = make_benchmark(
        benchmark_name,
        config,
        source_frames=scale.source_frames,
        target_train_frames=scale.target_train_frames,
        target_test_frames=scale.target_test_frames,
        seed=scale.seed,
    )
    model = train_source_model(benchmark, backbone, scale)
    pristine = model.state_dict()

    configs = [("replace", None)] + [("ema", m) for m in ema_momenta]
    rows = []
    for mode, momentum in configs:
        model.load_state_dict(pristine)
        kwargs = {"lr": scale.adapt_lr, "batch_size": 1, "stats_mode": mode}
        if momentum is not None:
            kwargs["ema_momentum"] = momentum
        adapter = LDBNAdapt(model, LDBNAdaptConfig(**kwargs))
        for i in range(len(benchmark.target_train)):
            adapter.observe_frame(benchmark.target_train.images[i])
        acc = evaluate_model(model, benchmark.target_test).accuracy_percent
        label = mode if momentum is None else f"{mode}(m={momentum})"
        rows.append({"stats_mode": label, "accuracy_percent": acc})
    return rows


# ----------------------------------------------------------------------
# TXT3: SOTA cost asymmetry
# ----------------------------------------------------------------------
def run_sota_cost(power_mode: str = "orin-60w") -> List[Dict[str, object]]:
    """CARLANE-SOTA epoch time vs one LD-BN-ADAPT step, per benchmark."""
    device = ORIN_POWER_MODES[power_mode]
    spec = get_config("paper-r18").to_spec("ufld-r18")
    step = ld_bn_adapt_latency(spec, device, 1)
    rows = []
    for bench, (n_src, n_tgt) in sorted(CARLANE_SPLIT_SIZES.items()):
        epoch = sota_epoch_latency(spec, device, n_src, n_tgt)
        rows.append(
            {
                "benchmark": bench,
                "num_source": n_src,
                "num_target": n_tgt,
                "sota_epoch_hours": epoch["total_hours"],
                "ldbn_step_ms": step.total_ms,
                "epoch_vs_step_ratio": epoch["total_s"] * 1e3 / step.total_ms,
            }
        )
    return rows
