"""SERVE-ADMIT — jittered-arrival fleet: admission policies + device scaling.

The regime the tick-synchronous loop could not express: frames arrive
with per-stream phase offsets, transmission jitter and in-flight drops,
so the queue builds and drains stochastically and deadline-aware
scheduling actually earns its keep.  On that arrival process this
module hosts two studies on the simulated Jetson Orin:

* :func:`run_bench_serve` — adaptation admission policies: ``stride-k``
  (the legacy static stagger, load-blind) vs. ``slack``
  (:class:`repro.serve.admission.SlackAdmission`: steps granted from
  observed deadline slack and the roofline feasibility budget, shed
  when hot, caught up when idle, phase-packed when fusing helps).  The
  asserted claim is Pareto dominance: at equal deadline-miss rate,
  slack admission sustains at least the static fleet's adaptation
  throughput.  A final ``parity`` row re-runs the fleet with zero
  jitter/drops through both ingest modes and checks the async loop
  reproduces the synchronous loop's per-stream outputs exactly (the
  refactor guard — it runs at the configured pool size, so the sharded
  path is covered too).
* :func:`run_bench_devices` — device-pool scaling: for each pool size,
  grow the number of always-adapting streams until the fleet misses
  more than :data:`SCALING_MISS_BUDGET` of its deadlines; the largest
  fleet still under budget is the pool's *sustained* capacity.
  :func:`check_device_scaling` asserts the acceptance claim: at equal
  deadline-miss rate, a 2-device pool sustains >= 1.8x the adapting
  streams of one device.

* :func:`run_bench_recovery` — elastic-pool fault tolerance: the same
  jittered 2-device fleet served fault-free, fault-free with session
  checkpointing enabled (must be bitwise inert), and through a seeded
  mid-run crash + device join (run twice — the replay must be bitwise
  identical, every hosted session must recover, and the adapted-state
  frames lost must stay under the checkpoint interval per recovered
  stream).  :func:`check_recovery` asserts all three claims.

Everything is simulated (roofline service times, seeded arrivals), so
every row is exactly reproducible and safe to regression-gate.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..adapt import LDBNAdaptConfig
from ..data.benchmarks import make_benchmark
from ..hw.device import get_power_mode
from ..models.registry import get_config
from ..hw.deadline import DEADLINE_30FPS_MS
from ..serve import (
    AdmissionConfig,
    CheckpointConfig,
    FaultSchedule,
    FleetConfig,
    FleetServer,
    MigrationConfig,
)
from ..telemetry import SpanTracer
from ..utils.logging import Logger
from .config import RunScale, get_run_scale
from .fig2_accuracy import train_source_model

log = Logger("bench-serve")

#: arrival process of the study: ~1/3 period jitter, light drops, phases
#: spread across the period so cohorts never align
JITTER_MS = 10.0
PHASE_SPREAD_MS = 7.0
DROP_RATE = 0.05
STRIDES = (1, 2, 4, 8, 16)
MISS_RATE_TOLERANCE = 0.02

#: device-scaling study: pool sizes swept, the deadline-miss budget a
#: fleet must stay under to count as sustained, and the stream-count
#: scan ceiling
DEVICE_COUNTS = (1, 2, 4)
SCALING_MISS_BUDGET = 0.15
SCALING_MAX_STREAMS = 10
SCALING_FACTOR = 1.8  # 2 devices must sustain >= 1.8x the streams of 1

#: display order of the study's table, shared by the CLI and the
#: benchmark harness (the archived rows additionally carry every
#: _policy_row key)
COLUMNS = (
    "policy", "frames", "dropped", "miss_rate", "adapt_steps",
    "steps_per_tick", "adapting_streams", "grant_rate",
    "mean_queue_depth", "slack_p10_ms", "fleet_fps", "parity_ok",
)

#: display order of the device-scaling table
DEVICE_COLUMNS = (
    "devices", "streams", "frames", "miss_rate", "adapt_steps",
    "adapting_streams", "mean_queue_depth", "max_device_utilization",
    "fleet_fps", "sustained",
)


def _prepare(scale: RunScale):
    benchmark = make_benchmark(
        "mulane",
        get_config(scale.preset("r18")),
        source_frames=scale.source_frames,
        target_train_frames=2,
        target_test_frames=2,
        seed=scale.seed,
    )
    model = train_source_model(benchmark, "r18", scale)
    return benchmark, model


def _run_fleet(
    model,
    pristine,
    benchmark,
    scale: RunScale,
    num_streams: int,
    num_ticks: int,
    tracer: Optional[SpanTracer] = None,
    **config_kwargs,
):
    model.load_state_dict(pristine)
    server = FleetServer(
        model,
        FleetConfig(latency_model="orin", **config_kwargs),
        device=get_power_mode("orin-60w"),
        spec=get_config("paper-r18").to_spec(),
        tracer=tracer,
    )
    for i in range(num_streams):
        stream = (
            benchmark.target_stream(rng=np.random.default_rng(scale.seed + 700 + i))
            .take(num_ticks)
            .samples
        )
        server.add_stream(
            f"s{i}", iter(stream), adapter_config=LDBNAdaptConfig(lr=scale.adapt_lr)
        )
    return server.run(num_ticks)


def _policy_row(policy: str, report, num_ticks: int) -> Dict[str, object]:
    return {
        "policy": policy,
        "frames": report.total_frames,
        "dropped": report.total_dropped_frames,
        "miss_rate": report.deadline_miss_rate,
        "adapt_steps": report.adaptation_steps,
        "steps_per_tick": report.adaptation_steps / num_ticks,
        "adapting_streams": report.adapting_streams,
        "grant_rate": report.admission_grant_rate,
        "mean_queue_depth": report.mean_queue_depth,
        "slack_p10_ms": report.slack_percentile(10),
        "fleet_fps": report.frames_per_second,
        "mean_adapt_batch": report.mean_adapt_batch_size,
    }


def per_stream_outputs(report) -> List[tuple]:
    """Everything a fleet's frames record, flattened for exact parity
    comparisons — the one definition of "identical per-stream outputs"
    shared by the benchmark guard and the test suite."""
    return [
        (sid, f.latency_ms, f.accuracy, f.entropy, f.adapted, f.adapt_ms)
        for sid, stream_report in report.stream_reports.items()
        for f in stream_report.frames
    ]


def check_slack_dominates(rows: List[Dict[str, object]]) -> None:
    """Assert the acceptance claim over one set of policy rows.

    * every static row serving at-or-under the slack fleet's miss rate
      (plus tolerance) must not out-adapt it, and
    * at least one static row is Pareto-dominated outright: it adapts no
      more than the slack fleet yet misses strictly more deadlines —
      the non-vacuous half of "at equal miss rate, slack sustains >=
      the static fleet's adaptation".
    """
    slack = next(r for r in rows if r["policy"] == "slack")
    static = [r for r in rows if str(r["policy"]).startswith("stride")]
    for row in static:
        if row["miss_rate"] <= slack["miss_rate"] + MISS_RATE_TOLERANCE:
            assert slack["steps_per_tick"] >= row["steps_per_tick"], (slack, row)
            assert slack["adapting_streams"] >= row["adapting_streams"], (
                slack,
                row,
            )
    assert any(
        row["steps_per_tick"] <= slack["steps_per_tick"]
        and row["miss_rate"] > slack["miss_rate"] + MISS_RATE_TOLERANCE
        for row in static
    ), rows


def run_bench_serve(
    scale: Optional[RunScale] = None,
    num_streams: int = 4,
    num_ticks: int = 36,
    strides=STRIDES,
    devices: int = 1,
    placement: str = "least_loaded",
    backend: str = "numpy",
) -> List[Dict[str, object]]:
    """The jittered-arrival admission study; returns table-ready rows.

    ``devices``/``placement`` shard every fleet of the study across a
    homogeneous pool — including the async/sync parity guard, so the
    sharded coordinator is held to the same exactness bar.
    """
    scale = scale if scale is not None else get_run_scale()
    benchmark, model = _prepare(scale)
    pristine = model.state_dict()
    shard = dict(devices=devices, placement=placement, backend=backend)
    arrival = dict(
        jitter_ms=JITTER_MS,
        phase_spread_ms=PHASE_SPREAD_MS,
        drop_rate=DROP_RATE,
    )

    rows: List[Dict[str, object]] = []
    for stride in strides:
        log.info("bench-serve: static stride-%d fleet", stride)
        report = _run_fleet(
            model, pristine, benchmark, scale, num_streams, num_ticks,
            adapt_stride=stride, **arrival, **shard,
        )
        rows.append(_policy_row(f"stride-{stride}", report, num_ticks))
    log.info("bench-serve: slack-admission fleet")
    report = _run_fleet(
        model, pristine, benchmark, scale, num_streams, num_ticks,
        admission=AdmissionConfig(), **arrival, **shard,
    )
    rows.append(_policy_row("slack", report, num_ticks))

    # refactor guard: zero-jitter async ingest == the synchronous loop.
    # Exact parity needs a fleet the device keeps up with on average (a
    # cumulative backlog lets the async loop fold late cohorts into
    # draining batches, which is its point), hence 2 streams, stride 4.
    log.info("bench-serve: zero-jitter async-vs-sync parity check")
    outputs = [
        per_stream_outputs(
            _run_fleet(
                model, pristine, benchmark, scale, 2, num_ticks,
                adapt_stride=4, ingest=ingest, **shard,
            )
        )
        for ingest in ("async", "sync")
    ]
    for row in rows:
        row["parity_ok"] = outputs[0] == outputs[1]
    return rows


#: display order of the thread-pricing table
THREAD_PRICING_COLUMNS = (
    "policy", "frames", "miss_rate", "adapt_steps", "steps_per_tick",
    "adapting_streams", "grant_rate", "slack_p10_ms", "fleet_fps",
)


def run_bench_thread_pricing(
    scale: Optional[RunScale] = None,
    num_streams: int = 4,
    num_ticks: int = 24,
    threads: int = 2,
    backend: str = "numpy",
) -> List[Dict[str, object]]:
    """Thread-aware roofline re-pricing: does honesty buy adaptation?

    Serves the same jittered slack-admission fleet twice on one
    simulated Orin: once priced single-thread (``FleetConfig.threads``
    unset) and once with the ``threads``-wide kernel pool re-pricing the
    roofline's compute term (:func:`repro.hw.deadline.parallel_speedup`).
    The admission controller budgets steps from modeled slack, so a
    device the model *knows* is faster can grant strictly more
    adaptation at the same deadline-miss budget — that claim
    (:func:`check_thread_pricing`) is the gate.  Everything is simulated
    and seeded, so the rows are exactly reproducible.
    """
    scale = scale if scale is not None else get_run_scale()
    benchmark, model = _prepare(scale)
    pristine = model.state_dict()
    arrival = dict(
        jitter_ms=JITTER_MS,
        phase_spread_ms=PHASE_SPREAD_MS,
        drop_rate=DROP_RATE,
    )
    rows: List[Dict[str, object]] = []
    for label, nt in (("threads-1", None), (f"threads-{threads}", threads)):
        log.info("bench-serve: thread-pricing fleet (%s)", label)
        report = _run_fleet(
            model, pristine, benchmark, scale, num_streams, num_ticks,
            admission=AdmissionConfig(), threads=nt, backend=backend,
            **arrival,
        )
        rows.append(_policy_row(label, report, num_ticks))
    return rows


def check_thread_pricing(rows: List[Dict[str, object]]) -> None:
    """Assert the re-pricing claim over one thread-pricing row pair.

    The threaded-priced fleet must grant strictly more adaptation steps
    than the single-thread-priced one without buying them with missed
    deadlines (miss rate within tolerance of the single-thread fleet's).
    """
    single = next(r for r in rows if r["policy"] == "threads-1")
    threaded = next(r for r in rows if r["policy"] != "threads-1")
    assert threaded["adapt_steps"] > single["adapt_steps"], (
        "thread-aware pricing should admit strictly more adaptation "
        f"steps: {rows}"
    )
    assert (
        threaded["miss_rate"] <= single["miss_rate"] + MISS_RATE_TOLERANCE
    ), f"threaded pricing bought steps with deadline misses: {rows}"


#: traced serving may cost at most this fraction over untraced, on both
#: the simulated p95 (must in fact be identical — the clock never sees
#: the tracer) and the measured host wall time of the whole run
TRACE_OVERHEAD_BUDGET = 0.05

#: display order of the telemetry-overhead table
OVERHEAD_COLUMNS = (
    "mode", "frames", "spans", "p95_latency_ms", "fleet_fps",
    "host_wall_ms", "parity_ok",
)


def run_bench_overhead(
    scale: Optional[RunScale] = None,
    num_streams: int = 4,
    num_ticks: int = 24,
    devices: int = 2,
    placement: str = "least_loaded",
    backend: str = "numpy",
) -> List[Dict[str, object]]:
    """Telemetry-overhead study: the same jittered fleet traced vs not.

    Serves an identical 4-stream, 2-device fleet twice from a pristine
    model — once with :data:`~repro.telemetry.NULL_TRACER` (the default)
    and once with a live :class:`~repro.telemetry.SpanTracer` — and
    returns one row per mode.  Telemetry must be provably inert: the
    traced run's per-stream outputs are compared bitwise against the
    untraced run's (``parity_ok``), its simulated percentiles are the
    same numbers, and the measured host wall time carries the only real
    cost (gate-excluded by name: host timings are nondeterministic).
    """
    scale = scale if scale is not None else get_run_scale()
    benchmark, model = _prepare(scale)
    pristine = model.state_dict()
    arrival = dict(
        jitter_ms=JITTER_MS,
        phase_spread_ms=PHASE_SPREAD_MS,
        drop_rate=DROP_RATE,
    )

    rows: List[Dict[str, object]] = []
    outputs: Dict[str, List[tuple]] = {}
    for mode in ("untraced", "traced"):
        log.info("bench-serve: telemetry overhead, %s fleet", mode)
        tracer = SpanTracer() if mode == "traced" else None
        start = time.perf_counter()
        report = _run_fleet(
            model, pristine, benchmark, scale, num_streams, num_ticks,
            adapt_stride=1, devices=devices, placement=placement,
            backend=backend, tracer=tracer, **arrival,
        )
        wall_ms = 1e3 * (time.perf_counter() - start)
        outputs[mode] = per_stream_outputs(report)
        rows.append(
            {
                "mode": mode,
                "frames": report.total_frames,
                "spans": len(tracer) if tracer is not None else 0,
                "p95_latency_ms": report.p95_latency_ms,
                "fleet_fps": report.frames_per_second,
                "host_wall_ms": wall_ms,
            }
        )
    parity = outputs["traced"] == outputs["untraced"]
    for row in rows:
        row["parity_ok"] = parity
    return rows


def check_trace_overhead(rows: List[Dict[str, object]]) -> None:
    """Assert the telemetry acceptance claims over one overhead run."""
    by_mode = {str(r["mode"]): r for r in rows}
    untraced, traced = by_mode["untraced"], by_mode["traced"]
    assert traced["parity_ok"], (
        "tracing changed per-stream serving outputs"
    )
    assert traced["spans"] > 0, "traced run collected no telemetry"
    budget = 1.0 + TRACE_OVERHEAD_BUDGET
    assert traced["p95_latency_ms"] <= untraced["p95_latency_ms"] * budget, (
        traced,
        untraced,
    )


def _scaling_row(
    devices: int, streams: int, report, sustained: bool
) -> Dict[str, object]:
    return {
        "devices": devices,
        "streams": streams,
        "frames": report.total_frames,
        "miss_rate": report.deadline_miss_rate,
        "adapt_steps": report.adaptation_steps,
        "adapting_streams": report.adapting_streams,
        "mean_queue_depth": report.mean_queue_depth,
        "max_device_utilization": report.max_device_utilization,
        "fleet_fps": report.frames_per_second,
        "sustained": sustained,
    }


def run_bench_devices(
    scale: Optional[RunScale] = None,
    device_counts=DEVICE_COUNTS,
    num_ticks: int = 24,
    max_streams: int = SCALING_MAX_STREAMS,
    placement: str = "least_loaded",
    backend: str = "numpy",
) -> List[Dict[str, object]]:
    """The device-pool scaling study; returns table-ready rows.

    For each pool size, adds always-adapting jittered streams one at a
    time until the fleet's deadline-miss rate exceeds
    :data:`SCALING_MISS_BUDGET` (or ``max_streams`` is reached); every
    probed fleet becomes one row, flagged ``sustained`` when it stayed
    under budget with every stream adapting.
    """
    scale = scale if scale is not None else get_run_scale()
    benchmark, model = _prepare(scale)
    pristine = model.state_dict()
    arrival = dict(
        jitter_ms=JITTER_MS,
        phase_spread_ms=PHASE_SPREAD_MS,
        drop_rate=DROP_RATE,
    )
    rows: List[Dict[str, object]] = []
    for devices in device_counts:
        for streams in range(1, max_streams + 1):
            log.info(
                "bench-serve: %d-device pool, %d adapting streams",
                devices,
                streams,
            )
            report = _run_fleet(
                model, pristine, benchmark, scale, streams, num_ticks,
                adapt_stride=1, devices=devices, placement=placement,
                backend=backend, **arrival,
            )
            sustained = (
                report.deadline_miss_rate <= SCALING_MISS_BUDGET
                and report.adapting_streams == streams
            )
            rows.append(_scaling_row(devices, streams, report, sustained))
            if not sustained:
                break  # the pool saturated; larger fleets only miss more
    return rows


def scaling_archive(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Key scaling rows by configuration for the regression archive.

    The scan emits a data-dependent number of rows per pool size (it
    stops at saturation), so archiving the plain list would let the
    positional regression gate diff *different* (devices, streams)
    probes against each other whenever capacity shifts.  Keying each row
    by its configuration makes the gate compare like with like — probes
    that appear or disappear are simply skipped.
    """
    return {
        f"{row['devices']}dev_{row['streams']}streams": row for row in rows
    }


def sustained_streams(rows: List[Dict[str, object]]) -> Dict[int, int]:
    """Largest sustained fleet per pool size from scaling-study rows."""
    capacity: Dict[int, int] = {}
    for row in rows:
        devices = int(row["devices"])
        capacity.setdefault(devices, 0)
        if row["sustained"]:
            capacity[devices] = max(capacity[devices], int(row["streams"]))
    return capacity


def _censored_capacities(rows: List[Dict[str, object]]) -> Dict[int, bool]:
    """Pool sizes whose scan ended still sustained (capacity is only a
    lower bound: the stream scan hit its ceiling before saturating)."""
    last_sustained: Dict[int, bool] = {}
    last_streams: Dict[int, int] = {}
    for row in rows:
        devices = int(row["devices"])
        if int(row["streams"]) >= last_streams.get(devices, -1):
            last_streams[devices] = int(row["streams"])
            last_sustained[devices] = bool(row["sustained"])
    return last_sustained


def check_device_scaling(rows: List[Dict[str, object]]) -> None:
    """Assert the scaling acceptance claim over one set of study rows.

    At equal deadline-miss budget, a 2-device pool must sustain at least
    :data:`SCALING_FACTOR` (1.8x) the adapting streams of one device,
    and capacity must never shrink as the pool grows.  A scan that hit
    its stream ceiling still sustained measured only a *lower bound*,
    so the gate distinguishes "did not scale" from "ceiling too low to
    tell" instead of failing spuriously on censored capacity.
    """
    capacity = sustained_streams(rows)
    censored = _censored_capacities(rows)
    assert capacity.get(1, 0) >= 1, capacity
    assert not censored.get(1, False), (
        f"1-device scan never saturated (capacity right-censored at "
        f"{capacity.get(1)}): raise max_streams so the baseline capacity "
        f"is actually measured; capacities={capacity}"
    )
    assert 2 in capacity, capacity
    if capacity[2] < SCALING_FACTOR * capacity[1]:
        assert not censored.get(2, False), (
            f"2-device capacity right-censored at {capacity[2]} — the "
            f"scan ceiling is too low to verify the >= {SCALING_FACTOR}x "
            f"claim; raise max_streams; capacities={capacity}"
        )
        raise AssertionError(
            f"2-device pool sustains {capacity[2]} adapting streams "
            f"< {SCALING_FACTOR} x the 1-device {capacity[1]}: {capacity}"
        )
    ordered = sorted(capacity)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert capacity[larger] >= capacity[smaller], capacity


#: recovery study: checkpoint every N served frames, crash device 0 at
#: 45% of the horizon, join a 30 W device at 60%
RECOVERY_INTERVAL = 4
RECOVERY_CRASH_AT = 0.45
RECOVERY_JOIN_AT = 0.60

#: display order of the crash-recovery table
RECOVERY_COLUMNS = (
    "scenario", "frames", "miss_rate", "crashes", "recoveries",
    "device_joins", "frames_lost", "crash_dropped", "checkpoint_writes",
    "fleet_fps", "checkpoint_inert", "replay_ok", "loss_bounded",
)


def _recovery_row(scenario: str, report) -> Dict[str, object]:
    return {
        "scenario": scenario,
        "frames": report.total_frames,
        "miss_rate": report.deadline_miss_rate,
        "crashes": report.crashes,
        "recoveries": report.recoveries,
        "device_joins": report.device_joins,
        "frames_lost": report.total_frames_lost,
        "crash_dropped": report.total_crash_dropped_frames,
        "checkpoint_writes": report.checkpoint_writes,
        "fleet_fps": report.frames_per_second,
    }


def run_bench_recovery(
    scale: Optional[RunScale] = None,
    num_streams: int = 3,
    num_ticks: int = 24,
    backend: str = "numpy",
) -> List[Dict[str, object]]:
    """The crash-recovery study; returns table-ready rows.

    Serves the same jittered ``num_streams``-stream 2-device fleet four
    times from a pristine model:

    * ``baseline`` — fault-free, no checkpointing;
    * ``checkpointed`` — fault-free with the session checkpoint store
      on.  Captures copy state, so its per-stream outputs must be
      *bitwise* identical to the baseline (``checkpoint_inert``);
    * ``crash`` (x2) — a seeded :class:`FaultSchedule` kills device 0
      mid-run and joins an ``orin-30w`` device after; the second run
      replays the identical schedule and must reproduce the first
      bitwise (``replay_ok``).  Every session hosted by the dead device
      must recover, and the adapted-state frames lost must stay under
      ``RECOVERY_INTERVAL`` per recovered stream (``loss_bounded``).
    """
    scale = scale if scale is not None else get_run_scale()
    benchmark, model = _prepare(scale)
    pristine = model.state_dict()
    arrival = dict(
        jitter_ms=JITTER_MS,
        phase_spread_ms=PHASE_SPREAD_MS,
        drop_rate=DROP_RATE,
    )
    shard = dict(devices=2, backend=backend)
    horizon_ms = num_ticks * DEADLINE_30FPS_MS
    schedule = FaultSchedule.parse(
        f"crash@{RECOVERY_CRASH_AT * horizon_ms:g}:0,"
        f"join@{RECOVERY_JOIN_AT * horizon_ms:g}:orin-30w"
    )

    log.info("bench-serve: recovery baseline (no faults, no checkpoints)")
    baseline = _run_fleet(
        model, pristine, benchmark, scale, num_streams, num_ticks,
        adapt_stride=1, **arrival, **shard,
    )
    rows = [_recovery_row("baseline", baseline)]

    log.info("bench-serve: recovery inertness (checkpoints, no faults)")
    checkpointed = _run_fleet(
        model, pristine, benchmark, scale, num_streams, num_ticks,
        adapt_stride=1,
        checkpoint=CheckpointConfig(interval_frames=RECOVERY_INTERVAL),
        **arrival, **shard,
    )
    inert = per_stream_outputs(checkpointed) == per_stream_outputs(baseline)
    row = _recovery_row("checkpointed", checkpointed)
    row["checkpoint_inert"] = inert
    rows.append(row)

    crash_outputs = []
    for attempt in ("crash", "crash-replay"):
        log.info("bench-serve: seeded crash+join fleet (%s)", attempt)
        report = _run_fleet(
            model, pristine, benchmark, scale, num_streams, num_ticks,
            adapt_stride=1,
            checkpoint=CheckpointConfig(interval_frames=RECOVERY_INTERVAL),
            faults=schedule,
            migration=MigrationConfig(),
            **arrival, **shard,
        )
        crash_outputs.append(per_stream_outputs(report))
        row = _recovery_row(attempt, report)
        row["loss_bounded"] = (
            report.total_frames_lost
            <= RECOVERY_INTERVAL * max(report.recoveries, 1)
        )
        rows.append(row)
    replay_ok = crash_outputs[0] == crash_outputs[1]
    for row in rows[2:]:
        row["replay_ok"] = replay_ok
    return rows


def check_recovery(rows: List[Dict[str, object]]) -> None:
    """Assert the fault-tolerance acceptance claims over one study run."""
    by_scenario = {str(r["scenario"]): r for r in rows}
    checkpointed = by_scenario["checkpointed"]
    crash = by_scenario["crash"]
    assert checkpointed["checkpoint_inert"], (
        "checkpointing changed a fault-free fleet's per-stream outputs"
    )
    assert checkpointed["checkpoint_writes"] > 0, checkpointed
    assert crash["replay_ok"], (
        "identical FaultSchedule seed did not replay bitwise"
    )
    assert crash["crashes"] == 1 and crash["device_joins"] == 1, crash
    assert crash["recoveries"] >= 1, (
        "the crashed device hosted no recovered session"
    )
    assert crash["loss_bounded"], (
        f"frames lost {crash['frames_lost']} exceeded the checkpoint "
        f"interval x recovered streams bound"
    )
