"""SERVE-ADMIT — jittered-arrival fleet: slack admission vs. static stride.

The regime the tick-synchronous loop could not express: frames arrive
with per-stream phase offsets, transmission jitter and in-flight drops,
so the queue builds and drains stochastically and deadline-aware
scheduling actually earns its keep.  On that arrival process this
harness compares adaptation policies on the simulated Jetson Orin:

* ``stride-k`` — the legacy static policy: every stream adapts on every
  k-th frame, phases staggered at registration, load-blind;
* ``slack`` — :class:`repro.serve.admission.SlackAdmission`: steps
  granted from observed deadline slack and the roofline feasibility
  budget, shed when hot, caught up when idle, phase-packed when fusing
  helps.

Everything is simulated (roofline service times, seeded arrivals), so
every row is exactly reproducible and safe to regression-gate.  The
claim the benchmark asserts is Pareto dominance: some static-stride row
adapts *no more* than the slack fleet yet misses *more* deadlines —
i.e. at equal deadline-miss rate, slack admission sustains at least the
static fleet's adaptation throughput.  A final ``parity`` row re-runs
the fleet with zero jitter/drops through both ingest modes and checks
the async loop reproduces the synchronous loop's per-stream outputs
exactly (the refactor guard).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..adapt import LDBNAdaptConfig
from ..data.benchmarks import make_benchmark
from ..hw.device import get_power_mode
from ..models.registry import get_config
from ..serve import AdmissionConfig, FleetConfig, FleetServer
from ..utils.logging import Logger
from .config import RunScale, get_run_scale
from .fig2_accuracy import train_source_model

log = Logger("bench-serve")

#: arrival process of the study: ~1/3 period jitter, light drops, phases
#: spread across the period so cohorts never align
JITTER_MS = 10.0
PHASE_SPREAD_MS = 7.0
DROP_RATE = 0.05
STRIDES = (1, 2, 4, 8, 16)
MISS_RATE_TOLERANCE = 0.02

#: display order of the study's table, shared by the CLI and the
#: benchmark harness (the archived rows additionally carry every
#: _policy_row key)
COLUMNS = (
    "policy", "frames", "dropped", "miss_rate", "adapt_steps",
    "steps_per_tick", "adapting_streams", "grant_rate",
    "mean_queue_depth", "slack_p10_ms", "fleet_fps", "parity_ok",
)


def _prepare(scale: RunScale):
    benchmark = make_benchmark(
        "mulane",
        get_config(scale.preset("r18")),
        source_frames=scale.source_frames,
        target_train_frames=2,
        target_test_frames=2,
        seed=scale.seed,
    )
    model = train_source_model(benchmark, "r18", scale)
    return benchmark, model


def _run_fleet(
    model,
    pristine,
    benchmark,
    scale: RunScale,
    num_streams: int,
    num_ticks: int,
    **config_kwargs,
):
    model.load_state_dict(pristine)
    server = FleetServer(
        model,
        FleetConfig(latency_model="orin", **config_kwargs),
        device=get_power_mode("orin-60w"),
        spec=get_config("paper-r18").to_spec(),
    )
    for i in range(num_streams):
        stream = (
            benchmark.target_stream(rng=np.random.default_rng(scale.seed + 700 + i))
            .take(num_ticks)
            .samples
        )
        server.add_stream(
            f"s{i}", iter(stream), adapter_config=LDBNAdaptConfig(lr=scale.adapt_lr)
        )
    return server.run(num_ticks)


def _policy_row(policy: str, report, num_ticks: int) -> Dict[str, object]:
    return {
        "policy": policy,
        "frames": report.total_frames,
        "dropped": report.total_dropped_frames,
        "miss_rate": report.deadline_miss_rate,
        "adapt_steps": report.adaptation_steps,
        "steps_per_tick": report.adaptation_steps / num_ticks,
        "adapting_streams": report.adapting_streams,
        "grant_rate": report.admission_grant_rate,
        "mean_queue_depth": report.mean_queue_depth,
        "slack_p10_ms": report.slack_percentile(10),
        "fleet_fps": report.frames_per_second,
        "mean_adapt_batch": report.mean_adapt_batch_size,
    }


def per_stream_outputs(report) -> List[tuple]:
    """Everything a fleet's frames record, flattened for exact parity
    comparisons — the one definition of "identical per-stream outputs"
    shared by the benchmark guard and the test suite."""
    return [
        (sid, f.latency_ms, f.accuracy, f.entropy, f.adapted, f.adapt_ms)
        for sid, stream_report in report.stream_reports.items()
        for f in stream_report.frames
    ]


def check_slack_dominates(rows: List[Dict[str, object]]) -> None:
    """Assert the acceptance claim over one set of policy rows.

    * every static row serving at-or-under the slack fleet's miss rate
      (plus tolerance) must not out-adapt it, and
    * at least one static row is Pareto-dominated outright: it adapts no
      more than the slack fleet yet misses strictly more deadlines —
      the non-vacuous half of "at equal miss rate, slack sustains >=
      the static fleet's adaptation".
    """
    slack = next(r for r in rows if r["policy"] == "slack")
    static = [r for r in rows if str(r["policy"]).startswith("stride")]
    for row in static:
        if row["miss_rate"] <= slack["miss_rate"] + MISS_RATE_TOLERANCE:
            assert slack["steps_per_tick"] >= row["steps_per_tick"], (slack, row)
            assert slack["adapting_streams"] >= row["adapting_streams"], (
                slack,
                row,
            )
    assert any(
        row["steps_per_tick"] <= slack["steps_per_tick"]
        and row["miss_rate"] > slack["miss_rate"] + MISS_RATE_TOLERANCE
        for row in static
    ), rows


def run_bench_serve(
    scale: Optional[RunScale] = None,
    num_streams: int = 4,
    num_ticks: int = 36,
    strides=STRIDES,
) -> List[Dict[str, object]]:
    """The jittered-arrival admission study; returns table-ready rows."""
    scale = scale if scale is not None else get_run_scale()
    benchmark, model = _prepare(scale)
    pristine = model.state_dict()
    arrival = dict(
        jitter_ms=JITTER_MS,
        phase_spread_ms=PHASE_SPREAD_MS,
        drop_rate=DROP_RATE,
    )

    rows: List[Dict[str, object]] = []
    for stride in strides:
        log.info("bench-serve: static stride-%d fleet", stride)
        report = _run_fleet(
            model, pristine, benchmark, scale, num_streams, num_ticks,
            adapt_stride=stride, **arrival,
        )
        rows.append(_policy_row(f"stride-{stride}", report, num_ticks))
    log.info("bench-serve: slack-admission fleet")
    report = _run_fleet(
        model, pristine, benchmark, scale, num_streams, num_ticks,
        admission=AdmissionConfig(), **arrival,
    )
    rows.append(_policy_row("slack", report, num_ticks))

    # refactor guard: zero-jitter async ingest == the synchronous loop.
    # Exact parity needs a fleet the device keeps up with on average (a
    # cumulative backlog lets the async loop fold late cohorts into
    # draining batches, which is its point), hence 2 streams, stride 4.
    log.info("bench-serve: zero-jitter async-vs-sync parity check")
    outputs = [
        per_stream_outputs(
            _run_fleet(
                model, pristine, benchmark, scale, 2, num_ticks,
                adapt_stride=4, ingest=ingest,
            )
        )
        for ingest in ("async", "sync")
    ]
    for row in rows:
        row["parity_ok"] = outputs[0] == outputs[1]
    return rows
