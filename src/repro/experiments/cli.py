"""Command-line entry point: regenerate paper artifacts without pytest.

    python -m repro.experiments fig3
    python -m repro.experiments fig2 --scale tiny
    python -m repro.experiments census
    python -m repro.experiments sota-cost
    python -m repro.experiments fig1
    python -m repro.experiments fleet --streams 3 --frames 45
    python -m repro.experiments all --scale tiny

Prints the same tables the benchmark harness archives, for quick
interactive use.  ``fleet`` is the multi-vehicle serving demo (not a
paper artifact, so ``all`` does not include it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .ablations import run_param_census, run_sota_cost
from .config import get_run_scale
from .fig1_datasets import run_fig1
from .fig2_accuracy import run_fig2
from .fig3_latency import run_fig3
from .fleet_serving import roofline_comparison_rows, run_fleet
from .reporting import format_table

_ARTIFACTS = ("fig1", "fig2", "fig3", "census", "sota-cost", "fleet", "all")


def _print_fig1(scale) -> None:
    result = run_fig1(scale=scale)
    print("FIG1 — benchmark/domain statistics")
    print(format_table(result.summary_rows(), floatfmt=".3f"))


def _print_fig2(scale) -> None:
    result = run_fig2(scale=scale)
    print("FIG2 — lane-detection accuracy")
    print(format_table(result.summary_rows()))
    print()
    print("TXT1 — best per benchmark vs paper")
    print(format_table(result.paper_comparison_rows()))


def _print_fig3(scale) -> None:
    result = run_fig3()
    print("FIG3 — Jetson Orin latency (paper-scale models)")
    print(format_table(result.summary_rows()))
    status = "MATCHES" if result.all_match_paper else "DIVERGES FROM"
    print(f"feasibility pattern {status} the paper")


def _print_census(scale) -> None:
    print("TXT2 — parameter census")
    print(format_table(run_param_census(), floatfmt=".5f"))


def _print_sota_cost(scale) -> None:
    print("TXT3 — CARLANE-SOTA epoch cost vs LD-BN-ADAPT step")
    print(format_table(run_sota_cost(), floatfmt=".2f"))


def _print_fleet(scale, streams: int, frames: int, adapt_stride: int) -> None:
    result = run_fleet(
        scale=scale,
        num_streams=streams,
        num_frames=frames,
        adapt_stride=adapt_stride,
    )
    print(f"FLEET — {streams} heterogeneous streams, one shared model")
    print(format_table(result.per_stream_rows(), floatfmt=".3f"))
    print()
    print("fleet dashboard")
    print(format_table(result.summary_rows(), floatfmt=".3f"))
    print()
    print("roofline: batched vs serial inference at this fleet size")
    print(
        format_table(
            roofline_comparison_rows(
                streams,
                power_mode=result.power_mode,
                adapt_stride=adapt_stride,
            ),
            floatfmt=".2f",
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper artifacts (see DESIGN.md section 4).",
    )
    parser.add_argument("artifact", choices=_ARTIFACTS, help="which artifact to run")
    parser.add_argument(
        "--scale",
        default=None,
        help="run scale: tiny (default) or small; also honours REPRO_SCALE",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=3,
        help="fleet only: number of concurrent camera streams",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=45,
        help="fleet only: camera periods (frames per stream) to serve",
    )
    parser.add_argument(
        "--adapt-stride",
        type=int,
        default=1,
        help="fleet only: each stream adapts on every k-th of its frames",
    )
    args = parser.parse_args(argv)
    scale = get_run_scale(args.scale)

    if args.artifact == "fleet":
        _print_fleet(scale, args.streams, args.frames, args.adapt_stride)
        return 0

    runners = {
        "fig1": _print_fig1,
        "fig2": _print_fig2,
        "fig3": _print_fig3,
        "census": _print_census,
        "sota-cost": _print_sota_cost,
    }
    selected = list(runners) if args.artifact == "all" else [args.artifact]
    for i, name in enumerate(selected):
        if i:
            print()
        runners[name](scale)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
