"""Command-line entry point: regenerate paper artifacts without pytest.

    python -m repro.experiments fig3
    python -m repro.experiments fig2 --scale tiny
    python -m repro.experiments census
    python -m repro.experiments sota-cost
    python -m repro.experiments fig1
    python -m repro.experiments fleet --streams 3 --frames 45
    python -m repro.experiments fleet --jitter 10 --drop 0.05 --admission slack
    python -m repro.experiments fleet --devices 2 --placement round_robin
    python -m repro.experiments fleet --pool orin-60w,orin-30w --migrate
    python -m repro.experiments fleet --faults crash@200:0,join@300:orin-30w
    python -m repro.experiments fleet --trace
    python -m repro.experiments trace
    python -m repro.experiments bench-infer --quick
    python -m repro.experiments bench-infer --quick --backend cgen
    python -m repro.experiments fleet --backend cgen
    python -m repro.experiments bench-adapt --quick
    python -m repro.experiments bench-serve --quick
    python -m repro.experiments bench-serve --quick --devices 2
    python -m repro.experiments bench-serve --quick --trace
    python -m repro.experiments bench-serve --quick --recovery
    python -m repro.experiments bench-scenarios --quick
    python -m repro.experiments all --scale tiny

Prints the same tables the benchmark harness archives, for quick
interactive use.  ``fleet`` is the multi-vehicle serving demo (the
``--devices``/``--placement``/``--pool``/``--migrate`` flags shard it
across a device pool; ``--trace`` additionally collects per-frame spans,
prints the telemetry dashboard and exports a Chrome ``trace_event`` JSON
plus a JSONL span log); ``trace`` is that observability run as its own
artifact; ``bench-infer`` (eager-vs-compiled inference), ``bench-adapt``
(eager-vs-compiled/fused adaptation steps) and ``bench-serve``
(jittered-arrival slack-admission study + async/sync parity guard at
``--devices 1``, the device-pool scaling study at ``--devices N``, the
telemetry-overhead study at ``--trace``, the crash-recovery study at
``--recovery``) and ``bench-scenarios`` (the shift-scenario matrix:
drift-aware adaptation resets vs stride-waiting over every registered
scenario, or the 3-scenario CI subset at ``--quick``) each archive
results and run the regression gate (none is a paper artifact, so
``all`` includes none of them).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .ablations import run_param_census, run_sota_cost
from .bench_adapt import run_bench_adapt
from .bench_infer import run_bench_infer
from .bench_scenarios import (
    COLUMNS as BENCH_SCENARIO_COLUMNS,
    QUICK_SCENARIOS,
    check_scenarios,
    run_bench_scenarios,
)
from .bench_serve import (
    COLUMNS as BENCH_SERVE_COLUMNS,
    DEVICE_COLUMNS as BENCH_DEVICE_COLUMNS,
    OVERHEAD_COLUMNS as BENCH_OVERHEAD_COLUMNS,
    RECOVERY_COLUMNS as BENCH_RECOVERY_COLUMNS,
    STRIDES,
    check_device_scaling,
    check_recovery,
    check_slack_dominates,
    check_trace_overhead,
    run_bench_devices,
    run_bench_overhead,
    run_bench_recovery,
    run_bench_serve,
    scaling_archive,
)
from .config import get_run_scale
from .fig1_datasets import run_fig1
from .fig2_accuracy import run_fig2
from .fig3_latency import run_fig3
from .fleet_serving import roofline_comparison_rows, run_fleet
from .regression import check_regressions
from .reporting import format_table, merge_json_section, save_json
from ..telemetry import SpanTracer, render_dashboard

_ARTIFACTS = (
    "fig1", "fig2", "fig3", "census", "sota-cost", "fleet", "trace",
    "bench-infer", "bench-adapt", "bench-serve", "bench-scenarios", "all",
)


def _print_fig1(scale) -> None:
    result = run_fig1(scale=scale)
    print("FIG1 — benchmark/domain statistics")
    print(format_table(result.summary_rows(), floatfmt=".3f"))


def _print_fig2(scale) -> None:
    result = run_fig2(scale=scale)
    print("FIG2 — lane-detection accuracy")
    print(format_table(result.summary_rows()))
    print()
    print("TXT1 — best per benchmark vs paper")
    print(format_table(result.paper_comparison_rows()))


def _print_fig3(scale) -> None:
    result = run_fig3()
    print("FIG3 — Jetson Orin latency (paper-scale models)")
    print(format_table(result.summary_rows()))
    status = "MATCHES" if result.all_match_paper else "DIVERGES FROM"
    print(f"feasibility pattern {status} the paper")


def _print_census(scale) -> None:
    print("TXT2 — parameter census")
    print(format_table(run_param_census(), floatfmt=".5f"))


def _print_sota_cost(scale) -> None:
    print("TXT3 — CARLANE-SOTA epoch cost vs LD-BN-ADAPT step")
    print(format_table(run_sota_cost(), floatfmt=".2f"))


def _print_fleet(scale, args, backend=None, force_trace: bool = False) -> None:
    trace_on = force_trace or args.trace
    tracer = SpanTracer() if trace_on else None
    result = run_fleet(
        scale=scale,
        backend=backend if backend is not None else "numpy",
        num_streams=args.streams,
        num_frames=args.frames,
        adapt_stride=args.adapt_stride,
        jitter_ms=args.jitter,
        drop_rate=args.drop,
        phase_spread_ms=args.phase_spread,
        admission=args.admission,
        devices=args.devices,
        placement=args.placement,
        threads=args.threads,
        pool=args.pool,
        migrate=args.migrate,
        faults=args.faults,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_mode=args.checkpoint_mode,
        tracer=tracer,
    )
    streams, adapt_stride = args.streams, args.adapt_stride
    devices = result.devices
    print(
        f"FLEET — {streams} heterogeneous streams, one shared model, "
        f"{devices} device(s)"
    )
    print(format_table(result.per_stream_rows(), floatfmt=".3f"))
    print()
    print("fleet dashboard")
    print(format_table(result.summary_rows(), floatfmt=".3f"))
    print()
    if devices > 1 or result.report.fault_events:
        print("device pool")
        print(format_table(result.per_device_rows(), floatfmt=".3f"))
        print()
    if result.report.fault_events:
        print(f"fault schedule ({result.faults})")
        print(
            format_table(
                result.report.fault_events,
                columns=[
                    "kind", "time_ms", "device", "duration_ms", "factor",
                    "profile",
                ],
                floatfmt=".1f",
            )
        )
        print()
    if result.report.recovery_events:
        print("session recoveries")
        print(format_table(result.report.recovery_events, floatfmt=".1f"))
        print()
    print("roofline: batched vs serial inference at this fleet size")
    print(
        format_table(
            roofline_comparison_rows(
                streams,
                power_mode=result.power_mode,
                adapt_stride=adapt_stride,
            ),
            floatfmt=".2f",
        )
    )
    if tracer is not None:
        print()
        print(render_dashboard(result.report, tracer))
        _export_trace(tracer, args.results_dir)


def _export_trace(tracer: SpanTracer, results_dir: str) -> None:
    """Write the run's spans as Chrome trace JSON + JSONL span log."""
    os.makedirs(results_dir, exist_ok=True)
    chrome_path = os.path.join(results_dir, "fleet_trace.json")
    jsonl_path = os.path.join(results_dir, "fleet_trace.jsonl")
    tracer.write_chrome(chrome_path)
    tracer.write_jsonl(jsonl_path)
    print(
        f"trace: {len(tracer)} events -> {chrome_path} "
        f"(load in chrome://tracing or ui.perfetto.dev) + {jsonl_path}"
    )


def _default_results_dir() -> str:
    """The source tree's ``benchmarks/results``, CWD-independent.

    Anchors to the repo root via this package's location (the same
    directory ``benchmarks/check_regression.py`` gates), falling back to
    a CWD-relative path for installed-without-sources environments.
    """
    repo_root = os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    )
    benchmarks = os.path.join(repo_root, "benchmarks")
    if os.path.isdir(benchmarks):
        return os.path.join(benchmarks, "results")
    return os.path.join("benchmarks", "results")


def _run_bench_infer(
    scale, quick: bool, results_dir: str, backend=None, threads=None
) -> int:
    """Measure eager vs compiled inference, archive it, gate on p95."""
    rows = run_bench_infer(
        scale=scale,
        batch_sizes=(1, 8),
        # the gate diffs p95 across runs, so even quick runs need
        # enough samples for a stable tail (max-of-5 flakes on shared
        # hosts); quick shrinks the adapt work instead
        reps=40,
        adapt_steps=1 if quick else 2,
        backend=backend if backend is not None else "numpy",
        threads=threads,
    )
    columns = [
        "backbone", "batch", "eager_p50_ms", "compiled_p50_ms",
        "compiled_p95_ms", "speedup_p50", "cgen_speedup_p95",
        "bit_exact", "bit_exact_adapted", "cgen_within_band",
    ]
    if threads is not None and threads > 1:
        columns += [
            "cgen_mt_p95_ms", "cgen_mt_speedup_p95", "cgen_mt_within_band",
        ]
    print("BENCH-INFER — eager vs compiled inference latency (ms)")
    print(format_table(rows, columns=columns, floatfmt=".3f"))
    if backend in (None, "numpy"):
        # only the numpy lowering promises bitwise parity with eager;
        # C-rendered plans are gated on the float band instead
        if not all(r["bit_exact"] and r["bit_exact_adapted"] for r in rows):
            print("PARITY FAILURE: compiled output diverged from eager")
            return 1
    if not all(r["cgen_fallback"] or r["cgen_within_band"] for r in rows):
        print("PARITY FAILURE: cgen output left the parity band vs eager")
        return 1
    if all(r["cgen_fallback"] for r in rows):
        print(
            "NOTICE: cgen comparison SKIPPED — no C compiler, plans fell "
            "back to numpy closures"
        )
    if threads is not None and not all(
        r.get("cgen_mt_within_band", True) for r in rows
    ):
        print("PARITY FAILURE: threaded cgen output left the parity band")
        return 1
    if backend in (None, "numpy") and threads is None:
        # non-default backends (and threaded rows, whose schema differs)
        # would diff against the numpy baseline
        save_json(os.path.join(results_dir, "infer_engine.json"), rows)
    return _gate(results_dir, quick)


def _run_bench_adapt(
    scale, quick: bool, results_dir: str, backend=None
) -> int:
    """Measure eager vs compiled/fused adaptation, archive, gate on p95."""
    # 40 reps for the same reason as bench-infer: a stable gated p95
    rows = run_bench_adapt(scale=scale, reps=40, backend=backend)
    print("BENCH-ADAPT — eager vs compiled adaptation-step latency (ms)")
    print(
        format_table(
            rows,
            columns=[
                "backbone", "mode", "streams", "eager_p50_ms",
                "compiled_p50_ms", "compiled_p95_ms", "speedup_p50",
                "parity_ok",
            ],
            floatfmt=".3f",
        )
    )
    if not all(r["parity_ok"] for r in rows):
        print("PARITY FAILURE: compiled adaptation diverged from eager")
        return 1
    if backend in (None, "numpy"):
        # non-default backends would diff against the numpy baseline
        save_json(os.path.join(results_dir, "adapt_step.json"), rows)
    return _gate(results_dir, quick)


def _run_bench_serve(
    scale, quick: bool, results_dir: str, devices: int, placement: str,
    trace: bool = False, recovery: bool = False, backend=None,
) -> int:
    """Fleet serving studies: archive, assert, gate.

    ``--devices 1`` (the default) runs the jittered-arrival admission
    study; ``--devices N`` (N > 1) runs the device-pool scaling study
    over pools of 1, 2 and N devices instead, asserting the scaling
    gate (2 devices sustain >= 1.8x the adapting streams of one);
    ``--trace`` runs the telemetry-overhead study (the same 4-stream
    2-device fleet traced vs untraced, with bitwise output parity);
    ``--recovery`` runs the crash-recovery study (checkpoint inertness,
    seeded crash+join replay determinism, bounded frame loss).
    """
    if recovery:
        rows = run_bench_recovery(
            scale=scale,
            num_streams=3,
            num_ticks=12 if quick else 24,
            backend=backend if backend is not None else "numpy",
        )
        print("BENCH-SERVE — crash recovery: checkpointed elastic pool")
        print(
            format_table(
                rows, columns=list(BENCH_RECOVERY_COLUMNS), floatfmt=".3f"
            )
        )
        try:
            check_recovery(rows)
        except AssertionError as exc:
            print(f"RECOVERY FAILURE: fault tolerance claim failed: {exc}")
            return 1
        merge_json_section(
            os.path.join(results_dir, "serve_throughput.json"),
            "recovery_quick" if quick else "recovery",
            {str(r["scenario"]): r for r in rows},
        )
        return _gate(results_dir, quick)

    if trace:
        rows = run_bench_overhead(
            scale=scale,
            num_streams=4,
            num_ticks=16 if quick else 24,
            devices=2,
            placement=placement,
            backend=backend if backend is not None else "numpy",
        )
        print("BENCH-SERVE — telemetry overhead: traced vs untraced fleet")
        print(
            format_table(
                rows, columns=list(BENCH_OVERHEAD_COLUMNS), floatfmt=".3f"
            )
        )
        try:
            check_trace_overhead(rows)
        except AssertionError as exc:
            print(f"TELEMETRY FAILURE: tracing was not inert: {exc}")
            return 1
        merge_json_section(
            os.path.join(results_dir, "serve_throughput.json"),
            "telemetry_overhead_quick" if quick else "telemetry_overhead",
            {str(r["mode"]): r for r in rows},
        )
        return _gate(results_dir, quick)

    if devices > 1:
        rows = run_bench_devices(
            scale=scale,
            device_counts=tuple(sorted({1, 2, devices})),
            num_ticks=16 if quick else 24,
            max_streams=6 if quick else 10,
            placement=placement,
            backend=backend if backend is not None else "numpy",
        )
        print("BENCH-SERVE — device-pool scaling: sustained adapting streams")
        print(
            format_table(
                rows, columns=list(BENCH_DEVICE_COLUMNS), floatfmt=".3f"
            )
        )
        try:
            check_device_scaling(rows)
        except AssertionError as exc:
            print(f"SCALING FAILURE: device pool did not scale: {exc}")
            return 1
        # quick rows (fewer ticks, lower scan ceiling) live in their own
        # section so the positional regression gate never diffs them
        # against full-run rows; same for non-standard pool sizes
        if quick:
            section = "device_scaling_quick"
        elif devices == 2:
            section = "device_scaling_cli"
        else:
            section = f"device_scaling_cli_{devices}dev"
        merge_json_section(
            os.path.join(results_dir, "serve_throughput.json"),
            section,
            scaling_archive(rows),
        )
        return _gate(results_dir, quick)

    rows = run_bench_serve(
        scale=scale,
        num_streams=4,
        num_ticks=24 if quick else 36,
        strides=(1, 8, 16) if quick else STRIDES,
        placement=placement,
        backend=backend if backend is not None else "numpy",
    )
    print("BENCH-SERVE — jittered arrivals: slack admission vs static stride")
    print(format_table(rows, columns=list(BENCH_SERVE_COLUMNS), floatfmt=".3f"))
    if not all(r["parity_ok"] for r in rows):
        print("PARITY FAILURE: zero-jitter async ingest diverged from the "
              "synchronous loop")
        return 1
    try:
        check_slack_dominates(rows)
    except AssertionError as exc:
        print(f"ADMISSION FAILURE: slack policy did not dominate: {exc}")
        return 1
    # quick rows (fewer strides/ticks) live in their own section so the
    # positional regression gate never diffs them against full-run rows
    merge_json_section(
        os.path.join(results_dir, "serve_throughput.json"),
        "jittered_admission_quick" if quick else "jittered_admission",
        rows,
    )
    return _gate(results_dir, quick)


def _run_bench_scenarios(scale, quick: bool, results_dir: str) -> int:
    """Scenario matrix: drift resets vs stride-waiting, archive, gate.

    ``--quick`` serves the 3-scenario CI subset over a shorter horizon;
    the full run covers every registered scenario.
    """
    rows = run_bench_scenarios(
        scale=scale,
        scenario_names=QUICK_SCENARIOS if quick else None,
        num_streams=2,
        num_ticks=36 if quick else 48,
    )
    print("BENCH-SCENARIOS — shift matrix: drift resets vs stride-waiting")
    print(
        format_table(rows, columns=list(BENCH_SCENARIO_COLUMNS), floatfmt=".3f")
    )
    try:
        check_scenarios(rows)
    except AssertionError as exc:
        print(f"SCENARIO FAILURE: drift-reset claim failed: {exc}")
        return 1
    # quick rows (fewer scenarios/ticks) live in their own section so the
    # positional regression gate never diffs them against full-run rows
    merge_json_section(
        os.path.join(results_dir, "serve_throughput.json"),
        "scenario_matrix_quick" if quick else "scenario_matrix",
        {f"{r['scenario']}/{r['policy']}": r for r in rows},
    )
    return _gate(results_dir, quick)


def _gate(results_dir: str, quick: bool = False) -> int:
    """Run the latency/throughput regression gate over archived results.

    Quick runs gate at a coarse 50% threshold: the smoke lane exists to
    catch faceplants on every PR — a kernel falling off its vectorized
    path or silently falling back to closures is 2-5x — while host-timed
    p95 tails on a busy shared machine routinely swing 40% run to run.
    The canonical 10% precision gate belongs to the full harness and
    ``benchmarks/check_regression.py`` on quiet hardware, where the
    drift-normalization and lone-outlier rules in
    :mod:`repro.experiments.regression` absorb what noise remains."""
    report = check_regressions(results_dir, threshold=0.50 if quick else 0.10)
    print(f"regression check: {report.summary()}")
    if report.regressions:
        print(
            format_table(
                [r.as_row() for r in report.regressions], floatfmt=".3f"
            )
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper artifacts (see DESIGN.md section 4).",
    )
    parser.add_argument("artifact", choices=_ARTIFACTS, help="which artifact to run")
    parser.add_argument(
        "--scale",
        default=None,
        help="run scale: tiny (default) or small; also honours REPRO_SCALE",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=3,
        help="fleet only: number of concurrent camera streams",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=45,
        help="fleet only: camera periods (frames per stream) to serve",
    )
    parser.add_argument(
        "--adapt-stride",
        type=int,
        default=1,
        help="fleet only: each stream adapts on every k-th of its frames",
    )
    parser.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="fleet only: per-frame arrival jitter in ms (uniform delay)",
    )
    parser.add_argument(
        "--drop",
        type=float,
        default=0.0,
        help="fleet only: probability a frame is lost before the server",
    )
    parser.add_argument(
        "--phase-spread",
        type=float,
        default=0.0,
        help="fleet only: stream i's arrival phase offset = i * spread ms",
    )
    parser.add_argument(
        "--admission",
        choices=("stride", "slack"),
        default="stride",
        help="fleet only: static adapt-stride stagger or slack-driven "
        "admission control",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        help="fleet: shard streams across a pool of N devices; "
        "bench-serve: N > 1 runs the device-pool scaling study",
    )
    parser.add_argument(
        "--placement",
        choices=("least_loaded", "round_robin"),
        default="least_loaded",
        help="fleet/bench-serve: session placement policy over the pool "
        "(the 'pinned' policy needs per-stream devices, so it is "
        "API-only: FleetServer.add_stream(device=k))",
    )
    parser.add_argument(
        "--pool",
        default=None,
        help="fleet only: explicit heterogeneous device pool, e.g. "
        "'orin-60w:2,orin-30w' (overrides --devices)",
    )
    parser.add_argument(
        "--migrate",
        action="store_true",
        help="fleet only: migrate sessions off sustained-hot devices",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="fleet only: deterministic fault schedule, e.g. "
        "'crash@400:0,stall@600:1:50,slow@700:1:1.5,join@800:orin-30w' "
        "(kind@time_ms[:device][:arg]); crashes imply checkpointing",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="fleet only: checkpoint each session every N served frames "
        "(default: off, or 8 when --faults schedules a crash)",
    )
    parser.add_argument(
        "--checkpoint-mode",
        choices=("sync", "async"),
        default="sync",
        help="fleet only: durable-at-capture checkpoints, or write-behind "
        "staging that loses the newest capture on a crash",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="bench-serve only: run the crash-recovery study (checkpoint "
        "inertness, replay determinism, bounded frame loss) instead",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="fleet: collect spans, print the telemetry dashboard and "
        "export a Chrome trace (the 'trace' artifact forces this on); "
        "bench-serve: run the telemetry-overhead study instead",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="fleet/bench-*: plan backend for compiled serving and "
        "adaptation (numpy, cgen; default: REPRO_BACKEND or numpy)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="cgen only: kernel worker-pool width for compiled plans; "
        "also re-prices the roofline latency model so scheduling and "
        "admission see the threaded device (default: single-thread "
        "pricing; plan compilation defers to REPRO_CGEN_THREADS)",
    )
    parser.add_argument(
        "--parity",
        choices=("band", "strict"),
        default="band",
        help="cgen only: 'band' renders fast kernels held to a float "
        "tolerance, 'strict' renders bitwise-reproducible kernels "
        "(maps --backend cgen to the cgen-strict registration)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="bench-infer/bench-adapt/bench-serve only: fewer repetitions "
        "(fast CI smoke run)",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="bench-infer/bench-adapt/bench-serve only: where to archive "
        "and gate results (default: the source tree's benchmarks/results, "
        "matching benchmarks/check_regression.py)",
    )
    args = parser.parse_args(argv)
    if args.results_dir is None:
        args.results_dir = _default_results_dir()
    scale = get_run_scale(args.scale)
    backend = args.backend
    if backend == "cgen" and args.parity == "strict":
        backend = "cgen-strict"

    if args.threads is not None and args.threads < 1:
        parser.error(f"--threads must be >= 1, got {args.threads}")

    if args.artifact == "fleet":
        _print_fleet(scale, args, backend)
        return 0
    if args.artifact == "trace":
        _print_fleet(scale, args, backend, force_trace=True)
        return 0
    if args.artifact == "bench-infer":
        return _run_bench_infer(
            scale, args.quick, args.results_dir, backend,
            threads=args.threads,
        )
    if args.artifact == "bench-adapt":
        return _run_bench_adapt(scale, args.quick, args.results_dir, backend)
    if args.artifact == "bench-serve":
        return _run_bench_serve(
            scale, args.quick, args.results_dir, args.devices, args.placement,
            trace=args.trace, recovery=args.recovery, backend=backend,
        )
    if args.artifact == "bench-scenarios":
        return _run_bench_scenarios(scale, args.quick, args.results_dir)

    runners = {
        "fig1": _print_fig1,
        "fig2": _print_fig2,
        "fig3": _print_fig3,
        "census": _print_census,
        "sota-cost": _print_sota_cost,
    }
    selected = list(runners) if args.artifact == "all" else [args.artifact]
    for i, name in enumerate(selected):
        if i:
            print()
        runners[name](scale)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
