"""``python -m repro.experiments`` — artifact regeneration CLI."""

import sys

from .cli import main

sys.exit(main())
