"""FIG2 — lane-detection accuracy grid (the paper's main result).

Reproduces Fig. 2: for each CARLANE benchmark (MoLane/TuLane/MuLane) and
backbone (ResNet-18/34), the accuracy of

* the un-adapted source-trained UFLD model,
* the CARLANE-SOTA offline adaptation, and
* real-time LD-BN-ADAPT at batch sizes 1, 2 and 4,

plus the Sec. IV "best per benchmark" summary (TXT1).  Expected shape
(DESIGN.md section 4): no-adapt << LD-BN-ADAPT ≈ SOTA, with bs=1 the best
LD-BN-ADAPT configuration.

One call to :func:`run_fig2` executes the full grid at a chosen
:class:`~repro.experiments.config.RunScale`; intermediate source models
are trained once per (benchmark, backbone) and shared across methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..adapt import CarlaneSOTA, LDBNAdapt, LDBNAdaptConfig, SOTAConfig
from ..data.benchmarks import Benchmark, make_benchmark
from ..metrics.lane_accuracy import LaneMetrics, evaluate_model
from ..models.registry import build_model, get_config
from ..train.trainer import SourceTrainer, TrainConfig
from ..utils.logging import Logger
from ..utils.rng import make_rng
from .config import (
    ADAPT_BATCH_SIZES,
    BACKBONES,
    BENCHMARK_NAMES,
    PAPER_BEST_LDBN,
    PAPER_BEST_SOTA,
    RunScale,
    get_run_scale,
)

log = Logger("fig2")


@dataclass(frozen=True)
class Fig2Cell:
    """One bar of Fig. 2."""

    benchmark: str
    backbone: str
    method: str  # "no_adapt" | "ld_bn_adapt" | "carlane_sota"
    batch_size: Optional[int]  # set for ld_bn_adapt only
    accuracy_percent: float
    fp_rate: float
    fn_rate: float

    @property
    def label(self) -> str:
        if self.method == "ld_bn_adapt":
            return f"ld_bn_adapt(bs={self.batch_size})"
        return self.method

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "backbone": self.backbone,
            "method": self.label,
            "accuracy_percent": self.accuracy_percent,
            "fp_rate": self.fp_rate,
            "fn_rate": self.fn_rate,
        }


@dataclass
class Fig2Result:
    """All cells plus derived summaries."""

    cells: List[Fig2Cell] = field(default_factory=list)
    scale_name: str = ""

    def get(
        self, benchmark: str, backbone: str, method: str, batch_size: Optional[int] = None
    ) -> Fig2Cell:
        for cell in self.cells:
            if (
                cell.benchmark == benchmark
                and cell.backbone == backbone
                and cell.method == method
                and cell.batch_size == batch_size
            ):
                return cell
        raise KeyError((benchmark, backbone, method, batch_size))

    def best_per_benchmark(self, method: str) -> Dict[str, Fig2Cell]:
        """Best backbone/batch-size configuration per benchmark (TXT1)."""
        best: Dict[str, Fig2Cell] = {}
        for cell in self.cells:
            if cell.method != method:
                continue
            current = best.get(cell.benchmark)
            if current is None or cell.accuracy_percent > current.accuracy_percent:
                best[cell.benchmark] = cell
        return best

    def average_best(self, method: str) -> float:
        """Average of best-per-benchmark accuracies (the paper's headline)."""
        best = self.best_per_benchmark(method)
        if not best:
            return float("nan")
        return float(np.mean([c.accuracy_percent for c in best.values()]))

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = [c.as_dict() for c in self.cells]
        return rows

    def paper_comparison_rows(self) -> List[Dict[str, object]]:
        """Side-by-side with the paper's Sec. IV best numbers."""
        rows = []
        for bench in BENCHMARK_NAMES:
            sota_best = self.best_per_benchmark("carlane_sota").get(bench)
            ldbn_best = self.best_per_benchmark("ld_bn_adapt").get(bench)
            paper_sota, paper_sota_bb = PAPER_BEST_SOTA[bench]
            paper_ldbn, paper_ldbn_bb = PAPER_BEST_LDBN[bench]
            rows.append(
                {
                    "benchmark": bench,
                    "paper_sota": paper_sota,
                    "ours_sota": sota_best.accuracy_percent if sota_best else None,
                    "paper_ldbn": paper_ldbn,
                    "ours_ldbn": ldbn_best.accuracy_percent if ldbn_best else None,
                }
            )
        return rows


def train_source_model(
    benchmark: Benchmark,
    backbone: str,
    scale: RunScale,
):
    """Train (or retrain) the source UFLD model for one grid column."""
    # zlib.crc32 is a stable digest; python's hash() is salted per process
    # and would make training runs irreproducible
    import zlib

    digest = zlib.crc32(f"{benchmark.name}-{backbone}".encode("utf-8"))
    rng = make_rng(scale.seed + digest % 10_000)
    model = build_model(
        scale.preset(backbone), num_lanes=benchmark.spec.num_lanes, rng=rng
    )
    trainer = SourceTrainer(
        model,
        TrainConfig(
            epochs=scale.train_epochs,
            lr=scale.train_lr,
            batch_size=scale.train_batch_size,
        ),
    )
    trainer.fit(benchmark.source_train, rng)
    return model


def _adapt_ld_bn(model, benchmark: Benchmark, batch_size: int, scale: RunScale):
    # Offline protocol note: the paper adapts on a live 30 FPS stream and is
    # evaluated on that same stream, so per-batch statistics replacement is
    # always conditioned on the frames about to be scored.  Our Fig. 2
    # protocol adapts over a target *pool* and then scores a held-out test
    # split; "ema" accumulation is the faithful translation (the running
    # statistics converge to the target-domain average instead of whatever
    # the last pool frame happened to be).  The replace-vs-ema comparison is
    # quantified by benchmarks/bench_ablation_stats.py.
    adapter = LDBNAdapt(
        model,
        LDBNAdaptConfig(
            lr=scale.adapt_lr,
            batch_size=batch_size,
            stats_mode="ema",
            ema_momentum=0.2,
        ),
    )
    for i in range(len(benchmark.target_train)):
        adapter.observe_frame(benchmark.target_train.images[i])
    return adapter.steps_taken


def run_fig2(
    scale: Optional[RunScale] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    backbones: Sequence[str] = BACKBONES,
    batch_sizes: Sequence[int] = ADAPT_BATCH_SIZES,
    include_sota: bool = True,
) -> Fig2Result:
    """Execute the Fig. 2 grid; returns all cells.

    The target-test evaluation always happens in eval mode with whatever
    BN statistics the adaptation left behind — exactly the "deploy the
    updated model" protocol of the paper.
    """
    scale = scale if scale is not None else get_run_scale()
    result = Fig2Result(scale_name=scale.name)

    for bench_name in benchmarks:
        config = get_config(scale.preset("r18"))
        benchmark = make_benchmark(
            bench_name,
            config,
            source_frames=scale.source_frames,
            target_train_frames=scale.target_train_frames,
            target_test_frames=scale.target_test_frames,
            seed=scale.seed,
        )
        for backbone in backbones:
            log.info("fig2: training %s source model on %s", backbone, bench_name)
            model = train_source_model(benchmark, backbone, scale)
            pristine = model.state_dict()

            # (i) no adaptation
            metrics = evaluate_model(model, benchmark.target_test)
            result.cells.append(
                Fig2Cell(
                    benchmark=bench_name,
                    backbone=backbone,
                    method="no_adapt",
                    batch_size=None,
                    accuracy_percent=metrics.accuracy_percent,
                    fp_rate=metrics.false_positive_rate,
                    fn_rate=metrics.false_negative_rate,
                )
            )

            # (ii) LD-BN-ADAPT at each batch size
            for bs in batch_sizes:
                model.load_state_dict(pristine)
                _adapt_ld_bn(model, benchmark, bs, scale)
                metrics = evaluate_model(model, benchmark.target_test)
                result.cells.append(
                    Fig2Cell(
                        benchmark=bench_name,
                        backbone=backbone,
                        method="ld_bn_adapt",
                        batch_size=bs,
                        accuracy_percent=metrics.accuracy_percent,
                        fp_rate=metrics.false_positive_rate,
                        fn_rate=metrics.false_negative_rate,
                    )
                )

            # (iii) CARLANE-SOTA offline baseline
            if include_sota:
                model.load_state_dict(pristine)
                sota = CarlaneSOTA(model, SOTAConfig(epochs=scale.sota_epochs))
                sota.adapt_offline(
                    benchmark.source_train,
                    benchmark.target_train,
                    make_rng(scale.seed + 99),
                )
                metrics = evaluate_model(model, benchmark.target_test)
                result.cells.append(
                    Fig2Cell(
                        benchmark=bench_name,
                        backbone=backbone,
                        method="carlane_sota",
                        batch_size=None,
                        accuracy_percent=metrics.accuracy_percent,
                        fp_rate=metrics.false_positive_rate,
                        fn_rate=metrics.false_negative_rate,
                    )
                )
    return result
