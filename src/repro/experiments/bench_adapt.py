"""Eager-vs-compiled adaptation-step latency measurement.

Shared by ``benchmarks/bench_adapt_step.py`` (the archived pytest
harness) and the ``python -m repro.experiments bench-adapt`` CLI
subcommand (the quick regression-gate run).  Two configurations per
backbone, measured in host wallclock over identical inputs:

* **single** — one stream's LD-BN-ADAPT step at batch 1: the eager
  autograd path (train forward + full backward + optimizer) versus the
  compiled adaptation plan (:class:`repro.engine.CompiledAdaptStep` —
  static forward+backward pruned to BN gamma/beta, fused in-place SGD);
* **fleet** — ``fleet_streams`` same-phase streams, each stepping on its
  own state: N serial *eager* steps (swap-in/step/swap-out per stream,
  the pre-fleet-batching cost) versus ONE fused grouped replay through
  :class:`repro.serve.FleetAdaptationBatcher`.

Each row also records a numerical-parity verdict: the post-step model
state of the compiled path must match the eager oracle to float
precision (the single-stream compiled step is bitwise-identical in
practice; the fused path differs only by GEMM batching at the last ulp).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..models import build_model, get_config
from ..pipeline.monitor import latency_percentile
from ..serve.adapt_batch import FleetAdaptationBatcher
from ..serve.streams import StreamRegistry
from .config import BACKBONES, RunScale, get_run_scale

DEFAULT_FLEET_STREAMS = 4
PARITY_RTOL = 1e-7
PARITY_ATOL = 1e-9


def _time_ms(fn, reps: int) -> List[float]:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(1e3 * (time.perf_counter() - start))
    return samples


def _state_parity(
    model, pristine, frames, lr: float, steps: int, backend=None
) -> float:
    """Max |state diff| after ``steps`` adaptation steps, compiled vs eager."""
    states = {}
    for label, compiled in (("compiled", True), ("eager", False)):
        model.load_state_dict(pristine)
        adapter = LDBNAdapt(
            model, LDBNAdaptConfig(lr=lr, batch_size=1, backend=backend)
        )
        with nn.adaptation_mode(compiled):
            for frame in frames[:steps]:
                adapter.adapt(frame[None])
        states[label] = model.state_dict()
    model.load_state_dict(pristine)
    return max(
        float(
            np.abs(
                np.asarray(states["compiled"][key], dtype=np.float64)
                - np.asarray(states["eager"][key], dtype=np.float64)
            ).max()
        )
        for key in states["compiled"]
    )


def _fleet_parity(
    model, pristine, lr: float, streams: int, frames, backend=None
) -> float:
    """Max per-stream |state diff|: one fused grouped step vs serial eager."""
    snapshots = {}
    for label in ("fused", "serial"):
        model.load_state_dict(pristine)
        registry = StreamRegistry(model)
        sessions = [
            registry.register(
                f"{label}-{i}",
                iter(()),
                LDBNAdapt(model, LDBNAdaptConfig(lr=lr)),
                deadline_ms=1e9,
            )
            for i in range(streams)
        ]
        if label == "fused":
            staged = FleetAdaptationBatcher(model, backend=backend).stage(
                sessions, frames
            )
            staged.execute()
        else:
            with nn.adaptation_mode(False):
                for session, image in zip(sessions, frames):
                    session.swap_in()
                    session.adapter.adapt(image[None])
                    session.swap_out()
        snapshots[label] = [
            [p.copy() for p in s.bn_state.params.saved]
            + [np.array(b[name]) for b in s.bn_state.buffers
               for name in ("running_mean", "running_var")]
            for s in sessions
        ]
    model.load_state_dict(pristine)
    return max(
        float(np.abs(a - b).max())
        for fused_s, serial_s in zip(snapshots["fused"], snapshots["serial"])
        for a, b in zip(fused_s, serial_s)
    )


def run_bench_adapt(
    scale: Optional[RunScale] = None,
    reps: int = 30,
    fleet_streams: int = DEFAULT_FLEET_STREAMS,
    backbones: Sequence[str] = BACKBONES,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Measure eager vs compiled adaptation steps; one row per
    (backbone, configuration) with p50/p95 latencies, speedups and the
    numerical-parity verdict.

    ``backend`` selects the plan backend for the compiled paths (None →
    ``REPRO_BACKEND`` or numpy).  The parity verdict runs against the
    selected backend; non-numpy backends are held to the looser
    float-band tolerance rather than the near-bitwise numpy bar."""
    scale = scale if scale is not None else get_run_scale()
    # numpy's compiled step is near-bitwise; C-rendered forwards reorder
    # accumulation (FMA), so band backends get a float-band tolerance
    parity_atol = PARITY_ATOL if backend in (None, "numpy") else 1e-6
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for backbone in backbones:
        preset = scale.preset(backbone)
        config = get_config(preset)
        model = build_model(preset, rng=rng)
        model.eval()
        h, w = config.input_hw
        pristine = model.state_dict()

        def frame():
            return rng.standard_normal((3, h, w)).astype(np.float32)

        # -- single stream, batch 1: eager vs compiled ------------------
        parity_frames = [frame() for _ in range(2)]
        state_diff = _state_parity(
            model, pristine, parity_frames, scale.adapt_lr, steps=2,
            backend=backend,
        )
        timings = {}
        for label, compiled in (("eager", False), ("compiled", True)):
            model.load_state_dict(pristine)
            adapter = LDBNAdapt(
                model,
                LDBNAdaptConfig(
                    lr=scale.adapt_lr, batch_size=1, backend=backend
                ),
            )
            x = frame()[None]
            with nn.adaptation_mode(compiled):
                adapter.adapt(x)  # warm: trace + compile outside timing
                timings[label] = _time_ms(lambda: adapter.adapt(x), reps)
        model.load_state_dict(pristine)
        eager_p50 = latency_percentile(timings["eager"], 50)
        compiled_p50 = latency_percentile(timings["compiled"], 50)
        rows.append(
            {
                "backbone": backbone,
                "preset": preset,
                "mode": "single",
                "streams": 1,
                "reps": reps,
                "eager_p50_ms": eager_p50,
                "eager_p95_ms": latency_percentile(timings["eager"], 95),
                "compiled_p50_ms": compiled_p50,
                "compiled_p95_ms": latency_percentile(timings["compiled"], 95),
                "speedup_p50": eager_p50 / compiled_p50,
                "max_state_diff": state_diff,
                "parity_ok": bool(state_diff <= parity_atol),
            }
        )

        # -- fleet: N same-phase streams, serial eager vs fused ----------
        fleet_frames = [frame() for _ in range(fleet_streams)]
        fleet_diff = _fleet_parity(
            model, pristine, scale.adapt_lr, fleet_streams, fleet_frames,
            backend=backend,
        )
        model.load_state_dict(pristine)
        registry = StreamRegistry(model)
        sessions = [
            registry.register(
                f"s{i}",
                iter(()),
                LDBNAdapt(model, LDBNAdaptConfig(lr=scale.adapt_lr)),
                deadline_ms=1e9,
            )
            for i in range(fleet_streams)
        ]
        batcher = FleetAdaptationBatcher(model, backend=backend)
        stream_frames = fleet_frames

        def serial_eager():
            with nn.adaptation_mode(False):
                for session, image in zip(sessions, stream_frames):
                    session.swap_in()
                    session.adapter.adapt(image[None])
                    session.swap_out()

        def fused():
            staged = batcher.stage(sessions, stream_frames)
            staged.execute()

        fused()  # warm: trace + compile the grouped plan outside timing
        serial_ms = _time_ms(serial_eager, reps)
        fused_ms = _time_ms(fused, reps)
        eager_p50 = latency_percentile(serial_ms, 50)
        fused_p50 = latency_percentile(fused_ms, 50)
        rows.append(
            {
                "backbone": backbone,
                "preset": preset,
                "mode": "fleet",
                "streams": fleet_streams,
                "reps": reps,
                "eager_p50_ms": eager_p50,
                "eager_p95_ms": latency_percentile(serial_ms, 95),
                "compiled_p50_ms": fused_p50,
                "compiled_p95_ms": latency_percentile(fused_ms, 95),
                "speedup_p50": eager_p50 / fused_p50,
                "max_state_diff": fleet_diff,
                "parity_ok": bool(fleet_diff <= parity_atol),
            }
        )
        model.load_state_dict(pristine)
    return rows
