"""Numpy-vs-C micro-benchmarks of the engine's stage kernels.

Each case traces a single-layer model through both plan backends and
times the resulting one-stage plans head-to-head, isolating one kernel
family: the im2col-GEMM conv (gather + matmul + fused BN/ReLU epilogue),
the identity-columns 1x1 GEMM, the linear GEMM, max-pool, and the
elementwise ReLU epilogue.  Rows are archived to
``results/micro_ops.json`` by :mod:`benchmarks.bench_micro_ops`; the
``*_p95_ms`` keys ride the standard regression gate
(:mod:`repro.experiments.regression`), so a slowdown in either backend's
kernels fails CI like any other latency regression.

Rows where ``fallback`` is True (no C compiler — the cgen plan ran the
numpy closures stage-by-stage) time the same closures twice by
construction; the harness skips the speedup assertions for them.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List

import numpy as np

from .. import nn
from ..engine import compile_model
from ..pipeline.monitor import latency_percentile


def _micro_cases(rng: np.random.Generator):
    """(name, model, input) triples, one engine stage each."""
    conv_bn_relu = nn.Sequential(
        nn.Conv2d(16, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
    )
    cases = [
        (
            "conv3x3_bn_relu",
            conv_bn_relu,
            rng.standard_normal((1, 16, 16, 40)),
        ),
        (
            "conv1x1_gemm",
            nn.Conv2d(16, 32, 1, bias=False, rng=rng),
            rng.standard_normal((1, 16, 16, 40)),
        ),
        (
            "conv3x3_im2col",
            nn.Conv2d(16, 16, 3, padding=1, bias=False, rng=rng),
            rng.standard_normal((1, 16, 16, 40)),
        ),
        (
            "linear",
            nn.Linear(512, 128, rng=rng),
            rng.standard_normal((8, 512)),
        ),
        (
            "maxpool2x2",
            nn.MaxPool2d(2),
            rng.standard_normal((1, 16, 16, 40)),
        ),
        (
            "relu_epilogue",
            nn.ReLU(),
            rng.standard_normal((1, 32, 32, 80)),
        ),
    ]
    return cases


def _time_ms(fn, reps: int) -> List[float]:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(1e3 * (time.perf_counter() - start))
    return samples


def run_micro_threaded(
    reps: int = 200, seed: int = 0, threads: int = 2
) -> List[Dict[str, object]]:
    """Single-thread vs ``threads``-wide cgen, per threaded kernel family.

    Covers the three kernels the worker pool tiles: the identity-columns
    conv GEMM, the fused-im2col 3x3 conv (gather folded into the GEMM —
    no workspace materialization), and the rendered adaptation backward
    (BN gamma/beta grads + reduced chain).  Samples are interleaved so
    machine drift cancels in ``mt_speedup_p95``; the ``*_p95_ms`` keys
    ride the regression gate, the speedup key does not (1-core CI hosts
    cannot promise > 1x).
    """
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []

    fwd_cases = [
        (
            "conv1x1_gemm_mt",
            nn.Conv2d(32, 64, 1, bias=False, rng=rng),
            rng.standard_normal((2, 32, 16, 40)),
        ),
        (
            "conv3x3_fused_im2col_mt",
            nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
            rng.standard_normal((2, 16, 16, 40)),
        ),
    ]
    for name, model, x in fwd_cases:
        model.eval()
        eng_st = compile_model(model, backend="cgen", threads=1)
        eng_mt = compile_model(model, backend="cgen", threads=threads)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            y_st = eng_st(x).numpy().copy()
            y_mt = eng_mt(x).numpy().copy()
        info = eng_mt.plan_for(x.shape, x.dtype).backend_info
        st_ms, mt_ms = [], []
        for _ in range(reps):
            start = time.perf_counter()
            eng_st(x)
            st_ms.append(1e3 * (time.perf_counter() - start))
            start = time.perf_counter()
            eng_mt(x)
            mt_ms.append(1e3 * (time.perf_counter() - start))
        st_p95 = latency_percentile(st_ms, 95)
        mt_p95 = latency_percentile(mt_ms, 95)
        rows.append(
            {
                "op": name,
                "shape": "x".join(str(d) for d in x.shape),
                "threads": info["threads"],
                "reps": reps,
                "cgen_st_p50_ms": latency_percentile(st_ms, 50),
                "cgen_st_p95_ms": st_p95,
                "cgen_mt_p50_ms": latency_percentile(mt_ms, 50),
                "cgen_mt_p95_ms": mt_p95,
                "mt_speedup_p95": st_p95 / mt_p95,
                "mt_stages": info["mt_stages"],
                "rendered": info["rendered"],
                "fallback": info["rendered"] == 0,
                "max_abs_diff": float(np.abs(y_mt - y_st).max()),
            }
        )

    # rendered adaptation backward: BN gamma/beta grads + reduced chain
    from ..engine.compile import CompiledAdaptStep

    model = nn.Sequential(
        nn.Conv2d(8, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
    )
    x = rng.standard_normal((4, 8, 16, 40)).astype(np.float32)
    model.train()
    step_st = CompiledAdaptStep(model, backend="cgen", threads=1)
    step_mt = CompiledAdaptStep(model, backend="cgen", threads=threads)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        plan_st = step_st.plan_for(x)
        plan_mt = step_mt.plan_for(x)
        loss_st = float(np.asarray(plan_st.run(x)).ravel()[0])
        loss_mt = float(np.asarray(plan_mt.run(x)).ravel()[0])
    info = plan_mt.backend_info
    st_ms, mt_ms = [], []
    for _ in range(reps):
        start = time.perf_counter()
        plan_st.run(x)
        st_ms.append(1e3 * (time.perf_counter() - start))
        start = time.perf_counter()
        plan_mt.run(x)
        mt_ms.append(1e3 * (time.perf_counter() - start))
    st_p95 = latency_percentile(st_ms, 95)
    mt_p95 = latency_percentile(mt_ms, 95)
    rows.append(
        {
            "op": "rendered_backward_mt",
            "shape": "x".join(str(d) for d in x.shape),
            "threads": info["threads"],
            "reps": reps,
            "cgen_st_p50_ms": latency_percentile(st_ms, 50),
            "cgen_st_p95_ms": st_p95,
            "cgen_mt_p50_ms": latency_percentile(mt_ms, 50),
            "cgen_mt_p95_ms": mt_p95,
            "mt_speedup_p95": st_p95 / mt_p95,
            "mt_stages": info["mt_stages"],
            "rendered": info["rendered"],
            "fallback": info["rendered"] == 0,
            "max_abs_diff": abs(loss_mt - loss_st),
        }
    )
    return rows


def run_micro_ops(reps: int = 200, seed: int = 0) -> List[Dict[str, object]]:
    """Time each micro kernel through the numpy and cgen backends."""
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for name, model, x in _micro_cases(rng):
        model.eval()
        eng_np = compile_model(model)
        eng_c = compile_model(model, backend="cgen")
        eng_np(x)
        with warnings.catch_warnings():
            # a missing compiler warns; the row records the fallback
            warnings.simplefilter("ignore", RuntimeWarning)
            y_c = eng_c(x).numpy().copy()
        y_np = eng_np(x).numpy().copy()
        info = eng_c.plan_for(x.shape, x.dtype).backend_info

        np_ms = _time_ms(lambda: eng_np(x), reps)
        c_ms = _time_ms(lambda: eng_c(x), reps)
        np_p95 = latency_percentile(np_ms, 95)
        c_p95 = latency_percentile(c_ms, 95)
        rows.append(
            {
                "op": name,
                "shape": "x".join(str(d) for d in x.shape),
                "reps": reps,
                "numpy_p50_ms": latency_percentile(np_ms, 50),
                "numpy_p95_ms": np_p95,
                "cgen_p50_ms": latency_percentile(c_ms, 50),
                "cgen_p95_ms": c_p95,
                "speedup_p95": np_p95 / c_p95,
                "rendered": info["rendered"],
                "fallback": info["rendered"] == 0,
                "max_abs_diff": float(np.abs(y_c - y_np).max()),
            }
        )
    return rows
