"""Eager-vs-compiled inference latency measurement.

Shared by ``benchmarks/bench_infer_engine.py`` (the archived pytest
harness) and the ``python -m repro.experiments bench-infer`` CLI
subcommand (the quick regression-gate run).  For each backbone and batch
size it measures the model's eval forward both ways — the eager autograd
path and the compiled engine (:mod:`repro.engine`) — reports p50/p95
wall-clock latency through the shared percentile helper, and verifies the
engine's hard parity requirement: outputs **bit-exact**
(``np.array_equal``) against eager, both on the pristine source model and
after LD-BN-ADAPT has rewritten the BN state.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..engine import compile_model
from ..engine.backends import PARITY_ATOL, PARITY_RTOL
from ..models import build_model, get_config
from ..pipeline.monitor import latency_percentile
from .config import BACKBONES, RunScale, get_run_scale

DEFAULT_BATCH_SIZES = (1, 8)


def _time_ms(fn, reps: int) -> List[float]:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(1e3 * (time.perf_counter() - start))
    return samples


def run_bench_infer(
    scale: Optional[RunScale] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    reps: int = 30,
    adapt_steps: int = 2,
    backbones: Sequence[str] = BACKBONES,
    seed: int = 0,
    backend: str = "numpy",
    threads: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Measure eager vs compiled inference; returns one row per
    (backbone, batch size) with p50/p95 latencies, speedups and the two
    bit-exactness verdicts.

    ``backend`` selects the plan backend for the *compiled* column (the
    one the bit-exactness assertions run against — only ``numpy``
    guarantees them).  A third column always measures the ``cgen`` C
    backend against the numpy-compiled path: ``cgen_p50_ms`` /
    ``cgen_p95_ms``, ``cgen_speedup_p95`` (numpy-compiled p95 over cgen
    p95), ``cgen_rendered`` stages, ``cgen_within_band`` parity and
    ``cgen_fallback`` (True when no compiler was available and every
    stage fell back to the numpy closures, in which case the speedup is
    ~1.0 by construction).

    ``threads`` (> 1) adds a fourth, threaded cgen column — the same
    plans compiled with a ``threads``-wide kernel pool, interleaved with
    the single-thread cgen samples so machine drift cancels in
    ``cgen_mt_speedup_p95`` (single-thread cgen p95 over threaded p95).
    """
    scale = scale if scale is not None else get_run_scale()
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for backbone in backbones:
        preset = scale.preset(backbone)
        config = get_config(preset)
        model = build_model(preset, rng=rng)
        model.eval()
        engine = compile_model(model, backend=backend)
        cgen_engine = compile_model(model, backend="cgen", threads=1)
        mt = threads is not None and threads > 1
        cgen_mt_engine = (
            compile_model(model, backend="cgen", threads=threads)
            if mt else None
        )
        h, w = config.input_hw

        def frames(batch):
            return rng.standard_normal((batch, 3, h, w)).astype(np.float32)

        for batch in batch_sizes:
            x = frames(batch)

            def eager():
                with nn.no_grad():
                    return model(nn.Tensor(x, _copy=False)).numpy()

            engine(x)  # trace + compile outside the timed region
            with warnings.catch_warnings():
                # a missing C compiler warns once per plan; the fallback
                # is recorded in the row instead
                warnings.simplefilter("ignore", RuntimeWarning)
                cgen_out = cgen_engine(x).numpy().copy()
                if mt:
                    cgen_mt_out = cgen_mt_engine(x).numpy().copy()
            cgen_info = cgen_engine.plan_for(x.shape, x.dtype).backend_info
            eager_ref = eager().copy()
            bit_exact = bool(np.array_equal(eager_ref, engine(x).numpy()))
            # band parity against eager, the true oracle — stays
            # meaningful even when ``backend`` itself is cgen
            cgen_within_band = bool(np.allclose(
                cgen_out, eager_ref,
                rtol=PARITY_RTOL.get(eager_ref.dtype.name, 1e-9),
                atol=PARITY_ATOL.get(eager_ref.dtype.name, 1e-12),
            ))

            eager_ms = _time_ms(eager, reps)
            # interleave the compiled paths so slow machine drift hits
            # all samples equally and cancels in the speedup ratios
            compiled_ms, cgen_ms, cgen_mt_ms = [], [], []
            for _ in range(reps):
                start = time.perf_counter()
                engine(x)
                compiled_ms.append(1e3 * (time.perf_counter() - start))
                start = time.perf_counter()
                cgen_engine(x)
                cgen_ms.append(1e3 * (time.perf_counter() - start))
                if mt:
                    start = time.perf_counter()
                    cgen_mt_engine(x)
                    cgen_mt_ms.append(1e3 * (time.perf_counter() - start))

            # parity must survive online adaptation rewriting the BN state
            adapter = LDBNAdapt(model, LDBNAdaptConfig(batch_size=1))
            for _ in range(adapt_steps):
                adapter.adapt(frames(1))
            model.eval()
            adapted_ref = eager().copy()
            bit_exact_adapted = bool(
                np.array_equal(adapted_ref, engine(x).numpy())
            )
            adapter.reset()
            model.eval()

            eager_p50 = latency_percentile(eager_ms, 50)
            compiled_p50 = latency_percentile(compiled_ms, 50)
            compiled_p95 = latency_percentile(compiled_ms, 95)
            cgen_p95 = latency_percentile(cgen_ms, 95)
            mt_cols: Dict[str, object] = {}
            if mt:
                mt_info = cgen_mt_engine.plan_for(
                    x.shape, x.dtype
                ).backend_info
                mt_p95 = latency_percentile(cgen_mt_ms, 95)
                mt_cols = {
                    "cgen_threads": mt_info["threads"],
                    "cgen_mt_p50_ms": latency_percentile(cgen_mt_ms, 50),
                    "cgen_mt_p95_ms": mt_p95,
                    # single-thread cgen p95 over threaded p95 — the
                    # thread-scaling headline (speedup keys are not
                    # regression-gated)
                    "cgen_mt_speedup_p95": cgen_p95 / mt_p95,
                    "cgen_mt_stages": mt_info["mt_stages"],
                    "cgen_mt_within_band": bool(np.allclose(
                        cgen_mt_out, eager_ref,
                        rtol=PARITY_RTOL.get(eager_ref.dtype.name, 1e-9),
                        atol=PARITY_ATOL.get(eager_ref.dtype.name, 1e-12),
                    )),
                }
            rows.append(
                {
                    "backbone": backbone,
                    "preset": preset,
                    "batch": batch,
                    "reps": reps,
                    "backend": backend,
                    "eager_p50_ms": eager_p50,
                    "eager_p95_ms": latency_percentile(eager_ms, 95),
                    "compiled_p50_ms": compiled_p50,
                    "compiled_p95_ms": compiled_p95,
                    "speedup_p50": eager_p50 / compiled_p50,
                    "cgen_p50_ms": latency_percentile(cgen_ms, 50),
                    "cgen_p95_ms": cgen_p95,
                    "cgen_speedup_p95": compiled_p95 / cgen_p95,
                    "cgen_rendered": cgen_info["rendered"],
                    "cgen_fallback": cgen_info["rendered"] == 0,
                    "cgen_within_band": cgen_within_band,
                    "bit_exact": bit_exact,
                    "bit_exact_adapted": bit_exact_adapted,
                    **mt_cols,
                }
            )
    return rows
