"""Eager-vs-compiled inference latency measurement.

Shared by ``benchmarks/bench_infer_engine.py`` (the archived pytest
harness) and the ``python -m repro.experiments bench-infer`` CLI
subcommand (the quick regression-gate run).  For each backbone and batch
size it measures the model's eval forward both ways — the eager autograd
path and the compiled engine (:mod:`repro.engine`) — reports p50/p95
wall-clock latency through the shared percentile helper, and verifies the
engine's hard parity requirement: outputs **bit-exact**
(``np.array_equal``) against eager, both on the pristine source model and
after LD-BN-ADAPT has rewritten the BN state.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..engine import compile_model
from ..models import build_model, get_config
from ..pipeline.monitor import latency_percentile
from .config import BACKBONES, RunScale, get_run_scale

DEFAULT_BATCH_SIZES = (1, 8)


def _time_ms(fn, reps: int) -> List[float]:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(1e3 * (time.perf_counter() - start))
    return samples


def run_bench_infer(
    scale: Optional[RunScale] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    reps: int = 30,
    adapt_steps: int = 2,
    backbones: Sequence[str] = BACKBONES,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measure eager vs compiled inference; returns one row per
    (backbone, batch size) with p50/p95 latencies, speedups and the two
    bit-exactness verdicts."""
    scale = scale if scale is not None else get_run_scale()
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for backbone in backbones:
        preset = scale.preset(backbone)
        config = get_config(preset)
        model = build_model(preset, rng=rng)
        model.eval()
        engine = compile_model(model)
        h, w = config.input_hw

        def frames(batch):
            return rng.standard_normal((batch, 3, h, w)).astype(np.float32)

        for batch in batch_sizes:
            x = frames(batch)

            def eager():
                with nn.no_grad():
                    return model(nn.Tensor(x, _copy=False)).numpy()

            engine(x)  # trace + compile outside the timed region
            eager_ref = eager().copy()
            bit_exact = bool(np.array_equal(eager_ref, engine(x).numpy()))

            eager_ms = _time_ms(eager, reps)
            compiled_ms = _time_ms(lambda: engine(x), reps)

            # parity must survive online adaptation rewriting the BN state
            adapter = LDBNAdapt(model, LDBNAdaptConfig(batch_size=1))
            for _ in range(adapt_steps):
                adapter.adapt(frames(1))
            model.eval()
            adapted_ref = eager().copy()
            bit_exact_adapted = bool(
                np.array_equal(adapted_ref, engine(x).numpy())
            )
            adapter.reset()
            model.eval()

            eager_p50 = latency_percentile(eager_ms, 50)
            compiled_p50 = latency_percentile(compiled_ms, 50)
            rows.append(
                {
                    "backbone": backbone,
                    "preset": preset,
                    "batch": batch,
                    "reps": reps,
                    "eager_p50_ms": eager_p50,
                    "eager_p95_ms": latency_percentile(eager_ms, 95),
                    "compiled_p50_ms": compiled_p50,
                    "compiled_p95_ms": latency_percentile(compiled_ms, 95),
                    "speedup_p50": eager_p50 / compiled_p50,
                    "bit_exact": bit_exact,
                    "bit_exact_adapted": bit_exact_adapted,
                }
            )
    return rows
