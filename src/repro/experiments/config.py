"""Experiment grid definitions and paper reference numbers.

Centralizes (a) the grid the paper sweeps (methods x backbones x
benchmarks x batch sizes), (b) the paper's reported numbers (for
side-by-side tables in EXPERIMENTS.md), and (c) run-scale presets that
map the experiments onto CPU budgets ("tiny" for CI, "small" for the
full reproduction run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

# ----------------------------------------------------------------------
# the paper's grid
# ----------------------------------------------------------------------
BENCHMARK_NAMES: Tuple[str, ...] = ("molane", "tulane", "mulane")
BACKBONES: Tuple[str, ...] = ("r18", "r34")
ADAPT_BATCH_SIZES: Tuple[int, ...] = (1, 2, 4)
METHODS: Tuple[str, ...] = ("no_adapt", "ld_bn_adapt", "carlane_sota")

# Sec. IV text: best accuracies per benchmark (percent)
PAPER_BEST_SOTA: Dict[str, Tuple[float, str]] = {
    "molane": (93.94, "r18"),
    "tulane": (93.29, "r34"),
    "mulane": (91.57, "r18"),
}
PAPER_BEST_LDBN: Dict[str, Tuple[float, str]] = {
    "molane": (92.68, "r18"),
    "tulane": (92.70, "r18"),
    "mulane": (91.19, "r34"),
}
PAPER_AVG_SOTA = 92.93
PAPER_AVG_LDBN = 92.19

# CARLANE-scale split sizes (approximate; used by the SOTA cost model)
CARLANE_SPLIT_SIZES: Dict[str, Tuple[int, int]] = {
    # benchmark -> (num_source_train, num_target_train)
    "molane": (84_000, 4_400),
    "tulane": (55_000, 3_600),
    "mulane": (139_000, 8_000),
}


# ----------------------------------------------------------------------
# run scales
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunScale:
    """How big to make a reproduction run.

    ``preset_prefix`` selects the model scale ("tiny" or "small" — see
    :mod:`repro.models.registry`); the rest sizes the data and training.
    """

    name: str
    preset_prefix: str
    source_frames: int
    target_train_frames: int
    target_test_frames: int
    train_epochs: int
    train_lr: float
    train_batch_size: int
    adapt_lr: float
    sota_epochs: int
    seed: int = 0

    def preset(self, backbone: str) -> str:
        """Model preset name for a backbone tag ("r18"/"r34")."""
        return f"{self.preset_prefix}-{backbone}"


RUN_SCALES: Dict[str, RunScale] = {
    "tiny": RunScale(
        name="tiny",
        preset_prefix="tiny",
        source_frames=120,
        target_train_frames=60,
        target_test_frames=60,
        train_epochs=6,
        train_lr=0.02,
        train_batch_size=16,
        adapt_lr=1e-3,
        sota_epochs=2,
    ),
    "small": RunScale(
        name="small",
        preset_prefix="small",
        source_frames=300,
        target_train_frames=120,
        target_test_frames=120,
        train_epochs=10,
        train_lr=0.02,
        train_batch_size=16,
        adapt_lr=1e-3,
        sota_epochs=3,
    ),
}


def get_run_scale(name: str = None) -> RunScale:
    """Resolve a run scale by name, env var REPRO_SCALE, or default "tiny".

    The benchmark harness reads REPRO_SCALE so `pytest benchmarks/` can be
    promoted to the full "small"-scale reproduction without code changes:

        REPRO_SCALE=small pytest benchmarks/bench_fig2_accuracy.py --benchmark-only
    """
    import os

    key = name or os.environ.get("REPRO_SCALE", "tiny")
    if key not in RUN_SCALES:
        raise KeyError(f"unknown run scale {key!r}; available: {sorted(RUN_SCALES)}")
    return RUN_SCALES[key]
