"""``repro.experiments`` — harnesses that regenerate every paper artifact.

See DESIGN.md section 4 for the experiment index (FIG1/FIG2/FIG3, TXT1-3,
ABL1-3) and ``benchmarks/`` for the pytest-benchmark entry points.
"""

from .ablations import (
    VariantResult,
    run_batch_size_ablation,
    run_param_census,
    run_sota_cost,
    run_stats_mode_ablation,
    run_variant_comparison,
)
from .bench_adapt import run_bench_adapt
from .bench_infer import run_bench_infer
from .bench_scenarios import (
    QUICK_SCENARIOS,
    check_scenarios,
    recovery_spans,
    run_bench_scenarios,
)
from .bench_serve import (
    check_device_scaling,
    check_slack_dominates,
    check_thread_pricing,
    run_bench_devices,
    run_bench_serve,
    run_bench_thread_pricing,
    scaling_archive,
    sustained_streams,
)
from .config import (
    ADAPT_BATCH_SIZES,
    BACKBONES,
    BENCHMARK_NAMES,
    CARLANE_SPLIT_SIZES,
    METHODS,
    PAPER_AVG_LDBN,
    PAPER_AVG_SOTA,
    PAPER_BEST_LDBN,
    PAPER_BEST_SOTA,
    RUN_SCALES,
    RunScale,
    get_run_scale,
)
from .fig1_datasets import DomainStats, Fig1Result, export_gallery, run_fig1
from .fig2_accuracy import Fig2Cell, Fig2Result, run_fig2, train_source_model
from .fig3_latency import PAPER_FEASIBILITY, Fig3Result, Fig3Row, run_fig3
from .fleet_serving import FleetRunResult, roofline_comparison_rows, run_fleet
from .regression import RegressionReport, check_regressions
from .reporting import (
    format_markdown_table,
    format_table,
    load_json,
    merge_json_section,
    save_json,
)

__all__ = [
    "RunScale",
    "RUN_SCALES",
    "get_run_scale",
    "BENCHMARK_NAMES",
    "BACKBONES",
    "METHODS",
    "ADAPT_BATCH_SIZES",
    "PAPER_BEST_SOTA",
    "PAPER_BEST_LDBN",
    "PAPER_AVG_SOTA",
    "PAPER_AVG_LDBN",
    "CARLANE_SPLIT_SIZES",
    "run_fig1",
    "export_gallery",
    "Fig1Result",
    "DomainStats",
    "run_fig2",
    "train_source_model",
    "Fig2Result",
    "Fig2Cell",
    "run_fig3",
    "Fig3Result",
    "Fig3Row",
    "PAPER_FEASIBILITY",
    "run_fleet",
    "FleetRunResult",
    "roofline_comparison_rows",
    "run_param_census",
    "run_variant_comparison",
    "run_batch_size_ablation",
    "run_stats_mode_ablation",
    "run_sota_cost",
    "run_bench_infer",
    "run_bench_adapt",
    "run_bench_serve",
    "run_bench_thread_pricing",
    "check_thread_pricing",
    "run_bench_devices",
    "run_bench_scenarios",
    "check_scenarios",
    "recovery_spans",
    "QUICK_SCENARIOS",
    "check_slack_dominates",
    "check_device_scaling",
    "scaling_archive",
    "sustained_streams",
    "check_regressions",
    "RegressionReport",
    "VariantResult",
    "format_table",
    "format_markdown_table",
    "save_json",
    "load_json",
    "merge_json_section",
]
