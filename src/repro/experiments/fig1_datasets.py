"""FIG1 — the benchmark gallery / dataset statistics.

Fig. 1 of the paper shows example frames of the three CARLANE benchmarks
(source vs target domains).  Our reproduction renders the synthetic
equivalents and reports quantitative per-domain statistics that make the
domain shift visible in numbers instead of pictures: image mean/std,
luminance contrast, lane-point density, and label-presence fraction.

``export_gallery`` additionally dumps raw frames as ``.npy`` (viewable
with any numpy-aware tool) for qualitative inspection.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.benchmarks import get_benchmark_spec, make_benchmark
from ..models.registry import get_config
from ..models.ufld import UFLDConfig
from .config import BENCHMARK_NAMES, RunScale, get_run_scale


@dataclass(frozen=True)
class DomainStats:
    """Summary statistics of one benchmark split/domain."""

    benchmark: str
    split: str  # "source" | "target"
    domain: str
    num_frames: int
    image_mean: float
    image_std: float
    label_present_fraction: float
    lanes_per_frame: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "split": self.split,
            "domain": self.domain,
            "frames": self.num_frames,
            "image_mean": self.image_mean,
            "image_std": self.image_std,
            "label_present_fraction": self.label_present_fraction,
            "lanes_per_frame": self.lanes_per_frame,
        }


@dataclass
class Fig1Result:
    rows: List[DomainStats] = field(default_factory=list)

    def summary_rows(self) -> List[Dict[str, object]]:
        return [r.as_dict() for r in self.rows]

    def shift_magnitude(self, benchmark: str) -> float:
        """Absolute mean-luminance gap between source and target domains —
        a one-number proxy for the appearance shift BN adaptation corrects."""
        source = [r for r in self.rows if r.benchmark == benchmark and r.split == "source"]
        targets = [r for r in self.rows if r.benchmark == benchmark and r.split == "target"]
        if not source or not targets:
            raise KeyError(benchmark)
        return float(
            np.mean([abs(t.image_mean - source[0].image_mean) for t in targets])
        )


def _stats_for(dataset, benchmark: str, split: str, config: UFLDConfig) -> List[DomainStats]:
    rows = []
    domains = sorted(set(dataset.domains))
    for domain in domains:
        idx = [i for i, d in enumerate(dataset.domains) if d == domain]
        images = dataset.images[idx]
        labels = dataset.labels[idx]
        present = labels < config.num_cells
        lanes_per_frame = present.any(axis=1).sum(axis=1).mean()
        rows.append(
            DomainStats(
                benchmark=benchmark,
                split=split,
                domain=domain,
                num_frames=len(idx),
                image_mean=float(images.mean()),
                image_std=float(images.std()),
                label_present_fraction=float(present.mean()),
                lanes_per_frame=float(lanes_per_frame),
            )
        )
    return rows


def run_fig1(
    scale: Optional[RunScale] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    frames_per_split: int = 24,
) -> Fig1Result:
    """Generate small splits of each benchmark and summarize them."""
    scale = scale if scale is not None else get_run_scale()
    result = Fig1Result()
    for name in benchmarks:
        config = get_config(scale.preset("r18"))
        bench = make_benchmark(
            name,
            config,
            source_frames=frames_per_split,
            target_train_frames=frames_per_split,
            target_test_frames=frames_per_split,
            seed=scale.seed,
        )
        result.rows.extend(
            _stats_for(bench.source_train, name, "source", bench.config)
        )
        result.rows.extend(_stats_for(bench.target_test, name, "target", bench.config))
    return result


def export_gallery(
    out_dir: str,
    scale: Optional[RunScale] = None,
    frames_per_domain: int = 4,
) -> List[str]:
    """Dump example frames per benchmark/domain as .npy files.

    Returns the written paths.  Each file holds a (3, H, W) float32 image
    in [0, 1] — the reproduction's analogue of Fig. 1's photo strip.
    """
    scale = scale if scale is not None else get_run_scale()
    os.makedirs(out_dir, exist_ok=True)
    written = []
    for name in BENCHMARK_NAMES:
        config = get_config(scale.preset("r18"))
        bench = make_benchmark(
            name,
            config,
            source_frames=frames_per_domain,
            target_train_frames=frames_per_domain,
            target_test_frames=frames_per_domain,
            seed=scale.seed,
        )
        for split, dataset in (
            ("source", bench.source_train),
            ("target", bench.target_test),
        ):
            for i in range(min(frames_per_domain, len(dataset))):
                sample = dataset[i]
                path = os.path.join(
                    out_dir, f"{name}_{split}_{sample.domain}_{i}.npy"
                )
                np.save(path, sample.image)
                written.append(path)
    return written
