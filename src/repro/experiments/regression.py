"""Benchmark regression gate: diff latest results against the previous run.

Walks ``benchmarks/results/*.json``, extracts every p95 latency metric
(numeric leaves whose key contains ``"p95"``; the reference
``eager_*`` timings are excluded — the gate guards the serving path, not
the eager baseline it is measured against), and compares each against the
snapshot of the previous run stored in ``<results>/baseline/``.  A metric
more than ``threshold`` (default 10 %) slower fails the check.

On a passing run the baseline is refreshed to the current results, so the
next invocation diffs against *this* run; on failure the baseline is kept
(re-running won't hide the regression) unless ``update=True`` forces a
refresh.  ``benchmarks/check_regression.py`` is the CLI wrapper and
``python -m repro.experiments bench-infer`` exercises the whole loop.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .reporting import load_json

DEFAULT_THRESHOLD = 0.10
BASELINE_DIRNAME = "baseline"


def collect_p95_metrics(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten a JSON payload to ``{path: value}`` for p95 latency keys."""
    metrics: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                metrics.update(collect_p95_metrics(value, path))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                lowered = str(key).lower()
                if "p95" in lowered and "eager" not in lowered:
                    metrics[path] = float(value)
    elif isinstance(payload, list):
        for idx, item in enumerate(payload):
            metrics.update(collect_p95_metrics(item, f"{prefix}[{idx}]"))
    return metrics


@dataclass
class Regression:
    """One metric that got slower than the allowed threshold."""

    file: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def as_row(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "metric": self.metric,
            "baseline_ms": self.baseline,
            "current_ms": self.current,
            "slowdown": self.ratio,
        }


@dataclass
class RegressionReport:
    """Outcome of one regression check over a results directory."""

    results_dir: str
    threshold: float
    checked_files: List[str] = field(default_factory=list)
    new_files: List[str] = field(default_factory=list)  # no baseline yet
    metrics_compared: int = 0
    regressions: List[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        if not self.checked_files and not self.new_files:
            return f"no result files with p95 metrics under {self.results_dir}"
        parts = [
            f"{self.metrics_compared} p95 metric(s) across "
            f"{len(self.checked_files)} file(s) vs previous run"
        ]
        if self.new_files:
            parts.append(f"{len(self.new_files)} new file(s) baselined")
        if self.regressions:
            parts.append(
                f"{len(self.regressions)} regression(s) > "
                f"{self.threshold:.0%}"
            )
        else:
            parts.append("no regressions")
        return "; ".join(parts)


def check_regressions(
    results_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_dir: Optional[str] = None,
    update: bool = False,
) -> RegressionReport:
    """Compare ``results_dir/*.json`` p95 metrics to the stored baseline.

    Returns a :class:`RegressionReport`; refreshes the baseline snapshot
    when the check passes (or when ``update`` forces it).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    baseline_dir = baseline_dir or os.path.join(results_dir, BASELINE_DIRNAME)
    report = RegressionReport(results_dir=results_dir, threshold=threshold)
    if not os.path.isdir(results_dir):
        return report

    names = sorted(
        name
        for name in os.listdir(results_dir)
        if name.endswith(".json")
        and os.path.isfile(os.path.join(results_dir, name))
    )
    refresh: List[str] = []
    for name in names:
        current = collect_p95_metrics(load_json(os.path.join(results_dir, name)))
        if not current:
            continue  # no latency percentiles in this artifact
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.isfile(baseline_path):
            report.new_files.append(name)
            refresh.append(name)
            continue
        baseline = collect_p95_metrics(load_json(baseline_path))
        report.checked_files.append(name)
        refresh.append(name)
        for metric, value in sorted(current.items()):
            base = baseline.get(metric)
            if base is None:
                continue  # metric appeared; nothing to diff against
            report.metrics_compared += 1
            if base > 0 and value > base * (1.0 + threshold):
                report.regressions.append(
                    Regression(
                        file=name, metric=metric, baseline=base, current=value
                    )
                )

    if refresh and (report.ok or update):
        os.makedirs(baseline_dir, exist_ok=True)
        for name in refresh:
            shutil.copyfile(
                os.path.join(results_dir, name),
                os.path.join(baseline_dir, name),
            )
    return report
