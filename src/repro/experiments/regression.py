"""Benchmark regression gate: diff latest results against the previous run.

Walks ``benchmarks/results/*.json`` and gates two metric families against
the snapshot of the previous run stored in ``<results>/baseline/``:

* **latency** — numeric leaves whose key contains ``"p95"``: the
  inference engine (``infer_engine.json``), the compiled/fused adaptation
  step (``adapt_step.json``) and any fleet dashboard percentiles.  More
  than ``threshold`` (default 10 %) *slower* fails.
* **throughput** — leaves whose key contains ``"fps"`` or
  ``"frames_per_second"`` (``serve_throughput.json``).  More than
  ``threshold`` *lower* fails.

Reference measurements are excluded from gating — ``eager_*`` timings and
``serial_*`` throughputs are the baselines the serving path is measured
*against*, not the serving path itself.  ``*speedup*`` keys are also
excluded: they are ratios of two gated measurements, so gating them
double-counts (and compounds) the noise of both sides.

Uniform host drift is factored out per file: on shared hosts every
wall-clock metric moves together between runs, so each file's comparison
is normalized by the median worse-ness ratio across its gated metrics
(clamped to ``MAX_HOST_DRIFT``) — a single stage slowing *relative to
the rest of the run* still fails, a noisy neighbor lifting the whole run
~20% does not.  A *lone* flagged metric in an otherwise-clean file is
downgraded to a reported-but-non-fatal tail outlier below
``LONE_OUTLIER_CAP``: real code regressions hit the sibling rows that
exercise the same kernels, while a p95 excursion confined to one timing
series is one preemption landing badly.

On a passing run the baseline is refreshed to the current results, so the
next invocation diffs against *this* run; on failure the baseline is kept
(re-running won't hide the regression) unless ``update=True`` forces a
refresh.  ``benchmarks/check_regression.py`` is the CLI wrapper and
``python -m repro.experiments bench-infer`` / ``bench-adapt`` exercise
the whole loop.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .reporting import load_json

DEFAULT_THRESHOLD = 0.10
BASELINE_DIRNAME = "baseline"
# Uniform host drift is factored out per file (see _host_drift): the
# median worse-ness ratio across a file's gated metrics is treated as
# the machine moving, not the code — but never beyond this cap, so an
# across-the-board real regression larger than 25% still fails.
MAX_HOST_DRIFT = 0.25
MIN_DRIFT_METRICS = 4
# A single metric flagged in a file whose other metrics are clean is a
# p95 tail excursion (one preemption landing on one timing series), not
# a code regression — real regressions hit the sibling rows that share
# the same kernels.  Such lone outliers are reported but don't fail the
# gate, unless they exceed this drift-adjusted ratio: past 1.5x even an
# isolated metric is treated as real.
LONE_OUTLIER_CAP = 1.5


def _host_drift(
    current: Dict[str, Tuple[float, str]],
    baseline: Dict[str, Tuple[float, str]],
) -> float:
    """Estimate uniform host drift for one file: the median worse-ness
    ratio over its gated metrics, clamped to ``[1, 1 + MAX_HOST_DRIFT]``.

    A code regression slows *specific* metrics relative to the rest of
    the run; shared-host noise (CPU contention, frequency scaling) lifts
    every wall-clock metric together.  Dividing the gate's comparison by
    the file-wide median cancels the latter while leaving single-metric
    outliers — the signal — intact.  Files with fewer than
    ``MIN_DRIFT_METRICS`` comparable metrics get no correction (the
    median would be dominated by the very metric under test)."""
    ratios = []
    for metric, (value, family) in current.items():
        entry = baseline.get(metric)
        if entry is None or entry[0] <= 0 or value <= 0:
            continue
        base = entry[0]
        ratios.append(base / value if family == "throughput" else value / base)
    if len(ratios) < MIN_DRIFT_METRICS:
        return 1.0
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else 0.5 * (ratios[mid - 1] + ratios[mid])
    )
    return min(max(median, 1.0), 1.0 + MAX_HOST_DRIFT)


def classify_metric(key: str) -> Optional[str]:
    """Gate family for one JSON key: "latency", "throughput" or None."""
    lowered = str(key).lower()
    if "eager" in lowered or "serial" in lowered:
        return None  # reference measurements are not gated
    if "speedup" in lowered:
        # derived ratios of two gated measurements — both sides are
        # already gated individually, and the ratio compounds their noise
        return None
    if "p95" in lowered:
        return "latency"
    if "fps" in lowered or "frames_per_second" in lowered:
        return "throughput"
    return None


def collect_gated_metrics(
    payload: object, prefix: str = ""
) -> Dict[str, Tuple[float, str]]:
    """Flatten a JSON payload to ``{path: (value, family)}`` for gated keys."""
    metrics: Dict[str, Tuple[float, str]] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                metrics.update(collect_gated_metrics(value, path))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                family = classify_metric(key)
                if family is not None:
                    metrics[path] = (float(value), family)
    elif isinstance(payload, list):
        for idx, item in enumerate(payload):
            metrics.update(collect_gated_metrics(item, f"{prefix}[{idx}]"))
    return metrics


def collect_p95_metrics(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten a JSON payload to ``{path: value}`` for p95 latency keys."""
    return {
        path: value
        for path, (value, family) in collect_gated_metrics(payload, prefix).items()
        if family == "latency"
    }


@dataclass
class Regression:
    """One metric that got worse than the allowed threshold."""

    file: str
    metric: str
    baseline: float
    current: float
    family: str = "latency"  # "latency" (higher=worse) | "throughput"

    @property
    def ratio(self) -> float:
        """Degradation factor (> 1 means worse), family-aware."""
        if self.family == "throughput":
            return self.baseline / self.current if self.current else float("inf")
        return self.current / self.baseline if self.baseline else float("inf")

    def as_row(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "metric": self.metric,
            "family": self.family,
            "baseline": self.baseline,
            "current": self.current,
            "degradation": self.ratio,
        }


@dataclass
class RegressionReport:
    """Outcome of one regression check over a results directory."""

    results_dir: str
    threshold: float
    checked_files: List[str] = field(default_factory=list)
    new_files: List[str] = field(default_factory=list)  # no baseline yet
    metrics_compared: int = 0
    regressions: List[Regression] = field(default_factory=list)
    # lone per-file excursions under LONE_OUTLIER_CAP: reported, not fatal
    tail_outliers: List[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        if not self.checked_files and not self.new_files:
            return f"no result files with gated metrics under {self.results_dir}"
        parts = [
            f"{self.metrics_compared} gated metric(s) across "
            f"{len(self.checked_files)} file(s) vs previous run"
        ]
        if self.new_files:
            parts.append(f"{len(self.new_files)} new file(s) baselined")
        if self.tail_outliers:
            parts.append(
                f"{len(self.tail_outliers)} lone tail outlier(s) ignored"
            )
        if self.regressions:
            parts.append(
                f"{len(self.regressions)} regression(s) > "
                f"{self.threshold:.0%}"
            )
        else:
            parts.append("no regressions")
        return "; ".join(parts)


def check_regressions(
    results_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_dir: Optional[str] = None,
    update: bool = False,
) -> RegressionReport:
    """Compare ``results_dir/*.json`` p95 metrics to the stored baseline.

    Returns a :class:`RegressionReport`; refreshes the baseline snapshot
    when the check passes (or when ``update`` forces it).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    baseline_dir = baseline_dir or os.path.join(results_dir, BASELINE_DIRNAME)
    report = RegressionReport(results_dir=results_dir, threshold=threshold)
    if not os.path.isdir(results_dir):
        return report

    names = sorted(
        name
        for name in os.listdir(results_dir)
        if name.endswith(".json")
        and os.path.isfile(os.path.join(results_dir, name))
    )
    refresh: List[str] = []
    for name in names:
        current = collect_gated_metrics(load_json(os.path.join(results_dir, name)))
        if not current:
            continue  # no gated metrics in this artifact
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.isfile(baseline_path):
            report.new_files.append(name)
            refresh.append(name)
            continue
        baseline = collect_gated_metrics(load_json(baseline_path))
        report.checked_files.append(name)
        refresh.append(name)
        drift = _host_drift(current, baseline)
        flagged: List[Tuple[Regression, float]] = []
        compared_in_file = 0
        for metric, (value, family) in sorted(current.items()):
            base_entry = baseline.get(metric)
            if base_entry is None:
                continue  # metric appeared; nothing to diff against
            base = base_entry[0]
            report.metrics_compared += 1
            if base <= 0:
                continue
            compared_in_file += 1
            worse_ratio = (
                (base / value if family == "throughput" else value / base)
                if value > 0
                else float("inf")
            )
            if worse_ratio > drift * (1.0 + threshold):
                flagged.append(
                    (
                        Regression(
                            file=name, metric=metric, baseline=base,
                            current=value, family=family,
                        ),
                        worse_ratio / drift,
                    )
                )
        if (
            len(flagged) == 1
            and compared_in_file >= MIN_DRIFT_METRICS
            and flagged[0][1] < LONE_OUTLIER_CAP
        ):
            # one metric moved while every sibling sharing its kernels
            # stayed put: a tail excursion, not a code regression
            report.tail_outliers.append(flagged[0][0])
        else:
            report.regressions.extend(reg for reg, _ in flagged)

    if refresh and (report.ok or update):
        os.makedirs(baseline_dir, exist_ok=True)
        for name in refresh:
            shutil.copyfile(
                os.path.join(results_dir, name),
                os.path.join(baseline_dir, name),
            )
    return report
