"""SCENARIO MATRIX — drift-aware adaptation resets across shift schedules.

Serves every named scenario in :data:`repro.data.SCENARIOS` through the
simulated-Orin fleet twice — once with drift detection + adaptation
resets enabled (``reset``) and once without (``none``) — and reports,
per (scenario, policy) pair:

* frame-weighted lane **accuracy** and deadline **miss rate**;
* the drift counters (alarms, resets applied, cluster warm-starts);
* **recovery_frames** — the mean number of frames after each scheduled
  shift until rolling accuracy returns to within
  :data:`RECOVERY_FRACTION` of that segment's own settled level (the
  mean over the segment's last :data:`RECOVERY_WINDOW` frames, i.e. the
  freshly-adapted baseline).  A shift whose segment never recovers is
  censored at the segment length.

:func:`check_scenarios` asserts the acceptance claims: the detector
fires on every scheduled-shift scenario and never on the stationary
control, resets never cost more than :data:`ACCURACY_TOLERANCE` mean
accuracy, recurring scenarios warm-start from the cluster bank, and at
least one scenario recovers strictly faster with resets than without.

Everything is simulated and seeded (scenario streams derive per-stream
seeds via ``utils.rng.child_seed``), so every row is exactly
reproducible and safe to regression-gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..adapt import LDBNAdaptConfig
from ..data import ScenarioStream, get_scenario
from ..data.benchmarks import make_benchmark
from ..data.domains import SCENARIOS
from ..hw.device import get_power_mode
from ..models.registry import get_config
from ..serve import DriftResetConfig, FleetConfig, FleetServer
from ..utils.logging import Logger
from .config import RunScale, get_run_scale
from .fig2_accuracy import train_source_model

log = Logger("bench-scenarios")

#: the 3-scenario subset the CI smoke lane runs (one novel cut, one
#: recurring oscillation exercising the cluster bank, one compound
#: degradation)
QUICK_SCENARIOS = ("night_cut", "tunnel_strobe", "fog_glare")

#: adaptation cadence of the study: long enough that a shift landing
#: mid-stride leaves the no-reset policy serving stale statistics for
#: several frames — the gap the drift reset exists to close
ADAPT_STRIDE = 12

#: recovery metric: rolling window length, and the fraction of the
#: segment's settled accuracy that counts as "recovered"
RECOVERY_WINDOW = 4
RECOVERY_FRACTION = 0.95

#: resets may not cost more than this much mean accuracy on any scenario
ACCURACY_TOLERANCE = 0.05

#: display order of the matrix table
COLUMNS = (
    "scenario", "policy", "frames", "accuracy", "miss_rate",
    "drift_events", "drift_resets", "cluster_restores",
    "shifts", "recovery_frames", "fleet_fps",
)


def _prepare(scale: RunScale):
    benchmark = make_benchmark(
        "molane",
        get_config(scale.preset("r18")),
        source_frames=scale.source_frames,
        target_train_frames=2,
        target_test_frames=2,
        seed=scale.seed,
    )
    model = train_source_model(benchmark, "r18", scale)
    return benchmark, model


def _serve_scenario(
    model,
    pristine,
    scale: RunScale,
    scenario_name: str,
    num_streams: int,
    num_ticks: int,
    drift: Optional[DriftResetConfig],
):
    model.load_state_dict(pristine)
    scenario = get_scenario(scenario_name)
    render_config = get_config(
        scale.preset("r18"), num_lanes=model.config.num_lanes
    )
    server = FleetServer(
        model,
        FleetConfig(
            latency_model="orin", adapt_stride=ADAPT_STRIDE, drift=drift
        ),
        device=get_power_mode("orin-60w"),
        spec=get_config("paper-r18").to_spec(),
    )
    for i in range(num_streams):
        frames = (
            ScenarioStream(
                scenario,
                render_config,
                seed=scale.seed,
                stream_id=f"s{i}",
                horizon=num_ticks,
            )
            .take(num_ticks)
            .samples
        )
        server.add_stream(
            f"s{i}", iter(frames), adapter_config=LDBNAdaptConfig(lr=scale.adapt_lr)
        )
    return server.run(num_ticks)


def recovery_spans(
    accuracies: Sequence[float], shift_frames: Sequence[int], horizon: int
) -> List[int]:
    """Frames-to-recovery for each scheduled shift in one stream.

    For a shift at ``s`` whose segment runs to the next shift (or the
    horizon), the settled baseline is the mean accuracy over the
    segment's last :data:`RECOVERY_WINDOW` frames; recovery is the first
    frame index ``i >= s`` whose forward rolling window meets
    :data:`RECOVERY_FRACTION` of it.  A segment that never recovers is
    censored at its own length.  Segments shorter than the window are
    skipped (no settled baseline to measure against).
    """
    acc = np.asarray(accuracies, dtype=np.float64)
    spans: List[int] = []
    boundaries = list(shift_frames) + [horizon]
    for pos, start in enumerate(shift_frames):
        end = boundaries[pos + 1]
        if end - start < RECOVERY_WINDOW or end > len(acc):
            continue
        settled = float(acc[end - RECOVERY_WINDOW : end].mean())
        target = RECOVERY_FRACTION * settled
        span = end - start  # censored
        for i in range(start, end - RECOVERY_WINDOW + 1):
            if float(acc[i : i + RECOVERY_WINDOW].mean()) >= target:
                span = i - start
                break
        spans.append(span)
    return spans


def _matrix_row(
    scenario_name: str,
    policy: str,
    report,
    scale: RunScale,
    num_ticks: int,
) -> Dict[str, object]:
    scenario = get_scenario(scenario_name)
    spans: List[int] = []
    for sid, stream_report in report.stream_reports.items():
        phase = scenario.phase_offset(scale.seed, sid)
        shifts = scenario.shift_frames(phase, num_ticks)
        accuracies = [f.accuracy for f in stream_report.frames]
        spans.extend(recovery_spans(accuracies, shifts, num_ticks))
    return {
        "scenario": scenario_name,
        "policy": policy,
        "frames": report.total_frames,
        "accuracy": report.mean_accuracy,
        "miss_rate": report.deadline_miss_rate,
        "drift_events": report.total_drift_events,
        "drift_resets": report.total_drift_resets,
        "cluster_restores": report.total_drift_cluster_restores,
        "shifts": len(spans),
        "recovery_frames": float(np.mean(spans)) if spans else 0.0,
        "fleet_fps": report.frames_per_second,
    }


def run_bench_scenarios(
    scale: Optional[RunScale] = None,
    scenario_names: Optional[Sequence[str]] = None,
    num_streams: int = 2,
    num_ticks: int = 48,
) -> List[Dict[str, object]]:
    """Serve the scenario matrix; returns table-ready rows.

    Each scenario is served twice from the same pristine source model:
    ``none`` (no drift detection — recovery waits for the stride-granted
    adaptation step) and ``reset`` (signature-CUSUM alarms trigger
    immediate adaptation resets with cluster warm-starts).
    """
    scale = scale if scale is not None else get_run_scale()
    names = tuple(scenario_names) if scenario_names else tuple(sorted(SCENARIOS))
    _, model = _prepare(scale)
    pristine = model.state_dict()

    rows: List[Dict[str, object]] = []
    for name in names:
        for policy, drift in (("none", None), ("reset", DriftResetConfig())):
            log.info("bench-scenarios: %s / %s", name, policy)
            report = _serve_scenario(
                model, pristine, scale, name, num_streams, num_ticks, drift
            )
            rows.append(_matrix_row(name, policy, report, scale, num_ticks))
    return rows


def check_scenarios(rows: List[Dict[str, object]]) -> None:
    """Assert the scenario-matrix acceptance claims over one run."""
    by = {(str(r["scenario"]), str(r["policy"])): r for r in rows}
    names = sorted({str(r["scenario"]) for r in rows})
    for name in names:
        assert (name, "none") in by and (name, "reset") in by, (
            f"scenario {name} is missing a policy row"
        )
        none_row, reset_row = by[(name, "none")], by[(name, "reset")]
        scheduled = bool(get_scenario(name).events)
        if scheduled:
            assert reset_row["drift_events"] >= 1, (
                f"{name}: no drift alarm fired on a scheduled shift",
                reset_row,
            )
        else:
            assert reset_row["drift_events"] == 0, (
                f"{name}: false drift alarm on the stationary control",
                reset_row,
            )
        assert (
            reset_row["accuracy"] >= none_row["accuracy"] - ACCURACY_TOLERANCE
        ), (f"{name}: resets cost accuracy", reset_row, none_row)
    recurring = [n for n in names if n in ("tunnel_strobe", "fog_bank")]
    if recurring:
        assert any(by[(n, "reset")]["cluster_restores"] >= 1 for n in recurring), (
            "no recurring scenario warm-started from the cluster bank",
            [by[(n, "reset")] for n in recurring],
        )
    shifted = [
        n
        for n in names
        if get_scenario(n).events and by[(n, "reset")]["shifts"]
    ]
    assert any(
        by[(n, "reset")]["recovery_frames"] < by[(n, "none")]["recovery_frames"]
        for n in shifted
    ), (
        "drift resets never recovered faster than stride-waiting",
        [(by[(n, "reset")], by[(n, "none")]) for n in shifted],
    )
