"""FLEET — multi-stream fleet serving with heterogeneous domain shift.

The scenario the single-vehicle pipeline cannot express: N vehicles share
one model (and one device), each driving its own domain schedule — e.g.
one on the MoLane model-vehicle track, one on the TuSimple highway, one
mid-transition between the two.  Each stream keeps private LD-BN-ADAPT
state; inference is batched across streams by the deadline-aware
scheduler.

:func:`run_fleet` trains one source model at the chosen run scale, builds
a heterogeneous stream per vehicle, serves ``num_frames`` fleet ticks on
the simulated Jetson Orin, and reports per-stream accuracy plus the fleet
latency/deadline dashboard, alongside the roofline comparison of batched
vs. N-serial per-frame cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..adapt import LDBNAdaptConfig
from ..data.benchmarks import make_benchmark
from ..data.dataset import FrameStream
from ..data.domains import MODEL_VEHICLE, TUSIMPLE_HIGHWAY
from ..hw.device import build_device_pool, get_power_mode
from ..hw.roofline import batched_inference_latency_ms, ld_bn_adapt_latency
from ..models.registry import get_config
from ..serve import (
    AdmissionConfig,
    CheckpointConfig,
    FaultSchedule,
    FleetConfig,
    FleetReport,
    FleetServer,
    MigrationConfig,
)
from ..telemetry import SpanTracer
from ..utils.logging import Logger
from .config import RunScale, get_run_scale
from .fig2_accuracy import train_source_model

log = Logger("fleet")

#: the three canonical vehicle profiles, cycled over the fleet
_DOMAIN_SCHEDULES = (
    ("model_vehicle", (MODEL_VEHICLE,), (2,)),
    ("tusimple_highway", (TUSIMPLE_HIGHWAY,), (4,)),
    # mid-shift: the stream flips between both targets every few seconds
    ("mid_shift", (MODEL_VEHICLE, TUSIMPLE_HIGHWAY), (2, 4)),
)


@dataclass
class FleetRunResult:
    """Fleet report plus table-ready rows."""

    report: FleetReport
    scale_name: str
    power_mode: str
    adapt_stride: int
    admission: str = "stride"  # "stride" (static) | "slack"
    jitter_ms: float = 0.0
    drop_rate: float = 0.0
    devices: int = 1
    placement: str = "least_loaded"
    pool: Optional[str] = None  # explicit heterogeneous pool, if any
    faults: Optional[str] = None  # fault-schedule spec, if any
    domain_schedules: Dict[str, str] = field(default_factory=dict)

    def per_stream_rows(self) -> List[Dict[str, object]]:
        rows = self.report.per_stream_rows()
        for row in rows:
            row["domains"] = self.domain_schedules.get(str(row["stream"]), "?")
        return rows

    def summary_rows(self) -> List[Dict[str, object]]:
        summary = self.report.summary()
        summary["power_mode"] = self.pool if self.pool else self.power_mode
        summary["admission"] = self.admission
        summary["adapt_stride"] = float(self.adapt_stride)
        summary["jitter_ms"] = float(self.jitter_ms)
        summary["drop_rate"] = float(self.drop_rate)
        summary["placement"] = self.placement
        return [summary]

    def per_device_rows(self) -> List[Dict[str, object]]:
        return self.report.per_device_rows()


def roofline_comparison_rows(
    num_streams: int,
    power_mode: str = "orin-60w",
    backbone_preset: str = "paper-r18",
    adapt_stride: int = 1,
) -> List[Dict[str, object]]:
    """Modeled per-tick cost: batched fleet vs. N time-sliced serial loops.

    Both alternatives share ONE device; the batched fleet runs the N
    inference passes of a camera period as one batch AND fuses the
    same-phase adaptation steps into one grouped training pass (per
    :mod:`repro.serve.adapt_batch`), while the serial alternative pays N
    individual passes of each.  With ``adapt_stride > 1`` the server
    staggers adaptation phases, so on average ``N / stride`` streams
    step per tick — that average group is what the batched row fuses.
    """
    spec = get_config(backbone_preset).to_spec()
    device = get_power_mode(power_mode)
    step_ms = ld_bn_adapt_latency(spec, device, 1).adaptation_ms
    adapting_per_tick = num_streams / adapt_stride
    fused_size = max(1, round(adapting_per_tick))
    fused_step_ms = ld_bn_adapt_latency(spec, device, fused_size).adaptation_ms
    serial_infer = num_streams * batched_inference_latency_ms(spec, device, 1)
    batched_infer = batched_inference_latency_ms(spec, device, num_streams)
    serial_adapt = adapting_per_tick * step_ms
    batched_adapt = fused_step_ms * (adapting_per_tick / fused_size)
    rows = []
    for label, infer_ms, adapt_ms in (
        ("serial", serial_infer, serial_adapt),
        ("batched", batched_infer, batched_adapt),
    ):
        tick_ms = infer_ms + adapt_ms
        rows.append(
            {
                "mode": label,
                "streams": num_streams,
                "inference_ms_per_tick": infer_ms,
                "adaptation_ms_per_tick": adapt_ms,
                "tick_ms": tick_ms,
                "frames_per_second": 1e3 * num_streams / tick_ms,
            }
        )
    return rows


def run_fleet(
    scale: Optional[RunScale] = None,
    num_streams: int = 3,
    num_frames: int = 45,
    power_mode: str = "orin-60w",
    adapt_stride: int = 1,
    max_batch_size: int = 8,
    jitter_ms: float = 0.0,
    drop_rate: float = 0.0,
    phase_spread_ms: float = 0.0,
    admission: str = "stride",
    devices: int = 1,
    placement: str = "least_loaded",
    pool: Optional[str] = None,
    migrate: bool = False,
    faults: Optional[object] = None,
    checkpoint_interval: Optional[int] = None,
    checkpoint_mode: str = "sync",
    tracer: Optional[SpanTracer] = None,
    backend: str = "numpy",
    threads: Optional[int] = None,
) -> FleetRunResult:
    """Train a source model and serve a heterogeneous fleet from it.

    ``jitter_ms``/``drop_rate``/``phase_spread_ms`` shape the per-stream
    arrival processes; ``admission="slack"`` swaps the static
    ``adapt_stride`` stagger for the slack-driven admission controller.
    ``devices`` shards the fleet across a pool of ``power_mode`` devices
    placed by ``placement``; ``pool`` overrides it with an explicit
    (possibly heterogeneous) comma list like ``"orin-60w,orin-30w"``,
    and ``migrate`` lets sessions move off sustained-hot devices.
    ``faults`` injects a deterministic failure schedule — either a
    :class:`~repro.serve.FaultSchedule` or its spec string, e.g.
    ``"crash@400:0,join@600:orin-30w"``; a schedule with crashes implies
    checkpointing (interval 8 unless ``checkpoint_interval`` overrides
    it).  ``checkpoint_interval``/``checkpoint_mode`` enable the session
    checkpoint store on their own — with no faults scheduled the run is
    bitwise identical to an uncheckpointed one.
    ``tracer`` collects per-frame spans and fleet events for the Chrome
    trace export and the telemetry dashboard; serving results are
    bitwise identical with or without it.  ``backend`` selects the plan
    backend the pool serves and adapts with (numpy / cgen / cgen-strict);
    ``threads`` widens the codegen kernel pool AND re-prices the roofline
    model (scheduler/admission see the faster device honestly).
    """
    if num_streams < 1:
        raise ValueError(f"num_streams must be >= 1, got {num_streams}")
    if admission not in ("stride", "slack"):
        raise ValueError(f"unknown admission policy {admission!r}")
    if isinstance(faults, str):
        faults = FaultSchedule.parse(faults) if faults else None
    checkpoint = None
    if checkpoint_interval is not None:
        checkpoint = CheckpointConfig(
            interval_frames=checkpoint_interval, mode=checkpoint_mode
        )
    elif faults is not None and faults.crash_count:
        # a crash without a store would be rejected by FleetConfig;
        # default to the standard interval so the CLI stays one-flag
        checkpoint = CheckpointConfig(mode=checkpoint_mode)
    scale = scale if scale is not None else get_run_scale()
    device_pool = build_device_pool(pool) if pool else None
    if device_pool is not None:
        devices = len(device_pool)

    # one 4-slot source model serves every vehicle (2-lane scenes live in
    # the inner slots, exactly like MuLane's label space)
    benchmark = make_benchmark(
        "mulane",
        get_config(scale.preset("r18")),
        source_frames=scale.source_frames,
        target_train_frames=2,  # unused by the fleet; keep the build cheap
        target_test_frames=2,
        seed=scale.seed,
    )
    log.info("fleet: training shared source model (%s)", scale.name)
    model = train_source_model(benchmark, "r18", scale)

    device = get_power_mode(power_mode)
    spec = get_config("paper-r18").to_spec()
    server = FleetServer(
        model,
        FleetConfig(
            latency_model="orin",
            adapt_stride=adapt_stride,
            max_batch_size=max_batch_size,
            jitter_ms=jitter_ms,
            drop_rate=drop_rate,
            phase_spread_ms=phase_spread_ms,
            arrival_seed=scale.seed,
            admission=AdmissionConfig() if admission == "slack" else None,
            devices=devices,
            placement=placement,
            migration=MigrationConfig() if migrate else None,
            checkpoint=checkpoint,
            faults=faults,
            backend=backend,
            threads=threads,
        ),
        device=device,
        spec=spec,
        device_pool=device_pool,
        tracer=tracer,
    )

    schedules: Dict[str, str] = {}
    for i in range(num_streams):
        name, domains, scene_lanes = _DOMAIN_SCHEDULES[i % len(_DOMAIN_SCHEDULES)]
        stream_id = f"vehicle-{i}-{name}"
        stream = FrameStream(
            domains=domains,
            config=benchmark.config,
            rng=np.random.default_rng(scale.seed + 1000 + i),
            scene_lanes_per_domain=scene_lanes,
            switch_every=max(num_frames // 3, 1),
        )
        server.add_stream(
            stream_id, stream, adapter_config=LDBNAdaptConfig(lr=scale.adapt_lr)
        )
        schedules[stream_id] = "+".join(d.name for d in domains)

    log.info(
        "fleet: serving %d streams for %d ticks on %d x %s",
        num_streams,
        num_frames,
        devices,
        pool if pool else power_mode,
    )
    report = server.run(num_frames)
    return FleetRunResult(
        report=report,
        scale_name=scale.name,
        power_mode=power_mode,
        adapt_stride=adapt_stride,
        admission=admission,
        jitter_ms=jitter_ms,
        drop_rate=drop_rate,
        devices=devices,
        placement=placement,
        pool=pool,
        faults=faults.spec() if faults is not None else None,
        domain_schedules=schedules,
    )
