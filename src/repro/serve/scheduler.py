"""Deadline-aware dynamic batching for fleet serving.

Pending frames from many streams are grouped into shared forward passes.
Bigger batches amortize per-layer launch overhead (see
:func:`repro.hw.roofline.batched_inference_latency_ms`), but a batch only
helps if it still completes inside its members' deadlines — so the
scheduler plans with the same roofline latency model the rest of the
repo uses:

* requests are ordered by **aged urgency**: slack to deadline minus an
  aging credit proportional to time already spent queued.  Pure EDF
  cannot starve a frame that carries a deadline, and the aging term
  additionally pulls long-waiting frames ahead of urgent newcomers, so
  no stream starves even when deadlines are already blown fleet-wide;
* the batch grows greedily in urgency order while the *modeled* batched
  latency still fits the earliest deadline in the batch (and the batch
  stays under ``max_batch_size``);
* an already-doomed head-of-queue frame (deadline unmeetable even at
  batch size 1) is still served immediately and recorded as a miss —
  shedding it would silently starve its stream.

Besides inference batches, the scheduler module also plans *adaptation*
batching: :func:`plan_adaptation_groups` partitions the streams due for
an adaptation step this tick into same-key groups that the server fuses
into one grouped compiled step (see :mod:`repro.serve.adapt_batch`),
leaving the rest to step serially.

The scheduler is pure logic over :class:`FrameRequest` objects; it never
touches the model, so it is unit-testable with synthetic latency
functions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

#: planning latency (ms) for a batch of size b; None = batching is free
LatencyFn = Optional[Callable[[int], float]]


@dataclass
class FrameRequest:
    """One frame waiting for a slot in a shared forward pass."""

    stream_id: str
    frame_index: int
    arrival_ms: float  # fleet-clock time the frame became available
    deadline_ms: float  # absolute fleet-clock deadline
    payload: object = None  # opaque to the scheduler (the server's frame)

    def slack_ms(self, now_ms: float) -> float:
        """Time remaining until this frame's deadline (negative = late)."""
        return self.deadline_ms - now_ms

    def wait_ms(self, now_ms: float) -> float:
        """Time this frame has already spent queued."""
        return now_ms - self.arrival_ms


@dataclass(frozen=True)
class BatchPlan:
    """One planned shared forward pass."""

    requests: Tuple[FrameRequest, ...]
    planned_latency_ms: float

    @property
    def batch_size(self) -> int:
        return len(self.requests)


class DeadlineAwareScheduler:
    """Groups pending frames into deadline-feasible shared batches."""

    def __init__(
        self,
        latency_fn: LatencyFn = None,
        max_batch_size: int = 8,
        aging_rate: float = 0.1,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0, got {aging_rate}")
        self.latency_fn = latency_fn
        self.max_batch_size = max_batch_size
        self.aging_rate = aging_rate
        self._pending: List[FrameRequest] = []

    # ------------------------------------------------------------------
    def submit(self, request: FrameRequest) -> None:
        """Queue one frame for an upcoming batch."""
        self._pending.append(request)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def pending_stream_ids(self) -> set:
        """Stream ids with at least one queued frame."""
        return {r.stream_id for r in self._pending}

    def extract_stream(self, stream_id: str) -> List[FrameRequest]:
        """Remove and return the stream's queued frames, in queue order.

        Device-pool migration re-homes a session's backlog with it: the
        extracted requests are re-submitted to the target device's
        scheduler with arrival timestamps and deadlines intact, so no
        frame is lost or double-served by the move.
        """
        extracted = [r for r in self._pending if r.stream_id == stream_id]
        self._pending = [r for r in self._pending if r.stream_id != stream_id]
        return extracted

    @property
    def earliest_pending_arrival_ms(self) -> Optional[float]:
        """Arrival time of the oldest queued frame; None when idle.

        The event-driven ingest launches its next batch at
        ``max(device_free, earliest_pending_arrival_ms)`` — a batch can
        start the instant the device frees up, *between* camera ticks,
        rather than waiting for a synchronous cohort.
        """
        if not self._pending:
            return None
        return min(r.arrival_ms for r in self._pending)

    def effective_priority(self, request: FrameRequest, now_ms: float) -> float:
        """Aged urgency — smaller is served first.

        ``slack - aging_rate * wait``: plain earliest-deadline-first with a
        credit for time already queued.  With ``aging_rate > 0`` a frame's
        priority decreases without bound while it waits, so it eventually
        outranks every newer frame regardless of deadlines.
        """
        return request.slack_ms(now_ms) - self.aging_rate * request.wait_ms(now_ms)

    def _planned_latency(self, batch_size: int) -> float:
        return self.latency_fn(batch_size) if self.latency_fn is not None else 0.0

    def next_batch(self, now_ms: float) -> Optional[BatchPlan]:
        """Pop the next batch to launch at ``now_ms``; None when idle.

        The most urgent request seeds the batch; requests join in urgency
        order while the grown batch's modeled completion time still meets
        every member's deadline.  Growth stops at the first infeasible
        candidate (modeled latency is monotone in batch size, so later,
        even-less-urgent candidates cannot help the constraint).

        When even a batch of one cannot meet the seed's deadline the miss
        is unavoidable, so the deadline constraint has nothing left to
        protect — the scheduler flips to throughput mode and fills the
        batch to ``max_batch_size``, amortizing overhead to drain the
        backlog (and bound future lateness) as fast as possible.
        """
        if not self._pending:
            return None
        order = sorted(
            self._pending, key=lambda r: self.effective_priority(r, now_ms)
        )
        batch: List[FrameRequest] = [order[0]]
        min_deadline = order[0].deadline_ms
        doomed = now_ms + self._planned_latency(1) > min_deadline
        for candidate in order[1:]:
            size = len(batch) + 1
            if size > self.max_batch_size:
                break
            grown_deadline = min(min_deadline, candidate.deadline_ms)
            if not doomed and now_ms + self._planned_latency(size) > grown_deadline:
                break
            batch.append(candidate)
            min_deadline = grown_deadline
        chosen = {id(r) for r in batch}
        self._pending = [r for r in self._pending if id(r) not in chosen]
        return BatchPlan(
            requests=tuple(batch),
            planned_latency_ms=self._planned_latency(len(batch)),
        )


def plan_adaptation_groups(
    candidates: Sequence[Tuple[object, object]],
    min_group_size: int = 2,
) -> Tuple[List[List[object]], List[object]]:
    """Partition adaptation-step candidates into fused groups.

    ``candidates`` is a sequence of ``(key, item)`` pairs in serving
    order; ``key`` is a hashable batching key (items only fuse when keys
    are equal) or None for items that must step serially.  Returns
    ``(groups, serial)``: ``groups`` is a list of same-key item lists of
    at least ``min_group_size`` members, ``serial`` the remaining items
    — both preserving the original order.  Pure logic, no model access:
    the server decides *what* is fusable (via the batcher's key), this
    decides *which* steps share a fused replay.
    """
    if min_group_size < 2:
        raise ValueError(
            f"min_group_size must be >= 2, got {min_group_size}"
        )
    by_key: "OrderedDict[object, List[object]]" = OrderedDict()
    order: List[Tuple[object, object]] = []
    for key, item in candidates:
        order.append((key, item))
        if key is not None:
            by_key.setdefault(key, []).append(item)
    grouped_ids = set()
    groups: List[List[object]] = []
    for key, items in by_key.items():
        if len(items) >= min_group_size:
            groups.append(items)
            grouped_ids.update(id(item) for item in items)
    serial = [item for _, item in order if id(item) not in grouped_ids]
    return groups, serial
