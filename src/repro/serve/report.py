"""Fleet-level aggregation of per-stream serving reports.

A fleet run produces one :class:`~repro.pipeline.monitor.PipelineReport`
per stream (the same record type the single-vehicle pipeline emits, so
per-stream numbers are directly comparable to serial
:class:`~repro.pipeline.RealTimePipeline` baselines).  This module rolls
them up into what a serving operator watches: tail latency (p50/p95/p99)
and deadline-slack percentiles across the whole fleet, per-stream
accuracy, deadline-miss rate, queue depth at batch launch, adaptation
admission grants/skips, in-flight frame drops, sustained throughput
against the serial alternative, and — for device pools — one
:class:`DeviceReport` row per pool member (utilization, queue depth,
session count, migrations) plus the migration event log.

The fleet-wide distributions are **streaming sketches**
(:class:`~repro.telemetry.Histogram`, DDSketch-style): device workers
record each frame's latency / slack / adaptation cost and each batch's
size / queue depth into mergeable O(1)-memory histograms as they serve,
so the fleet aggregate never holds a per-frame Python list and a
million-frame run reports percentiles in constant memory.  Per-stream
``PipelineReport`` records stay exact — they are bounded by one
stream's length and the bitwise parity guards diff them directly.

Every percentile family keeps the shared convention of
:func:`repro.telemetry.sketch.exact_percentile`: ``q`` in [0, 100],
0.0 for empty windows — a stream that never received an adaptation
grant, a run with no fused steps — instead of raising.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..pipeline.monitor import PipelineReport
from ..telemetry.metrics import Histogram


@dataclass
class DeviceReport:
    """One device's share of a fleet serving run.

    ``utilization`` is modeled busy time over the run's makespan (how
    much of the pool's wall this device actually worked); ``streams``
    is the *final* placement — sessions that migrated away mid-run show
    up in ``migrations_out`` instead.
    """

    device: str
    streams: List[str] = field(default_factory=list)
    frames_served: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    busy_ms: float = 0.0
    utilization: float = 0.0
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    alive: bool = True
    crashed_ms: Optional[float] = None  # death time on the fleet clock
    joined_ms: float = 0.0  # 0 = pool member since launch

    def as_row(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "streams": len(self.streams),
            "frames": self.frames_served,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "busy_ms": self.busy_ms,
            "utilization": self.utilization,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "migrations_in": self.migrations_in,
            "migrations_out": self.migrations_out,
            "alive": self.alive,
            "joined_ms": self.joined_ms,
        }


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet serving run.

    ``elapsed_ms`` is the makespan on the run's latency clock: simulated
    device time in ``"orin"`` mode, measured host time in ``"wallclock"``
    mode.  Throughput derives from it, so batched-vs-serial comparisons
    stay within one clock.

    The distribution-valued fields (``batch_sizes``,
    ``adapt_batch_sizes``, ``queue_depths`` and the ``*_histogram``
    family) are streaming sketches, populated by the device workers
    while serving; ``latency_percentile`` and friends read from them.
    ``Histogram`` keeps a list-like surface (length, truthiness,
    equality against a plain sequence), so existing call sites read
    unchanged.
    """

    deadline_ms: float
    latency_model: str = "orin"
    elapsed_ms: float = 0.0
    batch_sizes: Histogram = field(default_factory=Histogram)
    adapt_batch_sizes: Histogram = field(default_factory=Histogram)  # fused steps
    queue_depths: Histogram = field(default_factory=Histogram)  # at batch launch
    latency_histogram: Histogram = field(default_factory=Histogram)  # per frame
    slack_histogram: Histogram = field(default_factory=Histogram)  # per frame
    adapt_histogram: Histogram = field(default_factory=Histogram)  # adapted frames
    accuracy_histogram: Histogram = field(default_factory=Histogram)  # per frame
    deadline_misses: int = 0
    admission_grants: Dict[str, int] = field(default_factory=dict)
    admission_skips: Dict[str, int] = field(default_factory=dict)
    dropped_frames: Dict[str, int] = field(default_factory=dict)
    stream_reports: "OrderedDict[str, PipelineReport]" = field(
        default_factory=OrderedDict
    )
    device_reports: List[DeviceReport] = field(default_factory=list)
    migration_events: List[Dict[str, object]] = field(default_factory=list)
    # elastic-pool outcome: injected faults, per-crash recovery records,
    # and the quantified cost of each crash (adapted-state frames rolled
    # back to the checkpoint + queued frames that died with the device)
    fault_events: List[Dict[str, object]] = field(default_factory=list)
    recovery_events: List[Dict[str, object]] = field(default_factory=list)
    frames_lost: Dict[str, int] = field(default_factory=dict)
    crash_dropped_frames: Dict[str, int] = field(default_factory=dict)
    checkpoint_writes: int = 0
    canary_probes: int = 0
    # drift detection outcome (per stream; empty when detection is off)
    drift_events: Dict[str, int] = field(default_factory=dict)
    drift_resets: Dict[str, int] = field(default_factory=dict)
    drift_cluster_restores: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_streams(self) -> int:
        return len(self.stream_reports)

    @property
    def total_frames(self) -> int:
        return sum(r.num_frames for r in self.stream_reports.values())

    def latency_percentile(self, q: float) -> float:
        """Fleet-wide per-frame latency percentile, ``q`` in [0, 100]."""
        return self.latency_histogram.percentile(q)

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_ms(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_histogram.mean

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of all served frames that missed their deadline."""
        served = self.latency_histogram.count
        if served == 0:
            return 0.0
        return self.deadline_misses / served

    @property
    def mean_accuracy(self) -> float:
        """Frame-weighted mean accuracy across the fleet."""
        return self.accuracy_histogram.mean

    @property
    def frames_per_second(self) -> float:
        """Sustained fleet throughput over the run's makespan."""
        if self.elapsed_ms <= 0:
            return 0.0
        return 1e3 * self.total_frames / self.elapsed_ms

    @property
    def mean_batch_size(self) -> float:
        return self.batch_sizes.mean

    @property
    def mean_adapt_batch_size(self) -> float:
        """Mean number of streams fused per grouped adaptation step."""
        return self.adapt_batch_sizes.mean

    def adaptation_percentile(self, q: float) -> float:
        """Fleet-wide adaptation-step latency percentile (adapted frames)."""
        return self.adapt_histogram.percentile(q)

    def slack_percentile(self, q: float) -> float:
        """Fleet-wide deadline-slack percentile (negative = missed).

        The low tail (p10) shows how hot the fleet runs, the signal the
        admission controller sheds adaptation on.
        """
        return self.slack_histogram.percentile(q)

    def queue_depth_percentile(self, q: float) -> float:
        """Percentile of pending-queue depth observed at batch launches."""
        return self.queue_depths.percentile(q)

    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depths.mean

    @property
    def max_queue_depth(self) -> int:
        return int(self.queue_depths.max)

    @property
    def total_admission_grants(self) -> int:
        return sum(self.admission_grants.values())

    @property
    def total_admission_skips(self) -> int:
        return sum(self.admission_skips.values())

    @property
    def admission_grant_rate(self) -> float:
        """Fraction of adaptation-admission decisions that granted."""
        total = self.total_admission_grants + self.total_admission_skips
        if total == 0:
            return 0.0
        return self.total_admission_grants / total

    @property
    def total_dropped_frames(self) -> int:
        return sum(self.dropped_frames.values())

    @property
    def adaptation_steps(self) -> int:
        """Adaptation steps actually taken across the fleet."""
        return sum(r.adaptation_steps for r in self.stream_reports.values())

    @property
    def adapting_streams(self) -> int:
        """Streams that took at least one adaptation step."""
        return sum(
            1 for r in self.stream_reports.values() if r.adaptation_steps > 0
        )

    @property
    def num_devices(self) -> int:
        """Devices in the serving pool (1 = the legacy single device)."""
        return max(len(self.device_reports), 1)

    @property
    def total_migrations(self) -> int:
        """Sessions moved between devices during the run."""
        return len(self.migration_events)

    @property
    def max_device_utilization(self) -> float:
        """Busy fraction of the pool's hottest device."""
        if not self.device_reports:
            return 0.0
        return max(d.utilization for d in self.device_reports)

    @property
    def crashes(self) -> int:
        """Devices that died during the run."""
        return sum(1 for e in self.fault_events if e.get("kind") == "crash")

    @property
    def device_joins(self) -> int:
        """Devices that joined the pool mid-run."""
        return sum(1 for e in self.fault_events if e.get("kind") == "join")

    @property
    def recoveries(self) -> int:
        """Sessions restored from checkpoints after a crash."""
        return len(self.recovery_events)

    @property
    def total_frames_lost(self) -> int:
        """Served frames whose adaptation effect was rolled back by crashes."""
        return sum(self.frames_lost.values())

    @property
    def total_crash_dropped_frames(self) -> int:
        """Queued frames that died with a crashed device."""
        return sum(self.crash_dropped_frames.values())

    @property
    def mean_recovery_latency_ms(self) -> float:
        """Mean crash-to-replacement latency across recovered sessions."""
        latencies = [
            e["recovery_latency_ms"]
            for e in self.recovery_events
            if "recovery_latency_ms" in e
        ]
        if not latencies:
            return 0.0
        return float(sum(latencies) / len(latencies))

    @property
    def total_drift_events(self) -> int:
        """Drift alarms fired across the fleet."""
        return sum(self.drift_events.values())

    @property
    def total_drift_resets(self) -> int:
        """Adaptation resets applied across the fleet."""
        return sum(self.drift_resets.values())

    @property
    def total_drift_cluster_restores(self) -> int:
        """Resets warm-started from a banked cluster state."""
        return sum(self.drift_cluster_restores.values())

    @property
    def per_stream_accuracy(self) -> Dict[str, float]:
        return {
            sid: report.mean_accuracy
            for sid, report in self.stream_reports.items()
        }

    @property
    def truncated_streams(self) -> List[str]:
        return [
            sid for sid, report in self.stream_reports.items() if report.truncated
        ]

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """The fleet dashboard row."""
        return {
            "streams": float(self.num_streams),
            "devices": float(self.num_devices),
            "frames": float(self.total_frames),
            "frames_per_second": self.frames_per_second,
            "mean_batch_size": self.mean_batch_size,
            "mean_accuracy": self.mean_accuracy,
            "mean_latency_ms": self.mean_latency_ms,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "deadline_ms": self.deadline_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "slack_p10_ms": self.slack_percentile(10),
            "slack_p50_ms": self.slack_percentile(50),
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": float(self.max_queue_depth),
            "adapt_p50_ms": self.adaptation_percentile(50),
            "adapt_p95_ms": self.adaptation_percentile(95),
            "mean_adapt_batch_size": self.mean_adapt_batch_size,
            "adaptation_steps": float(self.adaptation_steps),
            "adapting_streams": float(self.adapting_streams),
            "admission_grant_rate": self.admission_grant_rate,
            "dropped_frames": float(self.total_dropped_frames),
            "migrations": float(self.total_migrations),
            "max_device_utilization": self.max_device_utilization,
            "crashes": float(self.crashes),
            "recoveries": float(self.recoveries),
            "device_joins": float(self.device_joins),
            "frames_lost": float(self.total_frames_lost),
            "crash_dropped_frames": float(self.total_crash_dropped_frames),
            "checkpoint_writes": float(self.checkpoint_writes),
            "canary_probes": float(self.canary_probes),
            "drift_events": float(self.total_drift_events),
            "drift_resets": float(self.total_drift_resets),
            "drift_cluster_restores": float(self.total_drift_cluster_restores),
        }

    def per_device_rows(self) -> List[Dict[str, object]]:
        """One table row per pool device (load / queue / migrations)."""
        return [d.as_row() for d in self.device_reports]

    def per_stream_rows(self) -> List[Dict[str, object]]:
        """One table row per stream (accuracy / latency / misses)."""
        rows: List[Dict[str, object]] = []
        for sid, report in self.stream_reports.items():
            rows.append(
                {
                    "stream": sid,
                    "frames": report.num_frames,
                    "accuracy": report.mean_accuracy,
                    "mean_latency_ms": report.mean_latency_ms,
                    "p95_latency_ms": report.latency_percentile(95),
                    "miss_rate": report.deadline_miss_rate,
                    "adapt_steps": report.adaptation_steps,
                    "adapt_p50_ms": report.adaptation_percentile(50),
                    "adapt_p95_ms": report.adaptation_percentile(95),
                    "adapt_grants": self.admission_grants.get(sid, 0),
                    "adapt_skips": self.admission_skips.get(sid, 0),
                    "dropped": self.dropped_frames.get(sid, 0),
                    "truncated": report.truncated,
                }
            )
        return rows
