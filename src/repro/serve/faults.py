"""Deterministic fault injection for the device pool.

Real fleets run on preemptible capacity: devices die mid-run, stall on
thermal events, degrade under co-tenancy, and new capacity joins a
serving fleet that is already live.  This module describes those events
as *data* — a :class:`FaultSchedule` of timestamped :class:`FaultEvent`
records — which the coordinator drains through its event loop in global
time order, exactly like arrivals.  Because the schedule is plain data
(parsed from a spec string or generated from a seed), a faulted run is
replayable bitwise: the same schedule against the same fleet reproduces
the same crashes, the same recoveries and the same served outputs.

Event kinds
-----------
``crash``
    Device ``device`` dies at ``time_ms``.  Batches already committed on
    the simulated clock complete (the discrete-event simulation commits
    a batch atomically at launch), but the device never launches again;
    the coordinator's missed-completion watchdog detects the death at
    ``max(time_ms, device_free_ms)`` — the instant the device fails to
    pick up its next launch — and recovers its sessions from their
    checkpoints (see :mod:`repro.serve.checkpoint`).
``stall``
    Device ``device`` is unavailable for ``duration_ms`` starting at
    ``time_ms`` (thermal throttle, GC pause): its clock is pushed to at
    least ``time_ms + duration_ms`` and its queue builds in the
    meantime.
``slow``
    Device ``device``'s service times are multiplied by ``factor`` from
    ``time_ms`` on (sustained degradation).  Hosted sessions'
    adaptation prices are re-quoted so admission and placement see the
    new cost.
``join``
    A new device with power-mode ``profile`` joins the pool at
    ``time_ms``, its slack prior seeded from the roofline model so the
    migration planner can rebalance onto it immediately.

Spec strings (the ``--faults`` CLI flag) are comma-separated events::

    crash@400:0            device 0 dies at t=400ms
    stall@600:1:50         device 1 stalls for 50ms at t=600ms
    slow@600:1:1.5         device 1 slows by 1.5x from t=600ms
    join@800:orin-30w      an orin-30w device joins at t=800ms
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..utils.rng import make_rng

FAULT_KINDS = ("crash", "stall", "slow", "join")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` at ``time_ms`` on ``device``.

    ``device`` is the pool index (crash/stall/slow; unused for join),
    ``duration_ms`` the stall length, ``factor`` the slow-down
    multiplier, ``profile`` the joining device's power-mode name.
    """

    kind: str
    time_ms: float
    device: Optional[int] = None
    duration_ms: float = 0.0
    factor: float = 1.0
    profile: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {self.time_ms}")
        if self.kind in ("crash", "stall", "slow"):
            if self.device is None or self.device < 0:
                raise ValueError(
                    f"{self.kind} fault needs a non-negative device index"
                )
        if self.kind == "stall" and self.duration_ms <= 0:
            raise ValueError(
                f"stall needs duration_ms > 0, got {self.duration_ms}"
            )
        if self.kind == "slow" and self.factor <= 0:
            raise ValueError(f"slow needs factor > 0, got {self.factor}")
        if self.kind == "join" and not self.profile:
            raise ValueError("join needs a device profile name")

    def as_row(self) -> dict:
        """Report/trace-friendly dict of the event."""
        row = {"kind": self.kind, "time_ms": self.time_ms}
        if self.device is not None:
            row["device"] = self.device
        if self.kind == "stall":
            row["duration_ms"] = self.duration_ms
        if self.kind == "slow":
            row["factor"] = self.factor
        if self.profile is not None:
            row["profile"] = self.profile
        return row


class FaultSchedule:
    """A time-ordered, replayable sequence of :class:`FaultEvent`.

    Plain data: iterating yields events in (time, insertion) order, so
    the coordinator can drain the schedule like a second arrival stream.
    Equality and ``spec()`` round-trips make schedules easy to archive
    next to the benchmark rows they shaped.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()):
        order = sorted(
            range(len(events)), key=lambda i: (events[i].time_ms, i)
        )
        self.events: List[FaultEvent] = [events[i] for i in order]

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    @property
    def crash_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "crash")

    def spec(self) -> str:
        """The schedule re-rendered as a ``--faults`` spec string."""
        parts = []
        for e in self.events:
            if e.kind == "crash":
                parts.append(f"crash@{e.time_ms:g}:{e.device}")
            elif e.kind == "stall":
                parts.append(f"stall@{e.time_ms:g}:{e.device}:{e.duration_ms:g}")
            elif e.kind == "slow":
                parts.append(f"slow@{e.time_ms:g}:{e.device}:{e.factor:g}")
            else:
                parts.append(f"join@{e.time_ms:g}:{e.profile}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a comma-separated fault spec (see module docstring)."""
        events: List[FaultEvent] = []
        for raw in spec.split(","):
            part = raw.strip()
            if not part:
                continue
            try:
                head, _, rest = part.partition("@")
                kind = head.strip()
                fields = rest.split(":")
                time_ms = float(fields[0])
                if kind == "crash":
                    events.append(
                        FaultEvent("crash", time_ms, device=int(fields[1]))
                    )
                elif kind == "stall":
                    events.append(
                        FaultEvent(
                            "stall",
                            time_ms,
                            device=int(fields[1]),
                            duration_ms=float(fields[2]),
                        )
                    )
                elif kind == "slow":
                    events.append(
                        FaultEvent(
                            "slow",
                            time_ms,
                            device=int(fields[1]),
                            factor=float(fields[2]),
                        )
                    )
                elif kind == "join":
                    events.append(
                        FaultEvent("join", time_ms, profile=fields[1])
                    )
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except (IndexError, ValueError) as exc:
                raise ValueError(
                    f"bad fault spec {part!r} (expected e.g. 'crash@400:0', "
                    f"'stall@600:1:50', 'slow@600:1:1.5', "
                    f"'join@800:orin-30w'): {exc}"
                ) from None
        return cls(events)

    @classmethod
    def random(
        cls,
        seed: int,
        horizon_ms: float,
        devices: int,
        crashes: int = 1,
        joins: int = 0,
        join_profile: str = "orin-30w",
        margin: float = 0.2,
    ) -> "FaultSchedule":
        """A seeded schedule of ``crashes`` crashes and ``joins`` joins.

        Event times are drawn uniformly from the middle
        ``(margin, 1 - margin)`` band of ``horizon_ms`` (faults at the
        very start or end of a run exercise nothing), crash devices
        uniformly from the pool.  The same ``seed`` always yields the
        same schedule — the replayability contract is seeded data, not
        seeded execution.
        """
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        if not 0.0 <= margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {margin}")
        rng = make_rng(seed)
        lo, hi = margin * horizon_ms, (1.0 - margin) * horizon_ms
        events: List[FaultEvent] = []
        for _ in range(crashes):
            events.append(
                FaultEvent(
                    "crash",
                    float(rng.uniform(lo, hi)),
                    device=int(rng.integers(0, devices)),
                )
            )
        for _ in range(joins):
            events.append(
                FaultEvent(
                    "join", float(rng.uniform(lo, hi)), profile=join_profile
                )
            )
        return cls(events)
