"""Per-stream adaptation state over one shared model.

A fleet server runs ONE model for N concurrent camera streams, but
LD-BN-ADAPT state is inherently per-vehicle: each stream drifts through
its own domain schedule and accumulates its own BN statistics, gamma/beta
values and optimizer momentum.  This module keeps those states separate:

* :class:`BNStateSnapshot` — a copy of everything BN-related on the model
  (gamma/beta via :class:`~repro.adapt.base.ParameterSnapshot`, plus the
  running-statistics buffers).  ``swap_in`` writes the copy into the
  model, ``swap_out`` captures the model back into the copy.
* :class:`StreamSession` — one registered stream: its frame source, its
  adapter (owning the per-stream optimizer state), its BN snapshot and
  its online monitors.
* :class:`ArrivalModel` / :class:`ArrivalProcess` — the stream's frame
  *arrival* process for the event-driven fleet loop: a per-stream phase
  offset over the camera period, plus a seeded jitter/drop model
  (:func:`repro.utils.rng.child_seed` keeps every stream exactly
  repeatable), yielding the timestamps frames actually become available
  at instead of assuming one tick-synchronous cohort per period.
* :class:`StreamRegistry` — the session table, all bound to one model.
* :func:`per_stream_inference` — context manager enabling the *batched*
  shared forward pass: eval-mode BN is an affine per channel, so each
  session's state folds into per-sample ``(scale, shift)`` vectors that
  :class:`repro.nn.modules._BatchNormBase` applies sample-wise.  Frames
  from many differently-adapted streams thus share one forward pass with
  bitwise-independent normalization.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..adapt.base import Adapter, ParameterSnapshot
from ..data.dataset import LaneSample
from ..nn.modules import _BatchNormBase
from ..pipeline.monitor import (
    DeadlineMonitor,
    FrameRecord,
    PipelineReport,
    RollingAccuracy,
)
from ..utils.rng import make_rng

_BN_BUFFER_NAMES = ("running_mean", "running_var", "num_batches_tracked")


@dataclass(frozen=True)
class ArrivalModel:
    """One camera stream's frame-arrival statistics.

    Frame *i*'s nominal arrival is ``phase_ms + i * period_ms``; on top
    of that each frame picks up a delay drawn uniformly from
    ``[0, jitter_ms]`` (transmission/encoder delay — jitter never makes
    a frame early), and with probability ``drop_rate`` the frame is lost
    before it reaches the server (the camera still produced it, so the
    content timeline advances).  ``seed`` makes the process exactly
    repeatable per stream.
    """

    period_ms: float
    phase_ms: float = 0.0
    jitter_ms: float = 0.0
    drop_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {self.period_ms}")
        if self.phase_ms < 0:
            raise ValueError(f"phase_ms must be >= 0, got {self.phase_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}"
            )


class ArrivalProcess:
    """Seeded realization of an :class:`ArrivalModel`, one event at a time.

    Events come out in frame order with non-decreasing timestamps (a
    delayed frame cannot be overtaken by its successor on the same
    camera link, so arrivals are monotonized with a running max).  With
    ``jitter_ms == 0`` and ``drop_rate == 0`` the process degenerates to
    the tick-synchronous schedule the legacy fleet loop assumed —
    the async-ingest parity guarantee rests on that.
    """

    def __init__(self, model: ArrivalModel):
        self.model = model
        self._rng = make_rng(model.seed)
        self._index = 0
        self._last_ms = 0.0

    @property
    def frames_emitted(self) -> int:
        return self._index

    def next_event(self) -> Tuple[int, float, bool]:
        """``(frame_index, arrival_ms, dropped)`` for the next frame."""
        model = self.model
        nominal = model.phase_ms + self._index * model.period_ms
        arrival = nominal
        if model.jitter_ms > 0:
            arrival += float(self._rng.uniform(0.0, model.jitter_ms))
        arrival = max(arrival, self._last_ms)
        dropped = model.drop_rate > 0 and bool(
            self._rng.random() < model.drop_rate
        )
        event = (self._index, arrival, dropped)
        self._index += 1
        self._last_ms = arrival
        return event


class BNStateSnapshot:
    """Copy of a model's BN parameters + buffers, swappable in and out."""

    def __init__(self, model):
        self.modules: List[_BatchNormBase] = [
            m for m in model.modules() if isinstance(m, _BatchNormBase)
        ]
        if not self.modules:
            raise ValueError("model has no BatchNorm layers to snapshot")
        self.params = ParameterSnapshot(
            [p for m in self.modules for p in (m.weight, m.bias)]
        )
        self.buffers = [
            {name: np.array(getattr(m, name)) for name in _BN_BUFFER_NAMES}
            for m in self.modules
        ]

    def swap_in(self) -> None:
        """Write this snapshot's state into the shared model."""
        self.params.restore()
        for module, bufs in zip(self.modules, self.buffers):
            for name, arr in bufs.items():
                module._set_buffer(name, arr)

    def swap_out(self) -> None:
        """Capture the shared model's current state into this snapshot."""
        self.params.capture()
        for module, bufs in zip(self.modules, self.buffers):
            for name, arr in bufs.items():
                arr[...] = getattr(module, name)

    def scale_shift(self, layer_index: int):
        """Fold layer ``layer_index``'s eval-mode BN into ``(scale, shift)``.

        ``y = (x - mean) / sqrt(var + eps) * gamma + beta`` rewritten as
        ``y = x * scale + shift`` with per-channel vectors — the form the
        batched multi-stream forward consumes.
        """
        module = self.modules[layer_index]
        # params are stored interleaved: (weight, bias) per module
        gamma = self.params.saved[2 * layer_index]
        beta = self.params.saved[2 * layer_index + 1]
        bufs = self.buffers[layer_index]
        inv_std = 1.0 / np.sqrt(bufs["running_var"] + module.eps)
        scale = gamma * inv_std
        shift = beta - bufs["running_mean"] * scale
        return scale, shift


class StreamSession:
    """One camera stream's complete serving state.

    The session owns everything that must NOT leak between vehicles: the
    frame iterator, the adapter (and through it the optimizer's momentum),
    the BN state snapshot, and the online monitors.  The model itself is
    shared — sessions take turns materializing their state on it via
    ``swap_in``/``swap_out`` around adaptation steps, and contribute
    folded per-sample stats to batched inference in between.

    Because the session is the single container of per-stream state, the
    device pool migrates a stream by *re-homing the session object*: the
    snapshot, optimizer slots and monitors move bitwise untouched, only
    the modeled adaptation price (``adapt_latency_ms``) is re-quoted by
    the target device.
    """

    def __init__(
        self,
        stream_id: str,
        model,
        stream: Iterator[LaneSample],
        adapter: Adapter,
        deadline_ms: float,
        rolling_window: int = 30,
        adapt_stride: int = 1,
        adapt_phase: int = 0,
        adapt_latency_ms: float = 0.0,
        arrivals: Optional[ArrivalProcess] = None,
    ):
        if adapt_stride < 1:
            raise ValueError(f"adapt_stride must be >= 1, got {adapt_stride}")
        self.stream_id = stream_id
        self.stream = iter(stream)
        self.adapter = adapter
        self.adapt_stride = adapt_stride
        self.adapt_phase = adapt_phase
        self.adapt_latency_ms = adapt_latency_ms
        self.arrivals = arrivals
        self.bn_state = BNStateSnapshot(model)
        self.monitor = DeadlineMonitor(deadline_ms)
        self.rolling = RollingAccuracy(rolling_window)
        self.report = PipelineReport(deadline_ms=deadline_ms)
        self.frames_seen = 0  # frames fully served (decoded + recorded)
        self.frames_ingested = 0  # frames pulled off the camera stream
        self.frames_dropped = 0  # frames the arrival process lost in flight
        self.adapt_grants = 0  # frames admission fed to the adapter
        self.adapt_skips = 0  # frames admission withheld from the adapter
        self.migrations = 0  # times the session moved to another device
        self.busy_until_ms = 0.0  # completion of the last batch serving us
        self.exhausted = False
        # attached by the fleet when drift detection is configured
        # (see serve.drift.SessionDriftState); None keeps serving inert
        self.drift = None
        # frames before this index are unconditionally due for adaptation
        # (a drift reset opens a short burst so the new regime's BN
        # statistics are re-estimated every frame instead of surviving a
        # whole stride on one frame's estimate)
        self.adapt_burst_until = 0

    def next_frame(self) -> Optional[LaneSample]:
        """Pull the next frame; marks the session exhausted at stream end."""
        if self.exhausted:
            return None
        try:
            frame = next(self.stream)
        except StopIteration:
            self.exhausted = True
            self.report.truncated = True
            return None
        self.frames_ingested += 1
        return frame

    def drop_frame(self) -> bool:
        """Consume one frame the arrival process lost; True if one existed.

        The camera produced the frame, so the content timeline advances
        (the iterator is consumed) but nothing is served or recorded.
        """
        if self.next_frame() is None:
            return False
        self.frames_dropped += 1
        return True

    def due_for_adaptation(self, offset: int = 0) -> bool:
        """Whether the frame being served should feed the adapter.

        With ``adapt_stride`` k, every k-th frame adapts; ``adapt_phase``
        offsets which frames those are, so a fleet can stagger its
        adaptation load across streams instead of spiking every stream's
        step onto the same camera period.  ``offset`` counts frames of
        this stream already decided earlier in the *same* served batch
        (a backlogged batch can carry several), keeping the stagger
        aligned with per-stream frame order rather than record order.
        A post-reset burst (``adapt_burst_until``) overrides the stride:
        every frame inside it adapts.
        """
        if self.frames_seen + offset < self.adapt_burst_until:
            return True
        return (
            self.frames_seen + offset - self.adapt_phase
        ) % self.adapt_stride == 0

    def swap_in(self) -> None:
        self.bn_state.swap_in()

    def swap_out(self) -> None:
        self.bn_state.swap_out()

    def record(
        self,
        frame: LaneSample,
        latency_ms: float,
        accuracy: float,
        adapt_result,
        adapt_ms: Optional[float] = None,
    ) -> FrameRecord:
        """Append one served frame to this stream's report."""
        met = self.monitor.record(latency_ms)
        self.rolling.update(accuracy)
        record = FrameRecord(
            index=self.frames_seen,
            timestamp=frame.timestamp,
            domain=frame.domain,
            latency_ms=latency_ms,
            deadline_ms=self.monitor.deadline_ms,
            deadline_met=met,
            accuracy=accuracy,
            entropy=adapt_result.loss if adapt_result else None,
            adapted=adapt_result is not None,
            adapt_ms=adapt_ms if adapt_result is not None else None,
        )
        self.report.frames.append(record)
        self.frames_seen += 1
        return record


class StreamRegistry:
    """The fleet's session table, all sessions bound to one shared model."""

    def __init__(self, model):
        self.model = model
        self._sessions: "OrderedDict[str, StreamSession]" = OrderedDict()

    def register(
        self,
        stream_id: str,
        stream: Iterator[LaneSample],
        adapter: Adapter,
        deadline_ms: float,
        rolling_window: int = 30,
        adapt_stride: int = 1,
        adapt_phase: int = 0,
        adapt_latency_ms: float = 0.0,
        arrivals: Optional[ArrivalProcess] = None,
    ) -> StreamSession:
        """Add a stream; its BN snapshot is the model's *current* state."""
        if stream_id in self._sessions:
            raise ValueError(f"stream id {stream_id!r} already registered")
        if adapter.model is not self.model:
            raise ValueError(
                f"adapter for {stream_id!r} is bound to a different model"
            )
        session = StreamSession(
            stream_id,
            self.model,
            stream,
            adapter,
            deadline_ms=deadline_ms,
            rolling_window=rolling_window,
            adapt_stride=adapt_stride,
            adapt_phase=adapt_phase,
            adapt_latency_ms=adapt_latency_ms,
            arrivals=arrivals,
        )
        self._sessions[stream_id] = session
        return session

    def get(self, stream_id: str) -> StreamSession:
        if stream_id not in self._sessions:
            raise KeyError(
                f"unknown stream {stream_id!r}; registered: {list(self._sessions)}"
            )
        return self._sessions[stream_id]

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[StreamSession]:
        return iter(self._sessions.values())

    @property
    def stream_ids(self) -> List[str]:
        return list(self._sessions)

    @property
    def all_exhausted(self) -> bool:
        return all(s.exhausted for s in self._sessions.values())


@contextmanager
def per_stream_inference(sessions: Sequence[StreamSession]):
    """Enable the batched multi-stream eval forward on the shared model.

    For every BN layer, stacks each session's folded ``(scale, shift)``
    into ``(B, C)`` arrays — row ``i`` belonging to ``sessions[i]`` — and
    installs them as the layer's per-sample stats.  Inside the context,
    ``model(batch)`` with ``batch[i]`` being session ``i``'s frame
    normalizes every sample with its own stream's adapted BN state.  The
    overrides are removed on exit, so plain single-stream forwards (and
    all training-mode adaptation passes) are unaffected.
    """
    sessions = list(sessions)
    if not sessions:
        raise ValueError("per_stream_inference needs at least one session")
    modules = sessions[0].bn_state.modules
    for session in sessions[1:]:
        if session.bn_state.modules != modules:
            raise ValueError("sessions must share one model's BN modules")
    try:
        for layer_index, module in enumerate(modules):
            pairs = [s.bn_state.scale_shift(layer_index) for s in sessions]
            scale = np.stack([p[0] for p in pairs])
            shift = np.stack([p[1] for p in pairs])
            module.per_sample_stats = (scale, shift)
        yield
    finally:
        for module in modules:
            module.per_sample_stats = None
