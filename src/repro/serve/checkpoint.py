"""Durable per-session checkpoints for the device pool.

LD-BN-ADAPT's value is the state it accumulates online: per-stream BN
statistics and gamma/beta, optimizer slots, admission debt, the arrival
cursor.  A device crash destroys exactly that state for every hosted
stream — so the fleet periodically serializes each
:class:`~repro.serve.streams.StreamSession`'s complete adapted state to
a checkpoint store built on :mod:`repro.nn.serialization`'s atomic
``.npz`` archives.  Recovery (:meth:`repro.serve.server.FleetServer.
crash_device`) restores the last *durable* checkpoint; frames served
between that checkpoint and the crash are counted as lost, never
recomputed.

Layout: one archive per stream (``<root>/<stream-id>.npz``), atomically
replaced on every write, with array keys

* ``bn.param.<i>`` — the BN snapshot's interleaved gamma/beta copies
* ``bn.buffer.<i>.<name>`` — per-layer running mean/var/count buffers
* ``opt.<j>.<slot>`` — optimizer slots per trainable parameter
  (SGD momentum, Adam step/m/v; scratch buffers are excluded)
* ``adapt.buffer.<k>`` — frames buffered toward the next adaptation step

and a JSON metadata blob carrying the scalar state: serving counters,
the adapter's step index, admission debt/deferrals, and the arrival
process cursor (frame index, last timestamp, generator state) so a
cold restore resumes the exact seeded arrival realization.

Policy lives in :class:`CheckpointConfig`: ``interval_frames`` sets the
cadence (and thus the worst-case loss per stream), ``mode="async"``
models a background writer — a capture is *staged* in memory and only
becomes durable at the session's next checkpoint opportunity, so a
crash loses the staged capture exactly like a real write-behind store —
and ``max_staleness_frames`` bounds how stale the durable copy may get
before the writer is forced synchronous.

Checkpointing never mutates session state (captures copy), so a run
with checkpointing enabled is bitwise identical to one without.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.serialization import load_arrays, save_arrays

SCHEMA = "repro-session-checkpoint-v1"

#: optimizer slots that are scratch space, not state (fully overwritten
#: each step) — excluded from checkpoints
_SCRATCH_SLOTS = ("work",)


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint policy for fleet sessions.

    Attributes
    ----------
    interval_frames:
        Checkpoint a session every N served frames.  The worst-case
        adapted-state loss on a crash is bounded by this (sync mode) or
        twice this (async mode, staged capture lost too).
    mode:
        ``"sync"`` — captures become durable immediately.  ``"async"`` —
        captures are staged and written at the session's next checkpoint
        opportunity (a crash in between loses the staged capture).
    max_staleness_frames:
        Upper bound on served frames since the last *durable* checkpoint
        before an async write is forced synchronous.  None = unbounded.
    dir:
        Checkpoint directory; None = a fresh temporary directory per
        store.
    """

    interval_frames: int = 8
    mode: str = "sync"
    max_staleness_frames: Optional[int] = None
    dir: Optional[str] = None

    def __post_init__(self):
        if self.interval_frames < 1:
            raise ValueError(
                f"interval_frames must be >= 1, got {self.interval_frames}"
            )
        if self.mode not in ("sync", "async"):
            raise ValueError(
                f"mode must be 'sync' or 'async', got {self.mode!r}"
            )
        if (
            self.max_staleness_frames is not None
            and self.max_staleness_frames < self.interval_frames
        ):
            raise ValueError(
                f"max_staleness_frames ({self.max_staleness_frames}) must "
                f"be >= interval_frames ({self.interval_frames})"
            )


# ----------------------------------------------------------------------
# pure capture/restore helpers (no I/O) — the store and the property
# tests share them
def capture_session_state(
    session,
    admission_state: Optional[Dict[str, object]] = None,
    now_ms: float = 0.0,
) -> Tuple[Dict[str, np.ndarray], dict]:
    """Snapshot a session's complete adapted state as ``(arrays, meta)``.

    Everything is copied — the capture stays frozen while the live
    session keeps serving.  ``admission_state`` is the non-destructive
    :meth:`~repro.serve.admission.SlackAdmission.peek_stream` view of
    the hosting device's controller (the fuse key is *not* serialized;
    it is recomputed from the adapter at restore).
    """
    arrays: Dict[str, np.ndarray] = {}
    bn = session.bn_state
    for i, saved in enumerate(bn.params.saved):
        arrays[f"bn.param.{i}"] = saved.copy()
    for i, bufs in enumerate(bn.buffers):
        for name, arr in bufs.items():
            arrays[f"bn.buffer.{i}.{name}"] = np.array(arr)
    optimizer = getattr(session.adapter, "optimizer", None)
    if optimizer is not None:
        for j, param in enumerate(optimizer.params):
            slots = optimizer.state.get(id(param))
            if not slots:
                continue
            for slot, value in slots.items():
                if slot in _SCRATCH_SLOTS:
                    continue
                arrays[f"opt.{j}.{slot}"] = np.asarray(value).copy()
    pending = getattr(session.adapter, "_buffer", None) or []
    for k, frame in enumerate(pending):
        arrays[f"adapt.buffer.{k}"] = np.asarray(frame).copy()
    drift = getattr(session, "drift", None)
    if drift is not None:
        # detector vector, regime accumulators and warm-start bank (the
        # source snapshot is NOT serialized: it is re-captured from the
        # pristine model whenever a session is constructed)
        arrays.update(drift.state_arrays())

    meta = {
        "schema": SCHEMA,
        "stream_id": session.stream_id,
        "time_ms": float(now_ms),
        "frames_seen": session.frames_seen,
        "adapt_phase": session.adapt_phase,
        "adapt_burst_until": session.adapt_burst_until,
        "frames_ingested": session.frames_ingested,
        "frames_dropped": session.frames_dropped,
        "adapt_grants": session.adapt_grants,
        "adapt_skips": session.adapt_skips,
        "migrations": session.migrations,
        "adapter_step": session.adapter.steps_taken,
        "adapt_pending": len(pending),
        "admission": {
            "debt": int(admission_state.get("debt", 0))
            if admission_state
            else 0,
            "deferrals": int(admission_state.get("deferrals", 0))
            if admission_state
            else 0,
        },
    }
    if session.arrivals is not None:
        meta["arrival"] = {
            "index": session.arrivals._index,
            "last_ms": session.arrivals._last_ms,
            "rng": session.arrivals._rng.bit_generator.state,
        }
    if drift is not None:
        meta["drift"] = drift.state_meta()
    return arrays, meta


def restore_session_state(
    session,
    arrays: Dict[str, np.ndarray],
    meta: dict,
    counters: bool = False,
) -> dict:
    """Write a captured state back into ``session``; returns admission state.

    Restores the BN snapshot (in place — per-sample folding keeps its
    aliases), optimizer slots (stale slots for checkpointed-empty
    parameters are dropped), the adapter's pending-frame buffer and step
    index.  With ``counters=True`` the serving counters and arrival
    cursor are restored too — that is a *cold* restore resuming a
    stream from scratch; live crash recovery keeps the session's
    counters (frames since the checkpoint are lost, not rewound, so
    report indices never collide).

    The return value is an :meth:`~repro.serve.admission.SlackAdmission.
    import_stream`-shaped dict (minus the fuse key, which the caller
    recomputes from the adapter).
    """
    if meta.get("schema") != SCHEMA:
        raise ValueError(
            f"checkpoint schema {meta.get('schema')!r} for stream "
            f"{session.stream_id!r} does not match {SCHEMA!r}"
        )
    if meta.get("stream_id") != session.stream_id:
        raise ValueError(
            f"checkpoint belongs to stream {meta.get('stream_id')!r}, "
            f"not {session.stream_id!r}"
        )
    bn = session.bn_state
    for i, saved in enumerate(bn.params.saved):
        saved[...] = arrays[f"bn.param.{i}"]
    for i, bufs in enumerate(bn.buffers):
        for name, arr in bufs.items():
            arr[...] = arrays[f"bn.buffer.{i}.{name}"]
    optimizer = getattr(session.adapter, "optimizer", None)
    if optimizer is not None:
        for j, param in enumerate(optimizer.params):
            optimizer.state.pop(id(param), None)
            prefix = f"opt.{j}."
            slots = {
                key[len(prefix):]: arrays[key]
                for key in arrays
                if key.startswith(prefix)
            }
            if not slots:
                continue
            restored: Dict[str, object] = {}
            for slot, value in slots.items():
                if slot == "step":
                    restored[slot] = int(value)
                else:
                    restored[slot] = value.copy()
            optimizer.state[id(param)] = restored
    if hasattr(session.adapter, "_buffer"):
        session.adapter._buffer = [
            arrays[f"adapt.buffer.{k}"].copy()
            for k in range(int(meta.get("adapt_pending", 0)))
        ]
    session.adapter._step = int(meta["adapter_step"])
    drift = getattr(session, "drift", None)
    if drift is not None and "drift" in meta:
        drift.load_state(arrays, meta["drift"])
    if counters:
        session.frames_seen = int(meta["frames_seen"])
        # a drift reset re-aligns the stagger and opens a burst; both
        # must survive a crash or the restored session waits out the
        # stride on the pre-reset schedule
        session.adapt_phase = int(meta.get("adapt_phase", session.adapt_phase))
        session.adapt_burst_until = int(
            meta.get("adapt_burst_until", session.adapt_burst_until)
        )
        session.frames_ingested = int(meta["frames_ingested"])
        session.frames_dropped = int(meta["frames_dropped"])
        session.adapt_grants = int(meta["adapt_grants"])
        session.adapt_skips = int(meta["adapt_skips"])
        session.migrations = int(meta["migrations"])
        arrival = meta.get("arrival")
        if arrival is not None and session.arrivals is not None:
            session.arrivals._index = int(arrival["index"])
            session.arrivals._last_ms = float(arrival["last_ms"])
            session.arrivals._rng.bit_generator.state = arrival["rng"]
    return {
        "debt": int(meta["admission"]["debt"]),
        "deferrals": int(meta["admission"]["deferrals"]),
    }


# ----------------------------------------------------------------------
class SessionCheckpointStore:
    """Interval-driven durable store of per-session checkpoints.

    The hosting :class:`~repro.serve.pool.DeviceWorker` calls
    :meth:`observe` after serving a session; the store decides from
    ``config`` whether a capture is due and whether it becomes durable
    now (sync / staleness-forced) or is staged for the next opportunity
    (async).  :meth:`restore` reads the last durable archive — staged
    captures are deliberately *not* consulted: a crash loses them, like
    any write-behind store.
    """

    def __init__(self, config: Optional[CheckpointConfig] = None):
        self.config = config if config is not None else CheckpointConfig()
        self.root = (
            self.config.dir
            if self.config.dir is not None
            else tempfile.mkdtemp(prefix="repro-ckpt-")
        )
        os.makedirs(self.root, exist_ok=True)
        self.writes = 0  # durable archives written
        self.staged_writes = 0  # captures parked for the background writer
        self._staged: Dict[str, Tuple[Dict[str, np.ndarray], dict]] = {}
        self._last_capture_frames: Dict[str, int] = {}
        self._last_durable_frames: Dict[str, int] = {}

    def path_for(self, stream_id: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", stream_id)
        return os.path.join(self.root, f"{safe}.npz")

    # ------------------------------------------------------------------
    def observe(
        self,
        session,
        admission_state: Optional[Dict[str, object]] = None,
        now_ms: float = 0.0,
    ) -> int:
        """Give the store one checkpoint opportunity for ``session``.

        Flushes the session's staged capture (the background writer has
        had a full interval to complete it), then captures a fresh
        checkpoint if ``interval_frames`` have been served since the
        last capture.  Returns the number of durable writes performed
        (0, 1 or 2) so the caller can account them.
        """
        sid = session.stream_id
        written = 0
        if sid in self._staged:
            written += self._write(sid, *self._staged.pop(sid))
        last = self._last_capture_frames.get(sid, 0)
        if session.frames_seen - last < self.config.interval_frames:
            return written
        arrays, meta = capture_session_state(session, admission_state, now_ms)
        self._last_capture_frames[sid] = session.frames_seen
        force_sync = (
            self.config.max_staleness_frames is not None
            and session.frames_seen - self._last_durable_frames.get(sid, 0)
            >= self.config.max_staleness_frames
        )
        if self.config.mode == "sync" or force_sync:
            written += self._write(sid, arrays, meta)
        else:
            self._staged[sid] = (arrays, meta)
            self.staged_writes += 1
        return written

    def checkpoint(
        self,
        session,
        admission_state: Optional[Dict[str, object]] = None,
        now_ms: float = 0.0,
    ) -> int:
        """Unconditionally capture ``session`` and make it durable now.

        Used at registration/attach time so every session has a durable
        baseline before it serves a single frame.
        """
        arrays, meta = capture_session_state(session, admission_state, now_ms)
        self._staged.pop(session.stream_id, None)
        self._last_capture_frames[session.stream_id] = session.frames_seen
        return self._write(session.stream_id, arrays, meta)

    def flush(self) -> int:
        """Make every staged capture durable (end-of-run barrier)."""
        written = 0
        for sid in list(self._staged):
            written += self._write(sid, *self._staged.pop(sid))
        return written

    def drop_staged(self, stream_id: str) -> None:
        """Discard a staged capture (its device crashed before the write)."""
        self._staged.pop(stream_id, None)

    def _write(
        self, stream_id: str, arrays: Dict[str, np.ndarray], meta: dict
    ) -> int:
        save_arrays(self.path_for(stream_id), arrays, meta)
        self.writes += 1
        self._last_durable_frames[stream_id] = int(meta["frames_seen"])
        return 1

    # ------------------------------------------------------------------
    def has_checkpoint(self, stream_id: str) -> bool:
        return os.path.exists(self.path_for(stream_id))

    def load(self, stream_id: str) -> Tuple[Dict[str, np.ndarray], dict]:
        """Read a stream's durable archive (strict manifest check)."""
        path = self.path_for(stream_id)
        arrays, meta = load_arrays(path, strict=True)
        if meta is None:
            raise ValueError(f"checkpoint {path!r} carries no metadata")
        return arrays, meta

    def restore(self, session, counters: bool = False) -> Optional[dict]:
        """Restore ``session`` from its last durable checkpoint.

        Returns the checkpoint's metadata (the caller computes frames
        lost as ``session.frames_seen - meta["frames_seen"]`` and
        re-imports admission state), or None when the stream has no
        durable checkpoint yet.
        """
        if not self.has_checkpoint(session.stream_id):
            return None
        arrays, meta = self.load(session.stream_id)
        meta["admission"] = dict(meta["admission"])
        meta["admission"].update(
            restore_session_state(session, arrays, meta, counters=counters)
        )
        return meta

    def metadata(self, stream_id: str) -> Optional[dict]:
        """The durable checkpoint's metadata without touching any session."""
        if not self.has_checkpoint(stream_id):
            return None
        path = self.path_for(stream_id)
        with np.load(path, allow_pickle=False) as data:
            if "__repro_meta__" not in data.files:
                return None
            meta = json.loads(
                bytes(data["__repro_meta__"].tobytes()).decode("utf-8")
            )
        meta.pop("__keys__", None)
        return meta
