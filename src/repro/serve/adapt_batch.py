"""Fleet-wide batched adaptation: fuse same-phase streams' entropy steps.

The fleet server's inference already amortizes across streams (one
batched compiled forward with per-sample BN folds); until now every
adapting stream still paid a *serial* entropy step — swap its BN state
onto the shared model, run train-forward + backward + optimizer, swap it
back out.  This module fuses the steps of streams that adapt on the same
tick (same ``adapt_phase``) into ONE grouped replay of the compiled
adaptation plan (:class:`repro.engine.CompiledAdaptStep` with
``groups=K``):

* every stream's frames form one contiguous *group* of the fused batch;
* each BatchNorm normalizes each group with that group's own batch
  statistics and that stream's own gamma/beta (plan-input slots filled
  straight from the stream's :class:`~repro.serve.streams.BNStateSnapshot`
  — no model swap-in/swap-out at all);
* the plan returns one loss and one gamma/beta gradient set per stream;
* per-stream SGD updates and running-statistics refreshes are then
  applied directly to each stream's snapshot through the same fused
  :func:`repro.nn.optim.sgd_update` kernels the serial path uses, so the
  resulting per-stream states match serial stepping to float precision
  (the only divergence is GEMM batching at the last-ulp level).

Batching contract: a stream joins a fused step when its adapter is an
:class:`~repro.adapt.LDBNAdapt` with the SGD optimizer, the incoming
frame completes its adaptation batch, and the fused batch sizes agree.
Learning rates, momenta and stats modes may differ per stream — they
only enter the per-stream update loop.  Everything else (Adam adapters,
exotic adapters, unsupported graphs) falls back to the serial path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..adapt.base import AdaptResult
from ..adapt.bn_adapt import LDBNAdapt
from ..engine import CompiledAdaptStep, UnsupportedAdaptGraph
from ..nn.optim import sgd_update
from .streams import StreamSession


def static_fuse_key(adapter):
    """The fuse key this adapter's steps carry when they run, or None.

    The *static* half of the batching contract — an SGD-driven
    :class:`LDBNAdapt` of a given batch size always fuses under the same
    key; whether a particular frame actually has a step to fuse is the
    dynamic half (:meth:`FleetAdaptationBatcher.group_key`).  The
    admission controller uses the static key to know which streams could
    ever share a fused replay (phase packing).
    """
    if isinstance(adapter, LDBNAdapt) and adapter.config.optimizer == "sgd":
        return ("ldbn-sgd", adapter.config.batch_size)
    return None


class StagedGroupStep:
    """One fused adaptation step, assembled but not yet executed.

    Staging (batch assembly + plan lookup, which traces on first use)
    happens outside the serving loop's timed region; :meth:`execute`
    is the measured work.
    """

    __slots__ = ("batcher", "sessions", "images", "plan", "group_size")

    def __init__(self, batcher, sessions, images, plan, group_size):
        self.batcher = batcher
        self.sessions = sessions
        self.images = images
        self.plan = plan
        self.group_size = group_size

    @property
    def num_streams(self) -> int:
        return len(self.sessions)

    def execute(self) -> Dict[int, AdaptResult]:
        return self.batcher._execute(self)


class FleetAdaptationBatcher:
    """Plans and runs fused same-phase adaptation steps for one model."""

    def __init__(self, model, backend=None, threads=None):
        self.model = model
        self._compiled = CompiledAdaptStep(model, backend=backend,
                                           threads=threads)
        self._unsupported = False
        self._fused_proven = False  # a grouped stage has succeeded
        self._module_index: Optional[Dict[int, int]] = None

    @property
    def unsupported(self) -> bool:
        """True once a stage attempt found the graph unlowerable."""
        return self._unsupported

    @property
    def fuse_billable(self) -> bool:
        """Whether admission may bill steps at the fused (sublinear) rate.

        Until a grouped stage has actually succeeded, fused costing would
        be speculative: if the graph then turns out unlowerable, granted
        steps fall back to serial execution and a fused-priced budget
        would overrun the deadline it guaranteed.  Serial pricing is
        always an over-estimate of the fused cost, so billing serially
        before the first proof (and forever after an ``unsupported``
        verdict) keeps the feasibility invariant hard.
        """
        return self._fused_proven and not self._unsupported

    # ------------------------------------------------------------------
    def group_key(self, session: StreamSession):
        """Hashable fuse key for this session's next step, or None.

        None means the session cannot join a fused step now: its adapter
        is not a SGD-driven :class:`LDBNAdapt`, this frame does not
        complete its adaptation batch, or compiled adaptation is off.
        """
        if self._unsupported or not nn.compiled_adaptation_enabled():
            return None
        adapter = session.adapter
        key = static_fuse_key(adapter)
        if key is None:
            return None
        if adapter.pending_frames != adapter.config.batch_size - 1:
            return None  # this frame only buffers; no step to fuse
        return key

    def stage(
        self, sessions: Sequence[StreamSession], frames: Sequence[np.ndarray]
    ) -> Optional[StagedGroupStep]:
        """Assemble one fused step (trace/compile outside timed regions).

        ``frames`` holds each session's incoming frame image; buffered
        frames from previous ticks complete each stream's batch.  Returns
        None when the step cannot be compiled — the caller falls back to
        serial stepping (nothing has been consumed from the adapters).
        """
        if self._unsupported:
            return None
        group_size = sessions[0].adapter.config.batch_size
        batches = []
        for session, image in zip(sessions, frames):
            image = np.asarray(image, dtype=np.float32)
            if image.ndim != 3:
                raise ValueError(
                    f"expected a single (3, H, W) frame, got {image.shape}"
                )
            batches.append(np.stack(session.adapter._buffer + [image]))
        images = np.concatenate(batches)
        try:
            plan = self._compiled.plan_for(images, groups=len(sessions))
        except UnsupportedAdaptGraph:
            self._unsupported = True
            return None
        self._fused_proven = True
        return StagedGroupStep(self, list(sessions), images, plan, group_size)

    # ------------------------------------------------------------------
    def _layer_index(self, session: StreamSession) -> Dict[int, int]:
        if self._module_index is None:
            self._module_index = {
                id(module): j
                for j, module in enumerate(session.bn_state.modules)
            }
        return self._module_index

    def _execute(self, staged: StagedGroupStep) -> Dict[int, AdaptResult]:
        """Run one fused step and apply per-stream state updates."""
        sessions, plan = staged.sessions, staged.plan
        index_of = self._layer_index(sessions[0])
        # parameter slots: row k is stream k's adapted gamma/beta
        for tap in plan.bn_taps:
            j = index_of[id(tap.module)]
            for k, session in enumerate(sessions):
                tap.gamma_slot[k] = session.bn_state.params.saved[2 * j]
                tap.beta_slot[k] = session.bn_state.params.saved[2 * j + 1]
        losses = plan.run(staged.images)

        results: Dict[int, AdaptResult] = {}
        for k, session in enumerate(sessions):
            adapter = session.adapter
            adapter._buffer.clear()
            momentum = adapter.effective_momentum
            optimizer = adapter.optimizer
            for tap in plan.bn_taps:
                j = index_of[id(tap.module)]
                bufs = session.bn_state.buffers[j]
                bufs["num_batches_tracked"] += 1
                for name, stat in (
                    ("running_mean", tap.batch_mean[k]),
                    ("running_var", tap.batch_var[k]),
                ):
                    buf = bufs[name]
                    buf *= 1.0 - momentum
                    buf += momentum * stat
                for saved, grad, param in (
                    (session.bn_state.params.saved[2 * j],
                     tap.grad_gamma[k], tap.module.weight),
                    (session.bn_state.params.saved[2 * j + 1],
                     tap.grad_beta[k], tap.module.bias),
                ):
                    sgd_update(
                        saved,
                        grad,
                        optimizer.state.setdefault(id(param), {}),
                        optimizer.lr,
                        momentum=optimizer.momentum,
                        weight_decay=optimizer.weight_decay,
                        nesterov=optimizer.nesterov,
                    )
            adapter._step += 1
            loss = float(losses[k])
            results[id(session)] = AdaptResult(
                loss=loss,
                num_frames=staged.group_size,
                step_index=adapter._step,
                extras={"entropy": loss},
            )
        return results
