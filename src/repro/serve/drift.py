"""Drift-aware adaptation resets for fleet sessions.

LD-BN-ADAPT tracks *gradual* shift for free (every granted step replaces
BN statistics), but an *abrupt* domain change leaves a stream serving
with statistics adapted to a world that no longer exists — until the
admission/stride schedule happens to grant its next step.  This module
closes that gap:

* each session feeds a per-frame scalar statistic to a one-sided
  CUSUM (:class:`repro.metrics.DriftDetector`).  The default statistic
  is the frame's *signature distance* — Euclidean distance between the
  frame's per-channel moments and the moments of the regime currently
  adapted to (the very statistics LD-BN-ADAPT corrects, so a jump in
  them is exactly "BN stats are now wrong").  Mean prediction entropy
  is available as an alternative (``statistic="entropy"``) but is far
  noisier on small heads;
* an alarm triggers an immediate *adaptation reset*: the session's BN
  params/buffers are re-initialized from the source snapshot — or
  warm-started from a small bank of previously adapted states keyed by
  domain signature (:func:`repro.adapt.kmeans.frame_signature`), so a
  *recurring* shift (tunnel exits, fog lifting) restores the matching
  regime instantly instead of re-learning it;
* the optimizer slots and the adapter's pending-frame buffer are
  cleared (momentum from the dead regime must not steer the new one),
  the adaptation phase is re-aligned so the very next frame is due —
  recovery does not wait out the stride stagger — and a short
  every-frame adaptation burst re-estimates the new regime's BN
  statistics over several frames instead of trusting one;
* the hosting device re-quotes the stream's adaptation cost and bills
  an *unconditional durable checkpoint*, so a crash racing the reset
  can never roll the stream back to pre-reset state.

Everything here is per-session: resets write the session's
:class:`~repro.serve.streams.BNStateSnapshot` and its private adapter
state, never the shared model.  With no alarm firing, the detector is
pure observation — fleet outputs are bitwise identical to a run without
it (gated in ``tests/test_drift_serve.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..adapt.kmeans import frame_signature, nearest_signature, signature_distance
from ..metrics.entropy_stats import DriftConfig, DriftDetector

__all__ = [
    "DriftResetConfig",
    "SessionDriftState",
    "frame_signature",
]


@dataclass(frozen=True)
class DriftResetConfig:
    """Fleet-level policy for drift detection and adaptation resets.

    ``reset_mode``:

    * ``"source"`` — always re-initialize from the source snapshot;
    * ``"cluster"`` — bank the outgoing regime's adapted state keyed by
      its domain signature and warm-start from the nearest banked state
      when one lies within ``match_distance`` (else fall back to
      source).

    ``bank_size`` caps banked states per session (FIFO eviction; a new
    entry within ``match_distance`` of an existing one replaces it
    in place).

    ``statistic`` selects the scalar fed to the CUSUM:

    * ``"signature"`` — distance between the frame's per-channel
      moments and the current regime's (sharp, model-independent);
    * ``"entropy"`` — the frame's mean prediction entropy (the paper's
      adaptation objective, but noisy on small heads).
    """

    # min_std floors the z-score denominator at the signature statistic's
    # natural in-regime scale: a lucky low-variance warmup must not turn
    # ordinary per-frame rendering noise into alarms
    detector: DriftConfig = field(
        default_factory=lambda: DriftConfig(min_std=0.02)
    )
    statistic: str = "signature"
    reset_mode: str = "cluster"
    bank_size: int = 4
    match_distance: float = 0.25
    # frames after a reset during which the session adapts on *every*
    # frame: single-frame BN statistics are high-variance, and a burst
    # keeps one unlucky estimate from serving a whole stride
    burst: int = 4

    def __post_init__(self) -> None:
        if self.burst < 0:
            raise ValueError("burst must be >= 0")
        if self.statistic not in ("signature", "entropy"):
            raise ValueError(
                f"statistic must be 'signature' or 'entropy', "
                f"got {self.statistic!r}"
            )
        if self.reset_mode not in ("source", "cluster"):
            raise ValueError(
                f"reset_mode must be 'source' or 'cluster', "
                f"got {self.reset_mode!r}"
            )
        if self.bank_size < 0:
            raise ValueError("bank_size must be >= 0")
        if self.match_distance <= 0:
            raise ValueError("match_distance must be > 0")


def _capture_bn(session) -> Dict[str, list]:
    """Deep-copy the session's BN params + buffers (never live views)."""
    return {
        "params": [np.array(p) for p in session.bn_state.params.saved],
        "buffers": [
            {name: np.array(arr) for name, arr in bufs.items()}
            for bufs in session.bn_state.buffers
        ],
    }


def _restore_bn(session, state: Dict[str, list]) -> None:
    """Write a captured BN state back into the session's snapshot in
    place (the arrays' identities are load-bearing for swap_in/out)."""
    for dst, src in zip(session.bn_state.params.saved, state["params"]):
        dst[...] = src
    for dst_bufs, src_bufs in zip(session.bn_state.buffers, state["buffers"]):
        for name, src in src_bufs.items():
            dst_bufs[name][...] = src


class SessionDriftState:
    """Per-session drift detector + warm-start bank + reset mechanics.

    Constructed at stream registration, when the session's snapshot
    still holds the pristine source state — that capture *is* the reset
    target for ``reset_mode="source"``.
    """

    def __init__(self, config: DriftResetConfig, session):
        self.config = config
        self.detector = DriftDetector(config.detector)
        self.source = _capture_bn(session)
        # (signature, captured BN state) per previously-adapted regime
        self.bank: List[Tuple[np.ndarray, Dict[str, list]]] = []
        self.events = 0  # alarms fired
        self.resets = 0  # resets applied
        self.cluster_restores = 0  # resets served from the bank
        # signature of the regime currently adapted to, frozen at the
        # end of each detector warmup (i.e. before any shift it flags)
        self.regime_sig: Optional[np.ndarray] = None
        self._sig_sum: Optional[np.ndarray] = None
        self._sig_count = 0

    def observe(self, entropy: float, image: np.ndarray) -> bool:
        """Feed one served frame; returns True when drift is detected.

        The caller (the device worker) applies :meth:`reset` *after*
        the batch finishes so detection never perturbs in-flight fused
        adaptation groups.
        """
        sig = frame_signature(image)
        if self.config.statistic == "entropy":
            stat = float(entropy)
        elif self.regime_sig is not None:
            stat = signature_distance(sig, self.regime_sig)
        elif self._sig_count:
            stat = signature_distance(sig, self._sig_sum / self._sig_count)
        else:
            stat = 0.0
        fired = self.detector.update(stat)
        if fired:
            self.events += 1
            return True
        if self.regime_sig is None:
            self._sig_sum = sig if self._sig_sum is None else self._sig_sum + sig
            self._sig_count += 1
            if self.detector.warmed:
                self.regime_sig = self._sig_sum / self._sig_count
        return False

    def _remember(self, signature: np.ndarray, state: Dict[str, list]) -> None:
        if self.config.bank_size == 0:
            return
        index, dist = nearest_signature(
            signature, [sig for sig, _ in self.bank]
        )
        if index >= 0 and dist <= self.config.match_distance:
            self.bank[index] = (signature, state)  # refresh the regime
            return
        if len(self.bank) >= self.config.bank_size:
            self.bank.pop(0)
        self.bank.append((signature, state))

    def reset(self, session, image: np.ndarray) -> str:
        """Apply the adaptation reset; returns ``"cluster"`` or
        ``"source"`` depending on where the restored state came from."""
        restored = "source"
        if self.config.reset_mode == "cluster":
            # look the incoming frame up against the bank as it existed
            # *before* this reset — the outgoing regime (banked below)
            # must not warm-start the very shift that evicted it
            sig_now = frame_signature(image)
            index, dist = nearest_signature(
                sig_now, [sig for sig, _ in self.bank]
            )
            hit = (
                self.bank[index][1]
                if index >= 0 and dist <= self.config.match_distance
                else None
            )
            if self.regime_sig is not None:
                # bank the outgoing regime before overwriting it
                self._remember(self.regime_sig, _capture_bn(session))
            if hit is not None:
                _restore_bn(session, hit)
                restored = "cluster"
                self.cluster_restores += 1
        if restored == "source":
            _restore_bn(session, self.source)
        # momentum/buffered frames from the dead regime must not steer
        # the new one
        session.adapter.optimizer.state.clear()
        session.adapter._buffer = []
        # re-align the stagger so the next frame is due for adaptation,
        # and open a short every-frame burst: recovery must not wait out
        # the stride, nor ride one frame's noisy statistics estimate
        session.adapt_phase = session.frames_seen % session.adapt_stride
        session.adapt_burst_until = session.frames_seen + self.config.burst
        # fresh signature warmup for the incoming regime (the detector
        # already recalibrated itself when the alarm fired)
        self.regime_sig = None
        self._sig_sum = None
        self._sig_count = 0
        self.resets += 1
        return restored

    # ------------------------------------------------------------------
    # checkpoint round-trip (arrays + meta merged into the session's
    # checkpoint archive by serve.checkpoint)
    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {
            "drift.detector": self.detector.state_vector()
        }
        if self._sig_sum is not None:
            arrays["drift.sig_sum"] = np.array(self._sig_sum)
        if self.regime_sig is not None:
            arrays["drift.regime_sig"] = np.array(self.regime_sig)
        for b, (sig, state) in enumerate(self.bank):
            arrays[f"drift.bank.{b}.sig"] = np.array(sig)
            for j, p in enumerate(state["params"]):
                arrays[f"drift.bank.{b}.param.{j}"] = np.array(p)
            for j, bufs in enumerate(state["buffers"]):
                for name, arr in bufs.items():
                    arrays[f"drift.bank.{b}.buffer.{j}.{name}"] = np.array(arr)
        return arrays

    def state_meta(self) -> Dict[str, int]:
        return {
            "events": self.events,
            "resets": self.resets,
            "cluster_restores": self.cluster_restores,
            "sig_count": self._sig_count,
            "bank": len(self.bank),
        }

    def load_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, int]
    ) -> None:
        self.detector.load_state_vector(arrays["drift.detector"])
        self.events = int(meta["events"])
        self.resets = int(meta["resets"])
        self.cluster_restores = int(meta["cluster_restores"])
        self._sig_count = int(meta["sig_count"])
        self._sig_sum = (
            np.array(arrays["drift.sig_sum"])
            if "drift.sig_sum" in arrays
            else None
        )
        self.regime_sig = (
            np.array(arrays["drift.regime_sig"])
            if "drift.regime_sig" in arrays
            else None
        )
        self.bank = []
        for b in range(int(meta["bank"])):
            sig = np.array(arrays[f"drift.bank.{b}.sig"])
            params = []
            j = 0
            while f"drift.bank.{b}.param.{j}" in arrays:
                params.append(np.array(arrays[f"drift.bank.{b}.param.{j}"]))
                j += 1
            buffers = []
            j = 0
            prefix = f"drift.bank.{b}.buffer.{j}."
            while any(k.startswith(prefix) for k in arrays):
                buffers.append(
                    {
                        k[len(prefix):]: np.array(arrays[k])
                        for k in arrays
                        if k.startswith(prefix)
                    }
                )
                j += 1
                prefix = f"drift.bank.{b}.buffer.{j}."
            self.bank.append((sig, {"params": params, "buffers": buffers}))
