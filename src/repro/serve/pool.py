"""Device-pool serving: per-device workers, session placement, migration.

The fleet outgrew one device — a single simulated Orin saturates at
~2-3 paper-scale adapting streams — so :class:`~repro.serve.server.
FleetServer` shards its sessions across a *pool* of devices.  This
module holds the three layers of that sharding:

* :class:`DeviceWorker` — everything ONE device owns: its
  :class:`~repro.hw.device.DeviceProfile` (priced individually, so
  heterogeneous pools of mixed power modes are first-class), its
  :class:`~repro.serve.scheduler.DeadlineAwareScheduler` and queue, its
  own :class:`~repro.serve.admission.SlackAdmission` budget, its
  compiled inference/adaptation plan caches, and its device clock plus
  load metrics.  The per-batch serving path (shared forward, decode,
  admission-gated fused/serial adaptation) lives here — extracted
  verbatim from the former single-device ``FleetServer`` loop, so a
  pool of one device reproduces it exactly (the parity oracle).
* :func:`place_stream` — pure placement policies over roofline-estimated
  per-stream device cost: ``"least_loaded"`` (argmin of projected
  utilization, the default), ``"round_robin"`` (registration order
  modulo pool size), ``"pinned"`` (the caller names the device).
* :class:`MigrationPlanner` + :class:`MigrationConfig` — pure migration
  logic.  Each worker keeps an EWMA of its observed deadline slack;
  when a device runs sustainedly hot (EWMA below ``hot_slack_ms``)
  while another is cooler by more than ``slack_gap_ms``, the planner
  moves the hot device's heaviest *movable* session (no batch of its
  frames still in flight; queued frames re-home with it, so a
  saturated device can drain) to the coolest device.  A fleet-wide
  ``cooldown_ms`` plus a longer per-session refractory
  (``session_cooldown_ms``, default twice the fleet-wide one) keeps
  sessions from thrashing back and forth.  Migration
  transfers the session object wholesale — its
  :class:`~repro.adapt.base.ParameterSnapshot`, BN buffers and
  optimizer slots move bitwise untouched — plus its admission debt
  (:meth:`SlackAdmission.export_stream`), and re-prices its modeled
  adaptation cost on the target device.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import nn
from ..engine import compile_model
from ..engine.backends.threading import resolve_threads
from ..hw.deadline import (
    adaptation_budget_ms,
    deadline_slack_ms,
    stream_utilization,
)
from ..hw.roofline import batched_inference_latency_ms, ld_bn_adapt_latency
from ..metrics.entropy_stats import shannon_entropy
from ..metrics.lane_accuracy import point_accuracy
from ..models.ufld import decode_predictions
from ..telemetry.metrics import Histogram, MetricsRegistry
from ..telemetry.trace import NULL_TRACER, SpanTracer
from .adapt_batch import FleetAdaptationBatcher, static_fuse_key
from .admission import SlackAdmission, StepCandidate
from .checkpoint import SessionCheckpointStore
from .report import DeviceReport
from .scheduler import (
    BatchPlan,
    DeadlineAwareScheduler,
    plan_adaptation_groups,
)
from .streams import StreamSession, per_stream_inference

PLACEMENT_POLICIES = ("least_loaded", "round_robin", "pinned")


def place_stream(
    policy: str,
    index: int,
    costs: Sequence[float],
    loads: Sequence[float],
    pinned: Optional[int] = None,
) -> int:
    """Pick the device for a newly registered stream.

    ``costs[d]`` is the stream's estimated utilization *on device d*
    (heterogeneous pools price the same stream differently per power
    mode), ``loads[d]`` the utilization already placed there, ``index``
    the stream's fleet-wide registration index.  An explicit ``pinned``
    device always wins; the ``"pinned"`` policy *requires* one.  Pure
    logic — ties break toward the lowest device index, so placement is
    deterministic.
    """
    if len(costs) != len(loads) or not loads:
        raise ValueError("costs and loads must be equal-length, non-empty")
    if pinned is not None:
        if not 0 <= pinned < len(loads):
            raise ValueError(
                f"pinned device {pinned} out of range for a "
                f"{len(loads)}-device pool"
            )
        return pinned
    if policy == "pinned":
        raise ValueError(
            "placement='pinned' requires an explicit device for every stream"
        )
    if policy == "round_robin":
        return index % len(loads)
    if policy == "least_loaded":
        projected = [load + cost for load, cost in zip(loads, costs)]
        return min(range(len(projected)), key=lambda d: (projected[d], d))
    raise ValueError(
        f"unknown placement policy {policy!r}; expected one of "
        f"{PLACEMENT_POLICIES}"
    )


@dataclass(frozen=True)
class MigrationConfig:
    """Tuning of the session-migration planner.

    Attributes
    ----------
    hot_slack_ms:
        A device's slack EWMA must sit below this before any of its
        sessions are considered for migration (the device is actually
        struggling, not just momentarily behind).  The default matches
        the admission controller's ``slack_low_ms`` hot threshold — a
        device fully granting adaptation legitimately rides just above
        it.
    slack_gap_ms:
        Minimum EWMA divergence between the hot source device and the
        cooler target — migration only pays when the pool is genuinely
        imbalanced.  An *empty* device that has never served counts as
        maximally cool; an unobserved device that already holds sessions
        is not a candidate until it has served something.
    cooldown_ms:
        Fleet-wide refractory period after any migration, so the EWMAs
        resettle between moves.
    session_cooldown_ms:
        Per-session refractory: how long a just-moved session stays put
        before it may move again.  None (the default) means twice the
        fleet-wide cooldown — long enough that a session cannot bounce
        straight back on the very next fleet-wide window.
    ewma_alpha:
        Update weight of each worker's observed-slack EWMA.
    min_observations:
        Frames a device must have served before its EWMA counts as
        *sustained* — a cold-start frame or two must not trigger a move.
    """

    hot_slack_ms: float = 2.0
    slack_gap_ms: float = 8.0
    cooldown_ms: float = 500.0
    session_cooldown_ms: Optional[float] = None  # None → 2 * cooldown_ms
    ewma_alpha: float = 0.25
    min_observations: int = 8

    def __post_init__(self):
        if self.slack_gap_ms < 0:
            raise ValueError(
                f"slack_gap_ms must be >= 0, got {self.slack_gap_ms}"
            )
        if self.cooldown_ms < 0:
            raise ValueError(
                f"cooldown_ms must be >= 0, got {self.cooldown_ms}"
            )
        if (
            self.session_cooldown_ms is not None
            and self.session_cooldown_ms < self.cooldown_ms
        ):
            raise ValueError(
                f"session_cooldown_ms ({self.session_cooldown_ms}) must be "
                f">= cooldown_ms ({self.cooldown_ms}); a shorter one could "
                "never take effect"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )

    @property
    def effective_session_cooldown_ms(self) -> float:
        """The per-session refractory actually applied."""
        if self.session_cooldown_ms is not None:
            return self.session_cooldown_ms
        return 2.0 * self.cooldown_ms


@dataclass(frozen=True)
class MigrationDecision:
    """One planned session move: ``stream_id`` from ``source`` to ``target``."""

    stream_id: str
    source: int
    target: int


class MigrationPlanner:
    """Decides when to move a session to a cooler device.

    Pure logic over per-device slack EWMAs, current placements and
    per-session costs — no model or session access, so the property
    harness can drive it with synthetic fleets.  The caller owns the
    actual state transfer; :meth:`commit` records a taken decision for
    the cooldown bookkeeping.
    """

    def __init__(self, config: Optional[MigrationConfig] = None):
        self.config = config if config is not None else MigrationConfig()
        self._last_migration_ms: Optional[float] = None
        self._last_moved_ms: Dict[str, float] = {}

    def in_cooldown(self, now_ms: float) -> bool:
        """Whether the fleet-wide refractory period is still running.

        Cheap pre-check the coordinator uses to skip building the
        movable/cost structures on every served batch while no decision
        could be taken anyway.
        """
        return (
            self._last_migration_ms is not None
            and now_ms - self._last_migration_ms < self.config.cooldown_ms
        )

    def _sustained_hot(self, ewma: Optional[float], observations: int) -> bool:
        """The one definition of a sustained-hot device, shared by
        :meth:`plan` and the coordinator's :meth:`any_hot` pre-check so
        the two can never drift apart."""
        return (
            ewma is not None
            and observations >= self.config.min_observations
            and ewma < self.config.hot_slack_ms
        )

    def any_hot(
        self,
        slack_ewmas: Sequence[Optional[float]],
        observations: Sequence[int],
    ) -> bool:
        """Whether any device currently qualifies as a migration source."""
        return any(
            self._sustained_hot(ewma, count)
            for ewma, count in zip(slack_ewmas, observations)
        )

    def plan(
        self,
        now_ms: float,
        slack_ewmas: Sequence[Optional[float]],
        observations: Sequence[int],
        device_sessions: Sequence[Sequence[str]],
        movable: Set[str],
        costs: Dict[str, float],
    ) -> Optional[MigrationDecision]:
        """The next session move, or None.

        ``slack_ewmas[d]`` is device *d*'s observed-slack EWMA (None
        before its first served frame) and ``observations[d]`` how many
        frames fed it — a device is only *sustainedly* hot after
        ``min_observations`` of them.  ``device_sessions[d]`` lists the
        device's sessions in registration order, ``movable`` the streams
        with no batch of theirs still in flight (the only ones that may
        move — their queued frames re-home with them),
        and ``costs`` each stream's estimated utilization on its current
        device (the heaviest movable session moves first).  An empty,
        never-observed device counts as maximally cool; an unobserved
        device that already holds sessions is no target at all.
        """
        config = self.config
        if self.in_cooldown(now_ms):
            return None

        def coolness(d: int) -> float:
            ewma = slack_ewmas[d]
            if ewma is None:
                return float("inf") if not device_sessions[d] else float("-inf")
            return float(ewma)

        hot_devices = sorted(
            (
                d
                for d, ewma in enumerate(slack_ewmas)
                if self._sustained_hot(ewma, observations[d])
            ),
            key=lambda d: (slack_ewmas[d], d),
        )
        session_cooldown = config.effective_session_cooldown_ms
        for source in hot_devices:
            eligible = [
                sid
                for sid in device_sessions[source]
                if sid in movable
                and (
                    sid not in self._last_moved_ms
                    or now_ms - self._last_moved_ms[sid] >= session_cooldown
                )
            ]
            if not eligible:
                continue
            candidates = [
                d
                for d in range(len(slack_ewmas))
                if d != source
                and coolness(d) - slack_ewmas[source] > config.slack_gap_ms
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda d: (-coolness(d), d))
            stream_id = max(eligible, key=lambda sid: costs.get(sid, 0.0))
            return MigrationDecision(stream_id, source, target)
        return None

    def commit(self, decision: MigrationDecision, now_ms: float) -> None:
        """Record a taken decision (starts the cooldown clocks)."""
        self._last_migration_ms = now_ms
        self._last_moved_ms[decision.stream_id] = now_ms


class StagedGroup:
    """Execution state of one fused adaptation step within a served batch.

    Created at staging time (before the timed region); the first member
    encountered in the record loop launches :meth:`DeviceWorker._run_group`,
    which fills in the results and completion bookkeeping every other
    member then reads.
    """

    __slots__ = ("staged", "results", "per_stream_ms", "done_clock_ms")

    def __init__(self, staged):
        self.staged = staged
        self.results = None
        self.per_stream_ms = 0.0
        self.done_clock_ms = 0.0


class _Decision:
    """One frame's admission outcome: feed the adapter or withhold it.

    ``planned_step`` records whether the admission controller budgeted an
    actual optimization step for this feed (as opposed to a free
    buffering frame); :meth:`DeviceWorker._reconcile_buffer_drift` refuses
    any feed whose real buffer state would turn a free plan into an
    unbudgeted step.
    """

    __slots__ = ("feed", "planned_step")

    def __init__(self, feed: bool, planned_step: bool):
        self.feed = feed
        self.planned_step = planned_step


class DeviceWorker:
    """One pool device: its scheduler, queue, budgets and serving path.

    The worker serves whatever sessions the coordinator places on it;
    the model itself stays shared (sessions carry their own BN state),
    but every *modeled* cost — batched inference latency, adaptation
    step price, admission feasibility budget — comes from this worker's
    own :class:`DeviceProfile`, so heterogeneous pools price each stream
    per device.
    """

    def __init__(
        self,
        index: int,
        model,
        config,
        device=None,
        spec=None,
        timer=None,
        slack_alpha: float = 0.25,
        metrics: Optional[MetricsRegistry] = None,
        tracer: SpanTracer = NULL_TRACER,
        checkpoints: Optional[SessionCheckpointStore] = None,
    ):
        self.index = index
        self.model = model
        self.config = config
        self.device = device
        self.spec = spec
        self.timer = timer
        self.tracer = tracer
        self.checkpoints = checkpoints
        # fault-injection state: a multiplier of 1.0 is bitwise-inert for
        # the modeled latencies, so the slow-down hook can live in the
        # closures permanently without perturbing fault-free runs
        self.slowdown = 1.0
        self.alive = True
        self.crashed_ms: Optional[float] = None
        self.joined_ms = 0.0
        # kernel-pool width: only an explicit FleetConfig.threads threads
        # the compiled plans AND the roofline pricing — None keeps both
        # at single-thread, bitwise-stable with pre-threading runs
        cfg_threads = getattr(config, "threads", None)
        self.threads: Optional[int] = (
            resolve_threads(
                cfg_threads,
                device_cores=getattr(device, "cpu_cores", None),
            )
            if cfg_threads is not None
            else None
        )
        nt = self.threads or 1
        if config.latency_model == "orin":
            self.latency_fn = lambda b: self.slowdown * (  # noqa: E731
                batched_inference_latency_ms(spec, device, b, threads=nt)
            )
            self.adapt_cost_fn = lambda n: self.slowdown * (  # noqa: E731
                ld_bn_adapt_latency(spec, device, n, threads=nt).adaptation_ms
            )
        else:
            # wallclock mode measures instead of planning; batch greedily
            self.latency_fn = None
            self.adapt_cost_fn = None
        self.scheduler = DeadlineAwareScheduler(
            latency_fn=self.latency_fn,
            max_batch_size=config.max_batch_size,
            aging_rate=config.aging_rate,
        )
        self.admission: Optional[SlackAdmission] = (
            SlackAdmission(config.admission, self.adapt_cost_fn)
            if config.admission is not None
            else None
        )
        self._compiled = None  # built lazily; plans cached per batch size
        self._adapt_batcher = FleetAdaptationBatcher(
            model,
            backend=getattr(config, "backend", None),
            threads=self.threads,
        )
        self._slack_alpha = slack_alpha
        self.slack_ewma_ms: Optional[float] = None
        self.device_free_ms = 0.0
        self.busy_ms = 0.0
        self.frames_served = 0
        self.migrations_in = 0
        self.migrations_out = 0
        self.sessions: "OrderedDict[str, StreamSession]" = OrderedDict()
        self.session_cost_ms: Dict[str, float] = {}
        self.batch_sizes = Histogram()
        self.queue_depths = Histogram()
        self.adapt_batch_sizes = Histogram()
        self._last_served_ms: Optional[float] = None  # idle-decay anchor
        self.slack_decays = 0
        self.canary_probes = 0
        self._decays_since_served = 0  # canary trigger, reset on serve
        # fleet-wide metric sinks shared with the coordinator via its
        # registry (sketches merge order-independently, and launch order
        # across workers == global time order anyway — the event loop
        # serializes batches).  Instruments are cached here so the hot
        # path never does a registry lookup.
        metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics = metrics
        self._m_batch_sizes = metrics.histogram("fleet/batch_size")
        self._m_adapt_batch_sizes = metrics.histogram("fleet/adapt_batch_size")
        self._m_queue_depths = metrics.histogram("fleet/queue_depth")
        self._m_latency = metrics.histogram("fleet/latency_ms")
        self._m_slack = metrics.histogram("fleet/slack_ms")
        self._m_adapt = metrics.histogram("fleet/adapt_ms")
        self._m_accuracy = metrics.histogram("fleet/accuracy")
        self._m_misses = metrics.counter("fleet/deadline_misses")
        self._m_decays = metrics.counter("fleet/slack_decays")
        self._m_canary = metrics.counter("fleet/canary_probes")
        self._m_checkpoints = metrics.counter("fleet/checkpoints")
        self._m_drift_events = metrics.counter("fleet/drift_events")
        self._m_drift_resets = metrics.counter("fleet/drift_resets")
        self._m_drift_cluster = metrics.counter("fleet/drift_cluster_restores")

    @property
    def name(self) -> str:
        profile = self.device.name if self.device is not None else "wallclock"
        return f"{self.index}:{profile}"

    # -- placement / migration -----------------------------------------
    def estimate_cost_ms(self, adapter) -> float:
        """Roofline-estimated per-period service demand of one stream.

        Inference at batch 1 plus the stream's amortized share of its
        adaptation step (step cost over ``batch_size * adapt_stride``
        frames) — the quantity placement policies compare across
        devices.  Unmodeled (wallclock) serving prices every stream at
        one full period, so placement degenerates to stream-count
        balancing.
        """
        if self.latency_fn is None:
            return self.config.period_ms
        batch = getattr(getattr(adapter, "config", None), "batch_size", 1)
        per_frame_adapt = self.adapt_cost_fn(batch) / (
            batch * max(self.config.adapt_stride, 1)
        )
        return self.latency_fn(1) + per_frame_adapt

    @property
    def load(self) -> float:
        """Sum of the placed streams' estimated utilizations."""
        period = self.config.period_ms
        return sum(
            stream_utilization(cost, period)
            for cost in self.session_cost_ms.values()
        )

    def attach(
        self,
        session: StreamSession,
        admission_state: Optional[Dict[str, object]] = None,
        now_ms: float = 0.0,
    ) -> None:
        """Place a session on this device (registration or migration).

        Prices the session's modeled adaptation step on *this* device's
        profile and registers (or imports, when migrating) its admission
        state.  The session object itself — BN snapshot, optimizer
        slots, monitors — moves untouched.  With a checkpoint store
        enabled, the attach immediately writes a durable baseline so
        even a session that crashes before its first interval has
        something to recover from.
        """
        sid = session.stream_id
        self.sessions[sid] = session
        if self.config.latency_model == "orin":
            batch = getattr(
                getattr(session.adapter, "config", None), "batch_size", 1
            )
            session.adapt_latency_ms = self.adapt_cost_fn(batch)
        self.session_cost_ms[sid] = self.estimate_cost_ms(session.adapter)
        if self.admission is not None:
            if admission_state is not None:
                self.admission.import_stream(sid, admission_state)
            else:
                self.admission.register_stream(
                    sid, static_fuse_key(session.adapter)
                )
        if self.checkpoints is not None:
            self._m_checkpoints.inc(
                self.checkpoints.checkpoint(
                    session, self._admission_view(sid), now_ms
                )
            )

    def _admission_view(self, stream_id: str) -> Optional[Dict[str, object]]:
        """Non-destructive admission state for checkpoint captures."""
        if self.admission is None:
            return None
        return self.admission.peek_stream(stream_id)

    def detach(self, session: StreamSession) -> Optional[Dict[str, object]]:
        """Remove a session from this device; returns its admission state."""
        sid = session.stream_id
        del self.sessions[sid]
        del self.session_cost_ms[sid]
        if self.admission is not None:
            return self.admission.export_stream(sid)
        return None

    # -- fault hooks ----------------------------------------------------
    def set_slowdown(self, factor: float) -> None:
        """Degrade this device's modeled service times by ``factor``.

        Compounds with earlier slow-downs (the closures read
        ``self.slowdown`` live).  Hosted sessions are re-quoted so
        admission feasibility and placement see the new prices.
        """
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self.slowdown *= factor
        if self.config.latency_model != "orin":
            return
        # the scheduler/admission closures read self.slowdown live; only
        # the cached per-session quotes need refreshing
        for session in self.sessions.values():
            batch = getattr(
                getattr(session.adapter, "config", None), "batch_size", 1
            )
            session.adapt_latency_ms = self.adapt_cost_fn(batch)
            self.session_cost_ms[session.stream_id] = self.estimate_cost_ms(
                session.adapter
            )

    def crash(self, now_ms: float) -> None:
        """Mark this device dead at ``now_ms``; it never launches again.

        The coordinator owns the recovery sequence (queue extraction,
        checkpoint restore, re-placement) — this only flips the death
        state the event loop and reports read.
        """
        self.alive = False
        self.crashed_ms = now_ms

    def observe_slack(self, slack_ms: float) -> None:
        """Feed one served frame's deadline slack into the worker EWMA.

        This is the migration planner's heat signal — kept separate from
        the admission controller's EWMA, which may not exist (static
        stride fleets migrate too).
        """
        if self.slack_ewma_ms is None:
            self.slack_ewma_ms = float(slack_ms)
        else:
            self.slack_ewma_ms += self._slack_alpha * (
                float(slack_ms) - self.slack_ewma_ms
            )

    # -- idle slack decay ----------------------------------------------
    # A drained device's slack EWMA freezes at its last (hot) reading and
    # keeps repelling the migration planner even though the device now
    # sits idle — so the fleet never re-balances back onto it.  After
    # IDLE_DECAY_GRACE_PERIODS frame periods without serving, the EWMA
    # relaxes toward the roofline prior (the slack a lone batch-1 frame
    # would see) at IDLE_DECAY_RATE per further idle period.  Driven off
    # the simulated launch clock, so it is deterministic and inert for
    # busy devices.
    IDLE_DECAY_GRACE_PERIODS = 2.0
    IDLE_DECAY_RATE = 0.25
    #: after this many consecutive decays without serving, a canary probe
    #: snaps the EWMA to the roofline prior outright — the geometric decay
    #: never *reaches* the prior, so a drained (or crash-recovered) device
    #: would otherwise stay fractionally "hot" forever.  Bounds the
    #: re-pricing of an idle device to a fixed number of decay ticks.
    CANARY_PROBE_DECAYS = 8

    def roofline_slack_prior_ms(self) -> Optional[float]:
        """Best-case slack of an idle device (batch-1 frame, no queueing)."""
        if self.latency_fn is None:
            return None
        return deadline_slack_ms(self.latency_fn(1), self.config.deadline_ms)

    def decay_idle_slack(self, now_ms: float) -> bool:
        """Relax a drained device's stale slack EWMA toward the prior.

        Called by the coordinator on the launch clock; returns True when
        the EWMA moved (at most once per frame period).  Never fires for
        a device with pending or in-flight work.
        """
        if (
            self.slack_ewma_ms is None
            or self._last_served_ms is None
            or self.scheduler.pending_count
        ):
            return False
        prior = self.roofline_slack_prior_ms()
        if prior is None or self.slack_ewma_ms >= prior:
            return False
        period = self.config.period_ms
        idle_ms = now_ms - self._last_served_ms
        periods = int(idle_ms / period - self.IDLE_DECAY_GRACE_PERIODS)
        if periods < 1:
            return False
        old = self.slack_ewma_ms
        self._decays_since_served += 1
        if self._decays_since_served >= self.CANARY_PROBE_DECAYS:
            # canary probe: the modeled cost of one idle batch-1 frame IS
            # the prior, so after enough decays without any real traffic
            # the probe simply installs it — the device is re-priced
            # within a bounded number of decay ticks instead of creeping
            # toward the prior asymptotically
            self.slack_ewma_ms = prior
            self.canary_probes += 1
            self._m_canary.inc()
            if self.tracer.enabled:
                self.tracer.instant(
                    "canary_probe",
                    now_ms,
                    pid=self.name,
                    tid="device",
                    cat="migration",
                    old_ewma_ms=old,
                    prior_ms=prior,
                )
        else:
            # closed form of `periods` EWMA pulls toward the prior
            self.slack_ewma_ms = prior + (old - prior) * (
                (1.0 - self.IDLE_DECAY_RATE) ** periods
            )
        # re-anchor so the next idle period decays incrementally
        self._last_served_ms = now_ms - self.IDLE_DECAY_GRACE_PERIODS * period
        self.slack_decays += 1
        self._m_decays.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "slack_decay",
                now_ms,
                pid=self.name,
                tid="device",
                cat="migration",
                old_ewma_ms=old,
                new_ewma_ms=self.slack_ewma_ms,
                prior_ms=prior,
            )
        return True

    def report(self, elapsed_ms: float) -> DeviceReport:
        """This device's row of the fleet report."""
        return DeviceReport(
            device=self.name,
            streams=list(self.sessions),
            frames_served=self.frames_served,
            batches=self.batch_sizes.count,
            mean_batch_size=self.batch_sizes.mean,
            busy_ms=self.busy_ms,
            utilization=self.busy_ms / elapsed_ms if elapsed_ms > 0 else 0.0,
            mean_queue_depth=self.queue_depths.mean,
            max_queue_depth=int(self.queue_depths.max),
            migrations_in=self.migrations_in,
            migrations_out=self.migrations_out,
            alive=self.alive,
            crashed_ms=self.crashed_ms,
            joined_ms=self.joined_ms,
        )

    # -- the per-batch serving path ------------------------------------
    def launch(self, now_ms: float) -> float:
        """Record launch metrics, pop the next batch and serve it.

        The one entry point both ingest loops use: queue depth is
        captured *before* the pop (the pending count at launch, the
        admission controller's pressure signal), then the planned batch
        is served.  Returns the device-clock completion time.
        """
        depth = self.scheduler.pending_count
        self.queue_depths.record(depth)
        self._m_queue_depths.record(depth)
        plan = self.scheduler.next_batch(now_ms)
        if plan is None:  # pragma: no cover - pending implies a plan
            return now_ms
        return self.serve_batch(plan, now_ms, self.scheduler.pending_count)

    def serve_batch(
        self, plan: BatchPlan, start_ms: float, leftover_depth: int
    ) -> float:
        """Run one shared forward + per-stream postprocessing.

        ``leftover_depth`` is the pending count left behind at launch
        (the admission controller's queue-pressure signal).  Returns the
        fleet-clock time at which this device is free again.
        """
        config = self.config
        sessions = [req.payload[0] for req in plan.requests]
        frames = [req.payload[1] for req in plan.requests]
        self.batch_sizes.record(plan.batch_size)
        self._m_batch_sizes.record(plan.batch_size)
        self.frames_served += plan.batch_size

        images = np.stack([f.image for f in frames]).astype(np.float32)
        self.model.eval()
        if nn.compiled_inference_enabled():
            if self._compiled is None:
                self._compiled = compile_model(
                    self.model,
                    backend=getattr(config, "backend", None),
                    threads=self.threads,
                )
            # one-time trace per batch size, outside the timed region
            self._compiled.warm(images)
        with self.timer.measure("inference"):
            with per_stream_inference(sessions):
                if nn.compiled_inference_enabled():
                    # the warm path above already built self._compiled
                    logits = self._compiled(images)
                else:
                    with nn.no_grad():
                        logits = self.model(nn.Tensor(images, _copy=False))
            # decode is part of serving a frame, so wallclock inference cost
            # includes it — same accounting as RealTimePipeline._predict
            preds = decode_predictions(
                logits.numpy(), self.model.config, method=config.decode_method
            )

        if config.latency_model == "orin":
            infer_ms = plan.planned_latency_ms
        else:
            infer_ms = 1e3 * self.timer.records["inference"][-1]

        # inference completes for the whole batch at once; granted
        # same-batch adaptation steps are then fused into grouped
        # compiled replays (per-stream state slots, no model swap), with
        # remaining granted steps running serially in batch order
        clock_ms = start_ms + infer_ms
        infer_done_ms = clock_ms
        tracer = self.tracer
        if tracer.enabled and config.latency_model == "orin":
            # device-lane batch spans only exist on the simulated clock:
            # wallclock serving reuses the host clock across overlapping
            # launches, which would break the non-overlap invariant
            tracer.span(
                "forward",
                start_ms,
                infer_ms,
                pid=self.name,
                tid="device",
                cat="batch",
                batch=plan.batch_size,
            )
            tracer.instant(
                "decode", infer_done_ms, pid=self.name, tid="device", cat="batch"
            )
        decisions, group_of = self._plan_adaptation(
            plan, start_ms, infer_ms, leftover_depth
        )
        # drift detection feeds on the forward the batch already paid
        # for; with no session listening this is skipped outright and
        # serving stays bitwise identical (the inertness gate)
        batch_entropy = None
        if any(s.drift is not None for s in sessions):
            raw = logits.numpy()
            batch_entropy = shannon_entropy(raw, axis=1).mean(
                axis=tuple(range(1, raw.ndim - 1))
            )
        drift_fired: Dict[int, Tuple[StreamSession, np.ndarray]] = {}
        for frame_pos, (req, session, frame, pred) in enumerate(
            zip(plan.requests, sessions, frames, preds)
        ):
            metrics = point_accuracy(
                pred[None], frame.gt_cells[None], config.accuracy_threshold_cells
            )
            result = None
            adapt_step_ms = 0.0
            completion_ms = clock_ms
            decision = decisions[id(req)]
            if decision.feed:
                session.adapt_grants += 1
                group = group_of.get(id(req))
                if group is not None:
                    if group.results is None:  # first member launches it
                        clock_ms = self._run_group(group, clock_ms)
                    result = group.results[id(session)]
                    adapt_step_ms = group.per_stream_ms
                    completion_ms = group.done_clock_ms
                else:
                    session.swap_in()
                    with self.timer.measure("adaptation"):
                        result = session.adapter.observe_frame(
                            frame.image
                        ) if hasattr(
                            session.adapter, "observe_frame"
                        ) else session.adapter.adapt(frame.image[None])
                    session.swap_out()
                    wall_ms = 1e3 * self.timer.records["adaptation"][-1]
                    if result is not None:
                        adapt_step_ms = (
                            session.adapt_latency_ms
                            if config.latency_model == "orin"
                            else wall_ms
                        )
                        clock_ms += adapt_step_ms
                        if tracer.enabled and config.latency_model == "orin":
                            tracer.span(
                                "adapt",
                                clock_ms - adapt_step_ms,
                                adapt_step_ms,
                                pid=self.name,
                                tid="device",
                                cat="adapt",
                                stream=session.stream_id,
                            )
                    completion_ms = clock_ms
            else:
                session.adapt_skips += 1
            stepped = result is not None
            if config.latency_model == "orin":
                latency_ms = completion_ms - req.arrival_ms
            else:
                # processing cost only (no simulated queueing): this frame's
                # share of the batched forward plus its adaptation share
                latency_ms = infer_ms / plan.batch_size + adapt_step_ms
            slack_ms = deadline_slack_ms(latency_ms, config.deadline_ms)
            if config.latency_model == "orin":
                self.observe_slack(slack_ms)
                if self.admission is not None:
                    self.admission.observe_slack(slack_ms)
            self._m_latency.record(latency_ms)
            self._m_slack.record(slack_ms)
            self._m_accuracy.record(metrics.accuracy)
            if stepped:
                self._m_adapt.record(adapt_step_ms)
            if latency_ms > config.deadline_ms:
                self._m_misses.inc()
            if tracer.enabled:
                self._trace_frame(
                    req,
                    session,
                    start_ms,
                    infer_ms,
                    infer_done_ms,
                    completion_ms,
                    adapt_step_ms if stepped else 0.0,
                    plan.batch_size,
                    decision,
                )
            session.record(
                frame, latency_ms, metrics.accuracy, result,
                adapt_ms=adapt_step_ms if result is not None else None,
            )
            if session.drift is not None and session.drift.observe(
                float(batch_entropy[frame_pos]), frame.image
            ):
                # resets apply after the batch completes: detection must
                # never perturb an in-flight fused adaptation group
                drift_fired[id(session)] = (session, frame.image)
        for session in sessions:
            # until the whole batch completes the session counts as in
            # flight on this device — the migration planner's movability
            # gate, so one session is never served by two devices in
            # overlapping windows
            session.busy_until_ms = max(session.busy_until_ms, clock_ms)
        self.busy_ms += clock_ms - start_ms
        self._last_served_ms = clock_ms
        self._decays_since_served = 0  # real traffic resets the canary
        for session, image in drift_fired.values():
            mode = session.drift.reset(session, image)
            sid = session.stream_id
            # the incoming regime re-prices the stream's adaptation step
            # on this device (same quote path as attach/set_slowdown)
            if config.latency_model == "orin":
                batch = getattr(
                    getattr(session.adapter, "config", None), "batch_size", 1
                )
                session.adapt_latency_ms = self.adapt_cost_fn(batch)
            self.session_cost_ms[sid] = self.estimate_cost_ms(session.adapter)
            self._m_drift_events.inc()
            self._m_drift_resets.inc()
            if mode == "cluster":
                self._m_drift_cluster.inc()
            if tracer.enabled:
                tracer.instant(
                    "drift_reset",
                    clock_ms,
                    pid=self.name,
                    tid="device",
                    cat="drift",
                    stream=sid,
                    mode=mode,
                    frames_seen=session.frames_seen,
                )
            if self.checkpoints is not None:
                # bill an unconditional durable checkpoint: a crash
                # racing the reset must never restore pre-reset state
                # from a stale archive (staged captures are dropped too)
                self._m_checkpoints.inc(
                    self.checkpoints.checkpoint(
                        session, self._admission_view(sid), clock_ms
                    )
                )
        if self.checkpoints is not None:
            seen: Set[int] = set()
            for session in sessions:
                if id(session) in seen:
                    continue
                seen.add(id(session))
                wrote = self.checkpoints.observe(
                    session, self._admission_view(session.stream_id), clock_ms
                )
                if wrote:
                    self._m_checkpoints.inc(wrote)
                    if tracer.enabled:
                        tracer.instant(
                            "checkpoint",
                            clock_ms,
                            pid=self.name,
                            tid="device",
                            cat="fault",
                            stream=session.stream_id,
                            frames_seen=session.frames_seen,
                        )
        return clock_ms

    def _trace_frame(
        self,
        req,
        session: StreamSession,
        start_ms: float,
        infer_ms: float,
        infer_done_ms: float,
        completion_ms: float,
        adapt_step_ms: float,
        batch_size: int,
        decision: "_Decision",
    ) -> None:
        """Emit one frame's span chain on its stream lane.

        The chain's durations sum exactly to the frame's reported
        latency: in ``"orin"`` mode ``queue + forward [+ adapt_wait]
        [+ adapt]`` tiles [arrival, completion]; in ``"wallclock"``
        mode the simulated queue does not exist, so the chain is the
        frame's forward share plus its own adaptation cost.  Pure reads
        of already-computed values — tracing cannot move any clock.
        """
        pid, tid, frame_idx = self.name, session.stream_id, req.frame_index
        if self.config.latency_model == "orin":
            self.tracer.span(
                "queue",
                req.arrival_ms,
                start_ms - req.arrival_ms,
                pid=pid, tid=tid, cat="frame", frame=frame_idx,
            )
            self.tracer.span(
                "forward",
                start_ms,
                infer_ms,
                pid=pid, tid=tid, cat="frame", frame=frame_idx, batch=batch_size,
            )
            wait_ms = completion_ms - adapt_step_ms - infer_done_ms
            if wait_ms > 1e-9:
                self.tracer.span(
                    "adapt_wait",
                    infer_done_ms,
                    wait_ms,
                    pid=pid, tid=tid, cat="frame", frame=frame_idx,
                )
        else:
            self.tracer.span(
                "forward",
                start_ms,
                infer_ms / batch_size,
                pid=pid, tid=tid, cat="frame", frame=frame_idx, batch=batch_size,
            )
        if adapt_step_ms > 0.0:
            self.tracer.span(
                "adapt",
                completion_ms - adapt_step_ms,
                adapt_step_ms,
                pid=pid, tid=tid, cat="frame", frame=frame_idx,
            )
        elif decision.feed:
            self.tracer.instant(
                "adapt_buffered", completion_ms,
                pid=pid, tid=tid, cat="admission", frame=frame_idx,
            )
        else:
            self.tracer.instant(
                "adapt_shed", completion_ms,
                pid=pid, tid=tid, cat="admission", frame=frame_idx,
            )
        self.tracer.instant(
            "emit", completion_ms, pid=pid, tid=tid, cat="frame", frame=frame_idx
        )

    # ------------------------------------------------------------------
    def _admission_decisions(
        self, plan: BatchPlan, start_ms: float, infer_ms: float, leftover_depth: int
    ) -> Dict[int, _Decision]:
        """Per-request adaptation grants for one served batch.

        Static policy (no admission controller): the stream's
        ``adapt_stride``/``adapt_phase`` schedule, offset-corrected when
        a backlogged batch carries several frames of one stream.  Slack
        policy: :meth:`SlackAdmission.admit` over the batch's step
        candidates, with the roofline feasibility budget measured from
        the batch's earliest deadline.
        """
        decisions: Dict[int, _Decision] = {}
        requests = plan.requests
        sessions = [req.payload[0] for req in requests]
        if self.admission is None:
            offsets: Dict[int, int] = {}
            for req, session in zip(requests, sessions):
                k = offsets.get(id(session), 0)
                offsets[id(session)] = k + 1
                decisions[id(req)] = _Decision(session.due_for_adaptation(k), True)
            return decisions

        candidates = []
        assumed_pending: Dict[int, int] = {}
        first_step: Dict[int, int] = {}
        for i, (req, session) in enumerate(zip(requests, sessions)):
            adapter = session.adapter
            batch_size = getattr(getattr(adapter, "config", None), "batch_size", 1)
            if id(session) not in assumed_pending:
                assumed_pending[id(session)] = getattr(
                    adapter, "pending_frames", batch_size - 1
                )
            pending = assumed_pending[id(session)]
            would_step = pending >= batch_size - 1
            assumed_pending[id(session)] = 0 if would_step else pending + 1
            fuse_key = None
            if would_step and id(session) not in first_step:
                first_step[id(session)] = i
                fuse_key = self._adapt_batcher.group_key(session)
            candidates.append(
                StepCandidate(
                    stream_id=session.stream_id,
                    would_step=would_step,
                    fuse_key=fuse_key,
                    frames_per_step=batch_size,
                    serial_cost_ms=session.adapt_latency_ms,
                )
            )
        if self.config.latency_model == "orin":
            batch_deadline_ms = min(r.deadline_ms for r in requests)
            budget_ms = adaptation_budget_ms(batch_deadline_ms, start_ms + infer_ms)
        else:
            budget_ms = float("inf")
        # fused (sublinear) billing only once grouped staging has proven
        # itself; before that — or if the graph is unlowerable — steps
        # are billed at the serial rate, an over-estimate that keeps the
        # feasibility guarantee hard even when stage() falls back
        allow_fused = (
            self.config.batch_adaptation and self._adapt_batcher.fuse_billable
        )
        grants = self.admission.admit(
            candidates, budget_ms, leftover_depth, allow_fused=allow_fused
        )
        for req, candidate, grant in zip(requests, candidates, grants):
            decisions[id(req)] = _Decision(grant, candidate.would_step)
        return decisions

    def _reconcile_buffer_drift(
        self, plan: BatchPlan, decisions: Dict[int, _Decision]
    ) -> None:
        """Refuse feeds the plan budgeted as free buffering but that the
        adapter's *actual* buffer state would turn into a step.

        Admission predicts buffer phases assuming its grants are taken;
        a denied step leaves the buffer full, so a later frame planned
        as "free buffering" would fire an unbudgeted step.  Decisions
        are reconciled here — before fused staging — so a refused frame
        can never ride along in a grouped replay either.
        """
        sim_pending: Dict[int, int] = {}
        for req in plan.requests:
            session, _ = req.payload
            decision = decisions[id(req)]
            adapter = session.adapter
            if not decision.feed or not hasattr(adapter, "pending_frames"):
                continue  # bufferless adapters step every granted frame
            batch_size = getattr(getattr(adapter, "config", None), "batch_size", 1)
            if id(session) not in sim_pending:
                sim_pending[id(session)] = adapter.pending_frames
            would_step = sim_pending[id(session)] >= batch_size - 1
            if would_step and not decision.planned_step:
                decisions[id(req)] = _Decision(False, False)
                continue  # refused: buffer state unchanged
            sim_pending[id(session)] = (
                0 if would_step else sim_pending[id(session)] + 1
            )

    def _plan_adaptation(
        self, plan: BatchPlan, start_ms: float, infer_ms: float, leftover_depth: int
    ) -> Tuple[Dict[int, _Decision], Dict[int, StagedGroup]]:
        """Admission decisions + staged fused steps for this served batch.

        Returns ``(decisions, group_of)``: the per-request admission
        outcome and ``{id(request): StagedGroup}`` for every granted
        step joining a fused replay; everything else granted keeps the
        serial path.  Staging (batch assembly + one-time trace/compile)
        happens here, outside the timed region, mirroring the inference
        engine's ``warm``.
        """
        decisions = self._admission_decisions(plan, start_ms, infer_ms, leftover_depth)
        self._reconcile_buffer_drift(plan, decisions)
        group_of: Dict[int, StagedGroup] = {}
        due = []
        seen_sessions = set()
        for req in plan.requests:
            session, frame = req.payload
            if not decisions[id(req)].feed or id(session) in seen_sessions:
                continue
            seen_sessions.add(id(session))
            due.append((req, session, frame))
        if self.config.batch_adaptation:
            candidates = [
                (self._adapt_batcher.group_key(session), (req, session, frame))
                for req, session, frame in due
            ]
            groups, _ = plan_adaptation_groups(candidates)
            for members in groups:
                staged = self._adapt_batcher.stage(
                    [session for _, session, _ in members],
                    [frame.image for _, _, frame in members],
                )
                if staged is None:  # graph not lowerable: serial fallback
                    continue
                group = StagedGroup(staged)
                for req, _, _ in members:
                    group_of[id(req)] = group
        # serial steppers warm their compiled plan outside the timed region
        for req, session, frame in due:
            if id(req) not in group_of and hasattr(session.adapter, "warm"):
                session.adapter.warm(frame.image)
        return decisions, group_of

    def _run_group(self, group: StagedGroup, clock_ms: float) -> float:
        """Execute one fused adaptation step; returns the advanced clock."""
        staged = group.staged
        with self.timer.measure("adaptation"):
            group.results = staged.execute()
        wall_ms = 1e3 * self.timer.records["adaptation"][-1]
        if self.config.latency_model == "orin":
            fused_ms = self.adapt_cost_fn(staged.num_streams * staged.group_size)
        else:
            fused_ms = wall_ms
        self.adapt_batch_sizes.record(staged.num_streams)
        self._m_adapt_batch_sizes.record(staged.num_streams)
        group.per_stream_ms = fused_ms / staged.num_streams
        group.done_clock_ms = clock_ms + fused_ms
        if self.tracer.enabled and self.config.latency_model == "orin":
            self.tracer.span(
                "adapt_fused",
                clock_ms,
                fused_ms,
                pid=self.name,
                tid="device",
                cat="adapt",
                streams=staged.num_streams,
                group_size=staged.group_size,
            )
        return group.done_clock_ms
