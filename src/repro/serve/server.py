"""The fleet coordinator: place sessions on a device pool, drive the
event-driven ingest, and rebalance by migration.

One :class:`FleetServer` now fronts a *pool* of devices.  Each pool
member is a :class:`~repro.serve.pool.DeviceWorker` owning everything a
single device needs — its :class:`~repro.hw.device.DeviceProfile`, its
:class:`~repro.serve.scheduler.DeadlineAwareScheduler` and queue, its
:class:`~repro.serve.admission.SlackAdmission` budget and its compiled
plan caches — while the coordinator owns what spans devices:

* **placement** — at registration each stream is placed by
  ``FleetConfig(placement=...)``: ``"least_loaded"`` (argmin projected
  utilization from the roofline-estimated per-stream cost *on each
  device* — heterogeneous pools price the same stream differently per
  power mode), ``"round_robin"``, or ``"pinned"`` (explicit
  ``add_stream(..., device=k)``).
* **ingest** — a single fleet-wide time-ordered arrival heap.  Every
  stream owns a seeded :class:`~repro.serve.streams.ArrivalProcess`
  (per-stream phase offset, jitter, drops; seeds derived via
  ``utils.rng.child_seed(arrival_seed, stream_id)``, so a stream's
  arrival realization is invariant to device count and placement).
  Arrivals route to the session's *current* device; each worker
  launches a deadline-feasible batch the moment it is free and frames
  are pending, at ``max(device_free, earliest pending arrival)`` — the
  same event-driven discipline as before, generalized to many device
  clocks.  ``FleetConfig(ingest="sync")`` keeps the tick-synchronous
  loop as the parity oracle, drained per worker.
* **migration** — with ``FleetConfig(migration=MigrationConfig(...))``
  each worker's observed-slack EWMA feeds a
  :class:`~repro.serve.pool.MigrationPlanner`; when one device runs
  sustainedly hot while another is cooler by more than the configured
  gap, the hot device's heaviest movable session (no frames queued)
  migrates: the session object — `ParameterSnapshot`, BN buffers,
  optimizer slots, monitors — moves bitwise untouched, its admission
  debt transfers between controllers, and its modeled adaptation cost
  is re-priced on the target device.  A cooldown keeps sessions from
  thrashing.

A pool of one device (``FleetConfig(devices=1)``, the default)
reproduces the former single-device ``FleetServer`` outputs exactly —
the per-batch serving path moved verbatim into ``DeviceWorker`` and the
merged event loop degenerates to the old one — for both ingest modes;
the test suite and the throughput benchmark guard that parity.

Latency accounting is unchanged (see ``DeviceWorker.serve_batch``):
``latency_model="orin"`` is a discrete-event simulation over roofline
service times per device, ``"wallclock"`` measures the host numpy cost
of the shared implementation.  The shared forward runs through the
compiled engine by default; granted same-batch adaptation steps fuse
into grouped replays per device (:mod:`repro.serve.adapt_batch`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..adapt.base import Adapter
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..data.dataset import LaneSample
from ..engine.backends import available_backends
from ..hw.deadline import DEADLINE_30FPS_MS, stream_utilization
from ..hw.device import DeviceProfile, get_power_mode
from ..metrics.lane_accuracy import TUSIMPLE_THRESHOLD_CELLS
from ..models.spec import ModelSpec
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import NULL_TRACER, SpanTracer
from ..utils.profiling import Timer
from ..utils.rng import child_seed
from .adapt_batch import static_fuse_key
from .admission import AdmissionConfig
from .checkpoint import CheckpointConfig, SessionCheckpointStore
from .drift import DriftResetConfig, SessionDriftState
from .faults import FaultEvent, FaultSchedule
from .pool import (
    PLACEMENT_POLICIES,
    DeviceWorker,
    MigrationConfig,
    MigrationPlanner,
    place_stream,
)
from .report import FleetReport
from .scheduler import FrameRequest
from .streams import (
    ArrivalModel,
    ArrivalProcess,
    StreamRegistry,
    StreamSession,
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet serving loop configuration."""

    deadline_ms: float = DEADLINE_30FPS_MS
    frame_period_ms: Optional[float] = None  # None → deadline_ms (30 FPS)
    latency_model: str = "orin"  # "orin" | "wallclock"
    decode_method: str = "expectation"
    accuracy_threshold_cells: float = TUSIMPLE_THRESHOLD_CELLS
    rolling_window: int = 30
    max_batch_size: int = 8
    aging_rate: float = 0.1
    adapt_stride: int = 1  # static fallback policy: every k-th frame adapts
    batch_adaptation: bool = True  # fuse same-batch streams' entropy steps
    ingest: str = "async"  # "async" (event-driven) | "sync" (legacy oracle)
    jitter_ms: float = 0.0  # per-frame arrival delay, uniform in [0, jitter]
    drop_rate: float = 0.0  # probability a frame is lost before the server
    phase_spread_ms: float = 0.0  # stream i's arrival phase = i * spread
    arrival_seed: int = 0  # root seed of the per-stream arrival processes
    admission: Optional[AdmissionConfig] = None  # None → static stride
    devices: int = 1  # pool size (ignored when an explicit pool is passed)
    placement: str = "least_loaded"  # | "round_robin" | "pinned"
    migration: Optional[MigrationConfig] = None  # None → sessions never move
    backend: str = "numpy"  # plan backend for compiled serving/adaptation
    # kernel-pool width for codegen backends.  None keeps single-thread
    # pricing AND compilation (bitwise-stable with pre-threading runs);
    # setting it threads both the compiled plans and the roofline model,
    # so scheduler/admission/migration see the faster device honestly.
    threads: Optional[int] = None
    checkpoint: Optional[CheckpointConfig] = None  # None → no session store
    faults: Optional[FaultSchedule] = None  # None → nothing ever fails
    drift: Optional[DriftResetConfig] = None  # None → no drift detection

    def __post_init__(self):
        if self.latency_model not in ("orin", "wallclock"):
            raise ValueError(f"unknown latency model {self.latency_model!r}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.frame_period_ms is not None and self.frame_period_ms <= 0:
            raise ValueError(
                f"frame_period_ms must be positive, got {self.frame_period_ms}"
            )
        if self.decode_method not in ("argmax", "expectation"):
            raise ValueError(f"unknown decode method {self.decode_method!r}")
        if self.rolling_window < 1:
            raise ValueError(f"rolling_window must be >= 1, got {self.rolling_window}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.adapt_stride < 1:
            raise ValueError(f"adapt_stride must be >= 1, got {self.adapt_stride}")
        if self.threads is not None and self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.ingest not in ("async", "sync"):
            raise ValueError(f"unknown ingest mode {self.ingest!r}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.phase_spread_ms < 0:
            raise ValueError(
                f"phase_spread_ms must be >= 0, got {self.phase_spread_ms}"
            )
        if self.ingest == "sync" and (
            self.jitter_ms > 0 or self.drop_rate > 0 or self.phase_spread_ms > 0
        ):
            raise ValueError(
                "ingest='sync' is the tick-synchronous parity oracle and "
                "requires jitter_ms == drop_rate == phase_spread_ms == 0"
            )
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; expected one "
                f"of {PLACEMENT_POLICIES}"
            )
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown plan backend {self.backend!r}; expected one of "
                f"{available_backends()}"
            )
        if self.ingest == "sync" and self.migration is not None:
            raise ValueError(
                "ingest='sync' is the tick-synchronous parity oracle and "
                "cannot migrate: its per-tick drain has no global launch "
                "clock, so a backlogged device's sessions would stay "
                "pinned (busy_until on the device clock vs the tick "
                "clock) and migration would silently never fire — use "
                "the event-driven async ingest for device pools that "
                "rebalance"
            )
        if self.latency_model == "wallclock" and self.migration is not None:
            raise ValueError(
                "latency_model='wallclock' has no modeled deadline slack, "
                "so the migration planner's heat signal never exists and "
                "migration would silently never fire — rebalancing needs "
                "the simulated 'orin' clock"
            )
        if self.faults is not None and len(self.faults):
            if self.ingest != "async" or self.latency_model != "orin":
                raise ValueError(
                    "fault injection is driven through the event-driven "
                    "launch clock — it requires ingest='async' and "
                    "latency_model='orin' (the sync oracle and wallclock "
                    "serving have no global simulated time to schedule "
                    "faults on)"
                )
            if self.faults.crash_count and self.checkpoint is None:
                raise ValueError(
                    "a FaultSchedule with crash events requires a "
                    "CheckpointConfig: crash recovery restores sessions "
                    "from their durable checkpoints, and without a store "
                    "every hosted stream's adapted state would silently "
                    "be destroyed"
                )

    @property
    def period_ms(self) -> float:
        return self.frame_period_ms if self.frame_period_ms is not None else self.deadline_ms


class FleetServer:
    """Serves N adapting camera streams across a pool of devices."""

    def __init__(
        self,
        model,
        config: Optional[FleetConfig] = None,
        device: Optional[DeviceProfile] = None,
        spec: Optional[ModelSpec] = None,
        device_pool: Optional[Sequence[DeviceProfile]] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.model = model
        self.config = config if config is not None else FleetConfig()
        self.spec = spec
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = MetricsRegistry()
        profiles: Optional[List[DeviceProfile]] = None
        if device_pool is not None:
            profiles = list(device_pool)
            if not profiles:
                raise ValueError("device_pool must not be empty")
            if self.config.devices not in (1, len(profiles)):
                raise ValueError(
                    f"FleetConfig(devices={self.config.devices}) "
                    f"contradicts an explicit pool of {len(profiles)} devices"
                )
        if self.config.latency_model == "orin":
            if profiles is not None:
                pool = profiles
            else:
                if device is None:
                    raise ValueError(
                        "latency_model='orin' requires a DeviceProfile (or an "
                        "explicit device_pool) and a paper-size ModelSpec "
                        "(the platform under study)"
                    )
                pool = [device] * self.config.devices
            if spec is None:
                raise ValueError(
                    "latency_model='orin' requires a DeviceProfile and a "
                    "paper-size ModelSpec (the platform under study)"
                )
        else:
            if profiles is not None:
                raise ValueError(
                    "latency_model='wallclock' serving is unpriced, so an "
                    "explicit device_pool's profiles would be silently "
                    "ignored — use FleetConfig(devices=N) to size an "
                    "unpriced pool"
                )
            pool = [None] * self.config.devices
        self.device = pool[0] if pool[0] is not None else device
        self.timer = Timer()
        self._slack_alpha = (
            self.config.migration.ewma_alpha
            if self.config.migration is not None
            else 0.25
        )
        self.checkpoints: Optional[SessionCheckpointStore] = (
            SessionCheckpointStore(self.config.checkpoint)
            if self.config.checkpoint is not None
            else None
        )
        self.workers: List[DeviceWorker] = [
            DeviceWorker(
                index,
                model,
                self.config,
                device=profile,
                spec=spec,
                timer=self.timer,
                slack_alpha=self._slack_alpha,
                metrics=self.metrics,
                tracer=self.tracer,
                checkpoints=self.checkpoints,
            )
            for index, profile in enumerate(pool)
        ]
        self.registry = StreamRegistry(model)
        self._placements: Dict[str, int] = {}
        self._migration_planner: Optional[MigrationPlanner] = (
            MigrationPlanner(self.config.migration)
            if self.config.migration is not None and len(self.workers) > 1
            else None
        )
        self._migration_events: List[Dict[str, object]] = []
        self._event_seq = 0  # ties arrival events deterministically
        # fault-injection bookkeeping: applied-fault rows, per-crash
        # recovery records, and the quantified per-stream loss
        self._fault_queue: List[FaultEvent] = (
            list(self.config.faults) if self.config.faults is not None else []
        )
        self._fault_cursor = 0
        self._fault_rows: List[Dict[str, object]] = []
        self._recovery_events: List[Dict[str, object]] = []
        self._frames_lost: Dict[str, int] = {}
        self._crash_dropped: Dict[str, int] = {}

    # -- single-device compatibility views -----------------------------
    @property
    def scheduler(self):
        """The pool's first scheduler (the only one at ``devices=1``)."""
        return self.workers[0].scheduler

    @property
    def admission(self):
        """The pool's first admission controller (the only one at 1)."""
        return self.workers[0].admission

    # ------------------------------------------------------------------
    def add_stream(
        self,
        stream_id: str,
        stream: Iterator[LaneSample],
        adapter: Optional[Adapter] = None,
        adapter_config: Optional[LDBNAdaptConfig] = None,
        arrival: Optional[ArrivalModel] = None,
        device: Optional[int] = None,
    ) -> StreamSession:
        """Register one camera stream and place it on a pool device.

        The session snapshots the model's *current* BN state, so register
        streams while the model holds the pristine source-trained weights
        each vehicle should start from.  Without an explicit ``adapter``
        a per-stream :class:`LDBNAdapt` is created (optionally from
        ``adapter_config``); every session owns its adapter and therefore
        its optimizer momentum.

        Without an explicit ``arrival`` model the stream gets the fleet
        default: phase offset ``i * phase_spread_ms`` for the *i*-th
        registered stream, the configured jitter/drop statistics, and a
        per-stream child seed of ``arrival_seed`` keyed by *stream id* —
        deterministic, and invariant to pool size and placement.

        ``device`` pins the session to a pool index; otherwise the
        configured placement policy picks one from the roofline-estimated
        per-device stream cost.  When ``adapt_stride > 1`` (static
        admission) each stream's adaptation phase is auto-staggered by
        registration order, spreading the fleet's adaptation load across
        camera periods.
        """
        if adapter is not None and adapter_config is not None:
            raise ValueError("pass either adapter or adapter_config, not both")
        if adapter is None:
            adapter = LDBNAdapt(
                self.model,
                adapter_config if adapter_config is not None else LDBNAdaptConfig(),
            )
        index = len(self.registry)
        if arrival is None:
            arrival = ArrivalModel(
                period_ms=self.config.period_ms,
                phase_ms=index * self.config.phase_spread_ms,
                jitter_ms=self.config.jitter_ms,
                drop_rate=self.config.drop_rate,
                seed=child_seed(self.config.arrival_seed, stream_id),
            )
        elif self.config.ingest == "sync" and (
            arrival.jitter_ms > 0 or arrival.drop_rate > 0 or arrival.phase_ms > 0
        ):
            raise ValueError(
                "ingest='sync' ignores arrival processes; an explicit "
                "jittered/dropping/phase-shifted ArrivalModel would be "
                "silently discarded — use the async ingest"
            )
        period = self.config.period_ms
        alive = self.alive_workers
        if device is not None:
            if not 0 <= device < len(self.workers):
                raise ValueError(
                    f"pinned device {device} out of range for a "
                    f"{len(self.workers)}-device pool"
                )
            if not self.workers[device].alive:
                raise ValueError(f"cannot pin stream to dead device {device}")
        costs = [
            stream_utilization(worker.estimate_cost_ms(adapter), period)
            for worker in alive
        ]
        loads = [worker.load for worker in alive]
        pinned = None
        if device is not None:
            pinned = next(
                i for i, worker in enumerate(alive) if worker.index == device
            )
        target = alive[
            place_stream(self.config.placement, index, costs, loads, pinned=pinned)
        ].index
        session = self.registry.register(
            stream_id,
            stream,
            adapter,
            deadline_ms=self.config.deadline_ms,
            rolling_window=self.config.rolling_window,
            adapt_stride=self.config.adapt_stride,
            adapt_phase=index % self.config.adapt_stride,
            arrivals=ArrivalProcess(arrival),
        )
        if self.config.drift is not None:
            # captured now, while the snapshot still holds the pristine
            # source state — that capture is the reset target
            session.drift = SessionDriftState(self.config.drift, session)
        self.workers[target].attach(session)
        self._placements[stream_id] = target
        return session

    @property
    def alive_workers(self) -> List[DeviceWorker]:
        """Pool members that can still launch (placement/migration targets)."""
        return [worker for worker in self.workers if worker.alive]

    def device_of(self, stream_id: str) -> int:
        """Pool index currently serving the stream."""
        return self._placements[stream_id]

    def _worker_of(self, session: StreamSession) -> DeviceWorker:
        return self.workers[self._placements[session.stream_id]]

    # -- elastic pool: join / crash / fault replay ---------------------
    def add_device(
        self,
        profile: Optional[DeviceProfile] = None,
        now_ms: float = 0.0,
    ) -> DeviceWorker:
        """Register a new device with a running fleet.

        ``profile`` is a :class:`DeviceProfile` or a power-mode name
        ("orin-30w"); None inherits the coordinator's base device.  The
        worker's clock starts at ``now_ms`` and its slack EWMA is seeded
        from the roofline prior (the slack a lone batch-1 frame would
        see on it), so the migration planner can rebalance onto the new
        capacity immediately instead of waiting for an observation that
        — with no sessions placed — would never come.
        """
        if isinstance(profile, str):
            profile = get_power_mode(profile)
        if profile is None:
            profile = self.device
        if self.config.latency_model == "orin" and profile is None:
            raise ValueError("latency_model='orin' joins need a DeviceProfile")
        worker = DeviceWorker(
            len(self.workers),
            self.model,
            self.config,
            device=profile if self.config.latency_model == "orin" else None,
            spec=self.spec,
            timer=self.timer,
            slack_alpha=self._slack_alpha,
            metrics=self.metrics,
            tracer=self.tracer,
            checkpoints=self.checkpoints,
        )
        worker.device_free_ms = now_ms
        worker.joined_ms = now_ms
        worker._last_served_ms = now_ms
        worker.slack_ewma_ms = worker.roofline_slack_prior_ms()
        self.workers.append(worker)
        if (
            self.config.migration is not None
            and self._migration_planner is None
            and len(self.alive_workers) > 1
        ):
            # the pool was sized 1 at construction; rebalancing becomes
            # possible the moment a second device exists
            self._migration_planner = MigrationPlanner(self.config.migration)
        self._fault_rows.append(
            {
                "kind": "join",
                "time_ms": now_ms,
                "device": worker.index,
                "profile": profile.name if profile is not None else None,
            }
        )
        self.metrics.counter("fleet/device_joins").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "device_join",
                now_ms,
                pid=worker.name,
                tid="device",
                cat="fault",
                profile=profile.name if profile is not None else "wallclock",
            )
        return worker

    def crash_device(self, index: int, now_ms: float) -> List[Dict[str, object]]:
        """Kill device ``index`` at ``now_ms`` and recover its sessions.

        The crash sequence (all on the simulated clock, so a seeded
        replay reproduces it bitwise):

        1. The device dies at ``now_ms``; a batch already committed on
           its clock completes (the simulation commits batches
           atomically at launch), so the *watchdog* detects the missed
           next launch at ``detect_ms = max(now_ms, device_free_ms)``.
        2. Frames queued on the dead device die with its memory — they
           are counted per stream (``crash_dropped_frames``), never
           served, never re-served.
        3. Every hosted session is restored from its last durable
           checkpoint (async-staged captures are lost, like any
           write-behind store) and re-placed over the surviving pool via
           the normal placement path; its admission debt is re-imported
           from the checkpoint and its adaptation price re-quoted by the
           new device.  Frames served between the checkpoint and the
           crash are **lost, not recomputed**: serving counters stand,
           only the adapted state rolls back (``frames_lost`` row).

        Returns the per-session recovery records (also appended to the
        run report).
        """
        worker = self.workers[index]
        if not worker.alive:
            raise ValueError(f"device {index} is already dead")
        worker.crash(now_ms)
        detect_ms = max(now_ms, worker.device_free_ms)
        self._fault_rows.append(
            {"kind": "crash", "time_ms": now_ms, "device": index}
        )
        self.metrics.counter("fleet/crashes").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "device_crash",
                now_ms,
                pid=worker.name,
                tid="device",
                cat="fault",
                detect_ms=detect_ms,
                sessions=len(worker.sessions),
            )
        alive = self.alive_workers
        if not alive and worker.sessions:
            raise RuntimeError(
                f"device {index} crashed with {len(worker.sessions)} hosted "
                "sessions and no surviving device to recover them onto"
            )
        # queued frames died with the device
        for sid in list(worker.scheduler.pending_stream_ids):
            lost = worker.scheduler.extract_stream(sid)
            if lost:
                self._crash_dropped[sid] = self._crash_dropped.get(
                    sid, 0
                ) + len(lost)
                self.metrics.counter("fleet/crash_dropped_frames").inc(
                    len(lost)
                )
        records: List[Dict[str, object]] = []
        period = self.config.period_ms
        for session in list(worker.sessions.values()):
            sid = session.stream_id
            worker.detach(session)  # dead controller's debt is lost too
            if self.checkpoints is not None:
                self.checkpoints.drop_staged(sid)
                meta = self.checkpoints.restore(session)
            else:
                meta = None
            if meta is not None:
                frames_lost = session.frames_seen - int(meta["frames_seen"])
                admission_state = {
                    "static_key": static_fuse_key(session.adapter),
                    "debt": meta["admission"]["debt"],
                    "deferrals": meta["admission"]["deferrals"],
                }
            else:  # no durable checkpoint: all adapted state is gone
                frames_lost = session.frames_seen
                admission_state = None
            costs = [
                stream_utilization(w.estimate_cost_ms(session.adapter), period)
                for w in alive
            ]
            loads = [w.load for w in alive]
            # recovery always re-places by load — a "pinned" fleet's pin
            # died with the device
            placement = (
                self.config.placement
                if self.config.placement != "pinned"
                else "least_loaded"
            )
            target = alive[
                place_stream(placement, len(self._placements), costs, loads)
            ]
            target.attach(
                session, admission_state=admission_state, now_ms=detect_ms
            )
            target.device_free_ms = max(target.device_free_ms, detect_ms)
            self._placements[sid] = target.index
            session.migrations += 1
            record = {
                "time_ms": detect_ms,
                "stream": sid,
                "source": index,
                "target": target.index,
                "frames_lost": frames_lost,
                "crash_dropped": self._crash_dropped.get(sid, 0),
                "checkpoint_frames": int(meta["frames_seen"]) if meta else 0,
                "recovery_latency_ms": detect_ms - now_ms,
            }
            records.append(record)
            self._recovery_events.append(record)
            self._frames_lost[sid] = self._frames_lost.get(sid, 0) + frames_lost
            self.metrics.counter("fleet/recoveries").inc()
            self.metrics.counter("fleet/frames_lost").inc(frames_lost)
            if self.tracer.enabled:
                self.tracer.instant(
                    "session_recovered",
                    detect_ms,
                    pid=target.name,
                    tid=sid,
                    cat="fault",
                    source=index,
                    frames_lost=frames_lost,
                )
        return records

    def _apply_fault(self, event: FaultEvent) -> None:
        """Apply one scheduled fault on the event loop's clock."""
        if event.kind == "join":
            self.add_device(event.profile, now_ms=event.time_ms)
            return
        if event.device is None or not 0 <= event.device < len(self.workers):
            raise ValueError(
                f"fault {event!r} targets device {event.device}, but the "
                f"pool has {len(self.workers)} devices at t={event.time_ms}"
            )
        worker = self.workers[event.device]
        if event.kind == "crash":
            if worker.alive:
                self.crash_device(event.device, event.time_ms)
            return
        if not worker.alive:
            return  # stalling or slowing a dead device is meaningless
        if event.kind == "stall":
            worker.device_free_ms = max(
                worker.device_free_ms, event.time_ms + event.duration_ms
            )
            self._fault_rows.append(event.as_row())
            if self.tracer.enabled:
                self.tracer.instant(
                    "device_stall",
                    event.time_ms,
                    pid=worker.name,
                    tid="device",
                    cat="fault",
                    duration_ms=event.duration_ms,
                )
        elif event.kind == "slow":
            worker.set_slowdown(event.factor)
            self._fault_rows.append(event.as_row())
            if self.tracer.enabled:
                self.tracer.instant(
                    "device_slow",
                    event.time_ms,
                    pid=worker.name,
                    tid="device",
                    cat="fault",
                    factor=event.factor,
                )

    # ------------------------------------------------------------------
    def run(self, num_ticks: int) -> FleetReport:
        """Serve ``num_ticks`` camera periods' worth of frames per stream.

        Each stream contributes up to ``num_ticks`` frames on its own
        arrival process (fewer when frames drop or the source ends early;
        truncated streams simply stop contributing while the fleet keeps
        serving the others).
        """
        if len(self.registry) == 0:
            raise ValueError("no streams registered")
        if self.config.ingest == "sync":
            return self._run_sync(num_ticks)
        return self._run_async(num_ticks)

    def _run_sync(self, num_ticks: int) -> FleetReport:
        """Legacy tick-synchronous loop: one cohort per period, drained
        per device.

        The parity oracle for the event-driven loop — with zero jitter,
        drops and phase spread both loops see identical arrivals, and
        whenever each device keeps up within its camera period they form
        identical batches.
        """
        period = self.config.period_ms
        for tick in range(num_ticks):
            if self.registry.all_exhausted:
                break
            arrival_ms = tick * period
            for session in self.registry:
                frame = session.next_frame()
                if frame is None:
                    continue
                worker = self._worker_of(session)
                worker.scheduler.submit(
                    FrameRequest(
                        stream_id=session.stream_id,
                        frame_index=session.frames_ingested - 1,
                        arrival_ms=arrival_ms,
                        deadline_ms=arrival_ms + self.config.deadline_ms,
                        payload=(session, frame),
                    )
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "ingest",
                        arrival_ms,
                        pid=worker.name,
                        tid=session.stream_id,
                        cat="ingest",
                        frame=session.frames_ingested - 1,
                    )
            for worker in self.workers:
                while worker.scheduler.pending_count:
                    start_ms = max(worker.device_free_ms, arrival_ms)
                    worker.device_free_ms = worker.launch(start_ms)
        return self._build_report(
            max(worker.device_free_ms for worker in self.workers)
        )

    def _run_async(self, num_ticks: int) -> FleetReport:
        """Event-driven loop over each stream's jittered arrival process.

        One fleet-wide time-ordered event queue holds every stream's
        next arrival; arrivals route to the session's current device,
        and each worker launches a batch whenever it is free and frames
        are pending, at ``max(device_free, earliest pending arrival)`` —
        so batches form from what has actually arrived by launch time,
        and a backlogged device folds late arrivals into the draining
        batches instead of waiting out the tick grid.  Launches execute
        in global time order across workers (ties by pool index), which
        keeps the simulation deterministic and the fleet-wide metric
        streams time-ordered.
        """
        wallclock = self.config.latency_model == "wallclock"
        heap: List[Tuple[float, int, bool, StreamSession]] = []
        for session in self.registry:
            self._push_arrival(heap, session, num_ticks)
        while heap or any(w.scheduler.pending_count for w in self.workers):
            ready = [
                (
                    max(
                        worker.device_free_ms,
                        worker.scheduler.earliest_pending_arrival_ms,
                    ),
                    worker.index,
                )
                for worker in self.workers
                if worker.alive and worker.scheduler.pending_count
            ]
            launch_ms, launch_idx = min(ready) if ready else (None, None)
            # scheduled faults drain through the same global clock as
            # arrivals and launches (fault wins ties: a device crashing
            # at exactly its launch instant never launches), which is
            # what makes a seeded faulted run replay bitwise
            if self._fault_cursor < len(self._fault_queue):
                fault = self._fault_queue[self._fault_cursor]
                upcoming = [t for t in (launch_ms,) if t is not None]
                if heap:
                    upcoming.append(heap[0][0])
                if not upcoming or fault.time_ms <= min(upcoming):
                    self._fault_cursor += 1
                    self._apply_fault(fault)
                    continue
            if heap and (launch_ms is None or heap[0][0] <= launch_ms):
                arrival_ms, _, dropped, session = heapq.heappop(heap)
                if dropped:
                    session.drop_frame()
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "ingest_drop",
                            arrival_ms,
                            pid=self._worker_of(session).name,
                            tid=session.stream_id,
                            cat="ingest",
                        )
                else:
                    frame = session.next_frame()
                    if frame is not None:
                        worker = self._worker_of(session)
                        worker.scheduler.submit(
                            FrameRequest(
                                stream_id=session.stream_id,
                                frame_index=session.frames_ingested - 1,
                                arrival_ms=arrival_ms,
                                deadline_ms=arrival_ms + self.config.deadline_ms,
                                payload=(session, frame),
                            )
                        )
                        if self.tracer.enabled:
                            self.tracer.instant(
                                "ingest",
                                arrival_ms,
                                pid=worker.name,
                                tid=session.stream_id,
                                cat="ingest",
                                frame=session.frames_ingested - 1,
                            )
                self._push_arrival(heap, session, num_ticks)
                continue
            if launch_ms is None:
                break  # pragma: no cover - loop condition excludes this
            if self._migration_planner is not None:
                # a drained device's heat signal must cool on the launch
                # clock, or it never re-attracts sessions (idle-decay fix)
                for candidate in self.workers:
                    if candidate.alive:
                        candidate.decay_idle_slack(launch_ms)
            # rebalance on the launch clock BEFORE the batch forms:
            # launch times are monotone across the pool (completions are
            # not), so a migration can never take effect "before"
            # another device's next batch — and at this instant the
            # previous batch's sessions are no longer in flight, so a
            # saturated device genuinely has movable sessions.  A move
            # re-homes queued frames, so the launch plan is re-derived.
            if self._maybe_migrate(launch_ms):
                continue
            worker = self.workers[launch_idx]
            completion_ms = worker.launch(launch_ms)
            # wallclock serving has no modeled service time: sequencing
            # advances with arrivals only (timestamp-grouped batches)
            worker.device_free_ms = launch_ms if wallclock else completion_ms
        return self._build_report(
            max(worker.device_free_ms for worker in self.workers)
        )

    def _push_arrival(self, heap, session: StreamSession, num_ticks: int) -> None:
        """Queue the session's next arrival event, if any frames remain."""
        if session.exhausted:
            return
        if session.arrivals is None:
            session.arrivals = ArrivalProcess(
                ArrivalModel(period_ms=self.config.period_ms)
            )
        if session.arrivals.frames_emitted >= num_ticks:
            return
        _, arrival_ms, dropped = session.arrivals.next_event()
        heapq.heappush(heap, (arrival_ms, self._event_seq, dropped, session))
        self._event_seq += 1

    # -- migration -----------------------------------------------------
    def _maybe_migrate(self, now_ms: float) -> bool:
        """Rebalance once: move a session off a sustained-hot device.

        Called at every async batch launch; returns True when a session
        moved (the caller re-derives its launch plan).  A no-op without
        a migration config — the sync/wallclock modes, where migration
        cannot work, are rejected at config time.
        """
        planner = self._migration_planner
        if planner is None:
            return False
        # the planner only ever sees the alive sub-pool: a dead device is
        # empty and never-observed, which would otherwise make it look
        # maximally cool — the perfect (and catastrophically wrong)
        # migration target
        alive = self.alive_workers
        if len(alive) < 2:
            return False
        if planner.in_cooldown(now_ms):
            return False  # no decision possible: skip the movable scans
        if not planner.any_hot(
            [worker.slack_ewma_ms for worker in alive],
            [worker.frames_served for worker in alive],
        ):
            return False  # no sustained-hot source: skip the scans too
        movable = set()
        for worker in alive:
            pending = worker.scheduler.pending_stream_ids
            for sid, session in worker.sessions.items():
                # a session moves only when no batch containing it is
                # still completing — queued frames re-home WITH it, so a
                # saturated device can drain, but in-flight work pins it
                # (it is never served by two devices in overlapping
                # windows).  An exhausted session with an empty queue has
                # nothing left to move.
                if session.busy_until_ms > now_ms:
                    continue
                if session.exhausted and sid not in pending:
                    continue
                movable.add(sid)
        if not movable:
            return False
        period = self.config.period_ms
        costs = {
            sid: stream_utilization(cost, period)
            for worker in alive
            for sid, cost in worker.session_cost_ms.items()
        }
        decision = planner.plan(
            now_ms,
            [worker.slack_ewma_ms for worker in alive],
            [worker.frames_served for worker in alive],
            [list(worker.sessions) for worker in alive],
            movable,
            costs,
        )
        if decision is None:
            return False
        # the decision indexes the alive sub-pool; translate back to
        # global pool indices before touching workers/placements
        source = alive[decision.source].index
        target = alive[decision.target].index
        self._migrate(decision.stream_id, source, target, now_ms)
        planner.commit(decision, now_ms)
        self._migration_events.append(
            {
                "time_ms": now_ms,
                "stream": decision.stream_id,
                "source": source,
                "target": target,
            }
        )
        self.metrics.counter("fleet/migrations").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "migrate",
                now_ms,
                pid=self.workers[source].name,
                tid=decision.stream_id,
                cat="migration",
                source=source,
                target=target,
            )
        return True

    def _migrate(
        self, stream_id: str, source: int, target: int, now_ms: float = 0.0
    ) -> None:
        """Move one session between workers, state and backlog intact.

        The session object carries its own BN snapshot, optimizer slots
        and monitors, so the move itself is bitwise lossless; what
        changes hands is the admission state (debt/deferrals/fuse key),
        the modeled adaptation price (re-quoted from the target's own
        profile), and the session's *queued frames* — re-submitted to
        the target's scheduler with arrivals and deadlines intact, so a
        saturated device can actually shed its backlog.  The target's
        clock is floored at the handoff instant: re-homed frames can
        never launch before ``now_ms``, which (with the ``busy_until``
        movability gate) keeps one session from being served by two
        devices in overlapping windows.
        """
        session = self.registry.get(stream_id)
        state = self.workers[source].detach(session)
        self.workers[target].attach(session, admission_state=state, now_ms=now_ms)
        for request in self.workers[source].scheduler.extract_stream(stream_id):
            self.workers[target].scheduler.submit(request)
        self.workers[target].device_free_ms = max(
            self.workers[target].device_free_ms, now_ms
        )
        self.workers[source].migrations_out += 1
        self.workers[target].migrations_in += 1
        session.migrations += 1
        self._placements[stream_id] = target

    # ------------------------------------------------------------------
    def _build_report(self, elapsed_ms: float) -> FleetReport:
        if self.checkpoints is not None:
            # end-of-run barrier: staged async captures become durable,
            # so a cold restart can resume every stream's final state
            self.checkpoints.flush()
        metrics = self.metrics
        report = FleetReport(
            deadline_ms=self.config.deadline_ms,
            latency_model=self.config.latency_model,
            elapsed_ms=elapsed_ms
            if self.config.latency_model == "orin"
            else 1e3 * (self.timer.total("inference") + self.timer.total("adaptation")),
            batch_sizes=metrics.histogram("fleet/batch_size"),
            adapt_batch_sizes=metrics.histogram("fleet/adapt_batch_size"),
            queue_depths=metrics.histogram("fleet/queue_depth"),
            latency_histogram=metrics.histogram("fleet/latency_ms"),
            slack_histogram=metrics.histogram("fleet/slack_ms"),
            adapt_histogram=metrics.histogram("fleet/adapt_ms"),
            accuracy_histogram=metrics.histogram("fleet/accuracy"),
            deadline_misses=metrics.counter("fleet/deadline_misses").value,
            migration_events=list(self._migration_events),
            fault_events=list(self._fault_rows),
            recovery_events=list(self._recovery_events),
            frames_lost=dict(self._frames_lost),
            crash_dropped_frames=dict(self._crash_dropped),
            checkpoint_writes=(
                self.checkpoints.writes if self.checkpoints is not None else 0
            ),
            canary_probes=sum(w.canary_probes for w in self.workers),
        )
        report.device_reports = [
            worker.report(report.elapsed_ms) for worker in self.workers
        ]
        for session in self.registry:
            report.stream_reports[session.stream_id] = session.report
            report.admission_grants[session.stream_id] = session.adapt_grants
            report.admission_skips[session.stream_id] = session.adapt_skips
            report.dropped_frames[session.stream_id] = session.frames_dropped
            if session.drift is not None:
                report.drift_events[session.stream_id] = session.drift.events
                report.drift_resets[session.stream_id] = session.drift.resets
                report.drift_cluster_restores[session.stream_id] = (
                    session.drift.cluster_restores
                )
        return report
