"""The fleet serving loop: ingest → batch → shared forward → per-stream
decode + adaptation.

Each tick of the fleet clock, every registered stream contributes one
frame (30 FPS cameras are synchronous to within a frame period).  The
scheduler folds pending frames into deadline-feasible batches; each batch
runs ONE shared eval-mode forward pass with per-sample BN statistics
(:func:`~repro.serve.streams.per_stream_inference`), then every frame is
decoded and — on its stream's adaptation cadence — fed to that stream's
adapter with the stream's BN state swapped onto the model.

Latency accounting mirrors :class:`repro.pipeline.RealTimePipeline`:

* ``latency_model="orin"`` — a discrete-event simulation of the paper's
  Jetson Orin: arrivals advance with the camera period, service times
  come from the roofline model, and a frame's recorded latency is
  completion minus arrival (so queueing delay from sharing one device
  across the fleet is visible, and the deadline-miss-rate-vs-fleet-size
  curve means something);
* ``latency_model="wallclock"`` — measured host time of the numpy
  implementation itself (a frame is charged its share of the batched
  forward plus its own adaptation step), used by the throughput
  benchmark to show batched serving beating N serial pipelines.

The shared forward runs through the compiled engine (:mod:`repro.engine`)
by default: one traced plan per batch size, with each stream's folded BN
``(scale, shift)`` entering the plan as a per-sample input, so
differently-adapted streams share one batched replay bit-exactly.
``repro.nn.inference_mode(False)`` forces the eager forward.

Adaptation amortizes the same way: streams whose adaptation steps land
on the same tick (same phase) are fused into ONE grouped replay of the
compiled adaptation plan (:mod:`repro.serve.adapt_batch`) with per-group
batch statistics and per-stream gamma/beta/optimizer slots — no BN state
swap-in/swap-out at all — while ineligible streams (non-SGD adapters,
frames that only buffer, unsupported graphs) keep the serial step.
``FleetConfig(batch_adaptation=False)`` or
``repro.nn.adaptation_mode(False)`` force every step serial/eager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from .. import nn
from ..adapt.base import Adapter
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..data.dataset import LaneSample
from ..engine import compile_model
from ..hw.deadline import DEADLINE_30FPS_MS
from ..hw.device import DeviceProfile
from ..hw.roofline import batched_inference_latency_ms, ld_bn_adapt_latency
from ..metrics.lane_accuracy import TUSIMPLE_THRESHOLD_CELLS, point_accuracy
from ..models.spec import ModelSpec
from ..models.ufld import decode_predictions
from ..utils.profiling import Timer
from .adapt_batch import FleetAdaptationBatcher
from .report import FleetReport
from .scheduler import (
    BatchPlan,
    DeadlineAwareScheduler,
    FrameRequest,
    plan_adaptation_groups,
)
from .streams import StreamRegistry, StreamSession, per_stream_inference


@dataclass(frozen=True)
class FleetConfig:
    """Fleet serving loop configuration."""

    deadline_ms: float = DEADLINE_30FPS_MS
    frame_period_ms: Optional[float] = None  # None → deadline_ms (30 FPS)
    latency_model: str = "orin"  # "orin" | "wallclock"
    decode_method: str = "expectation"
    accuracy_threshold_cells: float = TUSIMPLE_THRESHOLD_CELLS
    rolling_window: int = 30
    max_batch_size: int = 8
    aging_rate: float = 0.1
    adapt_stride: int = 1  # each stream adapts on every k-th of its frames
    batch_adaptation: bool = True  # fuse same-phase streams' entropy steps

    def __post_init__(self):
        if self.latency_model not in ("orin", "wallclock"):
            raise ValueError(f"unknown latency model {self.latency_model!r}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.frame_period_ms is not None and self.frame_period_ms <= 0:
            raise ValueError(
                f"frame_period_ms must be positive, got {self.frame_period_ms}"
            )
        if self.decode_method not in ("argmax", "expectation"):
            raise ValueError(f"unknown decode method {self.decode_method!r}")
        if self.rolling_window < 1:
            raise ValueError(f"rolling_window must be >= 1, got {self.rolling_window}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.adapt_stride < 1:
            raise ValueError(f"adapt_stride must be >= 1, got {self.adapt_stride}")

    @property
    def period_ms(self) -> float:
        return self.frame_period_ms if self.frame_period_ms is not None else self.deadline_ms


class StagedGroup:
    """Execution state of one fused adaptation step within a served batch.

    Created at staging time (before the timed region); the first member
    encountered in the record loop launches :meth:`FleetServer._run_group`,
    which fills in the results and completion bookkeeping every other
    member then reads.
    """

    __slots__ = ("staged", "results", "per_stream_ms", "done_clock_ms")

    def __init__(self, staged):
        self.staged = staged
        self.results = None
        self.per_stream_ms = 0.0
        self.done_clock_ms = 0.0


class FleetServer:
    """Serves N adapting camera streams through one shared model."""

    def __init__(
        self,
        model,
        config: Optional[FleetConfig] = None,
        device: Optional[DeviceProfile] = None,
        spec: Optional[ModelSpec] = None,
    ):
        self.model = model
        self.config = config if config is not None else FleetConfig()
        self.device = device
        self.spec = spec
        if self.config.latency_model == "orin":
            if device is None or spec is None:
                raise ValueError(
                    "latency_model='orin' requires a DeviceProfile and a "
                    "paper-size ModelSpec (the platform under study)"
                )
            latency_fn = lambda b: batched_inference_latency_ms(spec, device, b)  # noqa: E731
        else:
            # wallclock mode measures instead of planning; batch greedily
            latency_fn = None
        self.registry = StreamRegistry(model)
        self.scheduler = DeadlineAwareScheduler(
            latency_fn=latency_fn,
            max_batch_size=self.config.max_batch_size,
            aging_rate=self.config.aging_rate,
        )
        self.timer = Timer()
        self._batch_sizes = []
        self._compiled = None  # built lazily; plans cached per batch size
        self._adapt_batcher = FleetAdaptationBatcher(model)
        self._adapt_batch_sizes = []  # streams fused per grouped step

    # ------------------------------------------------------------------
    def add_stream(
        self,
        stream_id: str,
        stream: Iterator[LaneSample],
        adapter: Optional[Adapter] = None,
        adapter_config: Optional[LDBNAdaptConfig] = None,
    ) -> StreamSession:
        """Register one camera stream.

        The session snapshots the model's *current* BN state, so register
        streams while the model holds the pristine source-trained weights
        each vehicle should start from.  Without an explicit ``adapter``
        a per-stream :class:`LDBNAdapt` is created (optionally from
        ``adapter_config``); every session owns its adapter and therefore
        its optimizer momentum.

        When ``adapt_stride > 1`` each stream's adaptation phase is
        auto-staggered by registration order, spreading the fleet's
        adaptation load across camera periods instead of spiking every
        stream's step onto the same tick.
        """
        if adapter is not None and adapter_config is not None:
            raise ValueError("pass either adapter or adapter_config, not both")
        if adapter is None:
            adapter = LDBNAdapt(
                self.model,
                adapter_config if adapter_config is not None else LDBNAdaptConfig(),
            )
        adapt_ms = 0.0
        if self.config.latency_model == "orin":
            batch = getattr(getattr(adapter, "config", None), "batch_size", 1)
            adapt_ms = ld_bn_adapt_latency(self.spec, self.device, batch).adaptation_ms
        return self.registry.register(
            stream_id,
            stream,
            adapter,
            deadline_ms=self.config.deadline_ms,
            rolling_window=self.config.rolling_window,
            adapt_stride=self.config.adapt_stride,
            adapt_phase=len(self.registry) % self.config.adapt_stride,
            adapt_latency_ms=adapt_ms,
        )

    # ------------------------------------------------------------------
    def run(self, num_ticks: int) -> FleetReport:
        """Serve ``num_ticks`` camera periods; returns the fleet report.

        Each tick ingests one frame per live stream and drains the queue.
        Streams that end early are marked truncated and simply stop
        contributing (the fleet keeps serving the others).
        """
        if len(self.registry) == 0:
            raise ValueError("no streams registered")
        period = self.config.period_ms
        device_free_ms = 0.0
        for tick in range(num_ticks):
            if self.registry.all_exhausted:
                break
            arrival_ms = tick * period
            for session in self.registry:
                frame = session.next_frame()
                if frame is None:
                    continue
                self.scheduler.submit(
                    FrameRequest(
                        stream_id=session.stream_id,
                        frame_index=session.frames_ingested - 1,
                        arrival_ms=arrival_ms,
                        deadline_ms=arrival_ms + self.config.deadline_ms,
                        payload=(session, frame),
                    )
                )
            while self.scheduler.pending_count:
                start_ms = max(device_free_ms, arrival_ms)
                plan = self.scheduler.next_batch(start_ms)
                if plan is None:  # pragma: no cover - pending implies a plan
                    break
                device_free_ms = self._serve_batch(plan, start_ms)
        return self._build_report(device_free_ms)

    # ------------------------------------------------------------------
    def _serve_batch(self, plan: BatchPlan, start_ms: float) -> float:
        """Run one shared forward + per-stream postprocessing.

        Returns the fleet-clock time at which the device is free again.
        """
        config = self.config
        sessions = [req.payload[0] for req in plan.requests]
        frames = [req.payload[1] for req in plan.requests]
        self._batch_sizes.append(plan.batch_size)

        images = np.stack([f.image for f in frames]).astype(np.float32)
        self.model.eval()
        if nn.compiled_inference_enabled():
            if self._compiled is None:
                self._compiled = compile_model(self.model)
            # one-time trace per batch size, outside the timed region
            self._compiled.warm(images)
        with self.timer.measure("inference"):
            with per_stream_inference(sessions):
                if nn.compiled_inference_enabled():
                    if self._compiled is None:
                        self._compiled = compile_model(self.model)
                    logits = self._compiled(images)
                else:
                    with nn.no_grad():
                        logits = self.model(nn.Tensor(images, _copy=False))
            # decode is part of serving a frame, so wallclock inference cost
            # includes it — same accounting as RealTimePipeline._predict
            preds = decode_predictions(
                logits.numpy(), self.model.config, method=config.decode_method
            )

        if config.latency_model == "orin":
            infer_ms = plan.planned_latency_ms
        else:
            infer_ms = 1e3 * self.timer.records["inference"][-1]

        # inference completes for the whole batch at once; same-phase
        # adaptation steps are then fused into grouped compiled replays
        # (per-stream state slots, no model swap), with remaining steps
        # running serially on the shared device in batch order
        clock_ms = start_ms + infer_ms
        group_of: Dict[int, StagedGroup] = self._plan_adaptation(
            plan.requests, sessions, frames
        )
        for req, session, frame, pred in zip(plan.requests, sessions, frames, preds):
            metrics = point_accuracy(
                pred[None], frame.gt_cells[None], config.accuracy_threshold_cells
            )
            result = None
            adapt_step_ms = 0.0
            completion_ms = clock_ms
            if session.due_for_adaptation():
                group = group_of.get(id(session))
                if group is not None:
                    if group.results is None:  # first member launches it
                        clock_ms = self._run_group(group, clock_ms)
                    result = group.results[id(session)]
                    adapt_step_ms = group.per_stream_ms
                    completion_ms = group.done_clock_ms
                else:
                    session.swap_in()
                    with self.timer.measure("adaptation"):
                        result = session.adapter.observe_frame(
                            frame.image
                        ) if hasattr(
                            session.adapter, "observe_frame"
                        ) else session.adapter.adapt(frame.image[None])
                    session.swap_out()
                    wall_ms = 1e3 * self.timer.records["adaptation"][-1]
                    if result is not None:
                        adapt_step_ms = (
                            session.adapt_latency_ms
                            if config.latency_model == "orin"
                            else wall_ms
                        )
                        clock_ms += adapt_step_ms
                    completion_ms = clock_ms
            if config.latency_model == "orin":
                latency_ms = completion_ms - req.arrival_ms
            else:
                # processing cost only (no simulated queueing): this frame's
                # share of the batched forward plus its adaptation share
                latency_ms = infer_ms / plan.batch_size + adapt_step_ms
            session.record(
                frame, latency_ms, metrics.accuracy, result,
                adapt_ms=adapt_step_ms if result is not None else None,
            )
        return clock_ms

    # ------------------------------------------------------------------
    def _plan_adaptation(self, requests, sessions, frames):
        """Stage fused same-phase adaptation steps for this served batch.

        Returns ``{id(session): StagedGroup}`` for every session joining
        a fused step; everything else keeps the serial path.  Staging
        (batch assembly + one-time trace/compile) happens here, outside
        the timed region, mirroring the inference engine's ``warm``.
        """
        group_of: Dict[int, "StagedGroup"] = {}
        if not self.config.batch_adaptation:
            return group_of
        due = [
            (session, frame)
            for session, frame in zip(sessions, frames)
            if session.due_for_adaptation()
        ]
        candidates = [
            (self._adapt_batcher.group_key(session), (session, frame))
            for session, frame in due
        ]
        groups, _ = plan_adaptation_groups(candidates)
        for members in groups:
            staged = self._adapt_batcher.stage(
                [session for session, _ in members],
                [frame.image for _, frame in members],
            )
            if staged is None:  # graph not lowerable: serial fallback
                continue
            group = StagedGroup(staged)
            for session, _ in members:
                group_of[id(session)] = group
        # serial steppers warm their compiled plan outside the timed region
        for session, frame in due:
            if id(session) not in group_of and hasattr(session.adapter, "warm"):
                session.adapter.warm(frame.image)
        return group_of

    def _run_group(self, group: "StagedGroup", clock_ms: float) -> float:
        """Execute one fused adaptation step; returns the advanced clock."""
        staged = group.staged
        with self.timer.measure("adaptation"):
            group.results = staged.execute()
        wall_ms = 1e3 * self.timer.records["adaptation"][-1]
        if self.config.latency_model == "orin":
            fused_ms = ld_bn_adapt_latency(
                self.spec, self.device,
                staged.num_streams * staged.group_size,
            ).adaptation_ms
        else:
            fused_ms = wall_ms
        self._adapt_batch_sizes.append(staged.num_streams)
        group.per_stream_ms = fused_ms / staged.num_streams
        group.done_clock_ms = clock_ms + fused_ms
        return group.done_clock_ms

    # ------------------------------------------------------------------
    def _build_report(self, elapsed_ms: float) -> FleetReport:
        report = FleetReport(
            deadline_ms=self.config.deadline_ms,
            latency_model=self.config.latency_model,
            elapsed_ms=elapsed_ms
            if self.config.latency_model == "orin"
            else 1e3 * (self.timer.total("inference") + self.timer.total("adaptation")),
            batch_sizes=list(self._batch_sizes),
            adapt_batch_sizes=list(self._adapt_batch_sizes),
        )
        for session in self.registry:
            report.stream_reports[session.stream_id] = session.report
        return report
