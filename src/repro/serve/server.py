"""The fleet serving loop: event-driven ingest → batch → shared forward →
per-stream decode + admission-controlled adaptation.

Frames no longer arrive as one synchronous cohort per camera period.
Each registered stream owns an :class:`~repro.serve.streams.ArrivalProcess`
(per-stream phase offset plus a seeded jitter/drop model), and the serving
loop is a discrete-event simulation over those arrivals: frames carry
their actual arrival timestamps, and the
:class:`~repro.serve.scheduler.DeadlineAwareScheduler` launches a
deadline-feasible batch the moment the device frees up — *between* camera
ticks, from whatever has genuinely arrived — instead of draining an
assumed full cohort.  ``FleetConfig(ingest="sync")`` keeps the legacy
tick-synchronous loop as the parity oracle (it requires a zero-jitter,
zero-drop arrival model, and the async loop reproduces it exactly there).

Latency accounting mirrors :class:`repro.pipeline.RealTimePipeline`:

* ``latency_model="orin"`` — a discrete-event simulation of the paper's
  Jetson Orin: arrivals follow each stream's (jittered) arrival process,
  service times come from the roofline model, and a frame's recorded
  latency is completion minus arrival — so queueing delay under load and
  jitter, the regime deadline-aware scheduling exists for, is visible;
* ``latency_model="wallclock"`` — measured host time of the numpy
  implementation itself (a frame is charged its share of the batched
  forward plus its own adaptation step), used by the throughput
  benchmark.  Wallclock serving has no modeled service time, so batches
  group frames by arrival timestamp (jittered arrivals serve solo; the
  jitter regime is an ``"orin"``-mode study).

The shared forward runs through the compiled engine (:mod:`repro.engine`)
by default: one traced plan per batch size, with each stream's folded BN
``(scale, shift)`` entering the plan as a per-sample input, so
differently-adapted streams share one batched replay bit-exactly.
``repro.nn.inference_mode(False)`` forces the eager forward.

Adaptation is *admitted*, not scheduled statically.  With
``FleetConfig(admission=AdmissionConfig(...))`` the
:class:`~repro.serve.admission.SlackAdmission` controller grants each
frame's adaptation work from observed deadline slack: steps shed when the
queue runs hot, catch up when it clears, are never granted when the
roofline model says they would push the batch past its earliest deadline,
and solo steps are deferred briefly to share a fused replay with a
same-key partner (phase packing).  Without an admission config the legacy
static ``adapt_stride`` stagger applies.  Granted same-batch steps fuse
into ONE grouped replay of the compiled adaptation plan
(:mod:`repro.serve.adapt_batch`) with per-group batch statistics and
per-stream gamma/beta/optimizer slots; ``FleetConfig(
batch_adaptation=False)`` or ``repro.nn.adaptation_mode(False)`` force
every step serial/eager.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .. import nn
from ..adapt.base import Adapter
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..data.dataset import LaneSample
from ..engine import compile_model
from ..hw.deadline import (
    DEADLINE_30FPS_MS,
    adaptation_budget_ms,
    deadline_slack_ms,
)
from ..hw.device import DeviceProfile
from ..hw.roofline import batched_inference_latency_ms, ld_bn_adapt_latency
from ..metrics.lane_accuracy import TUSIMPLE_THRESHOLD_CELLS, point_accuracy
from ..models.spec import ModelSpec
from ..models.ufld import decode_predictions
from ..utils.profiling import Timer
from ..utils.rng import child_seed
from .adapt_batch import FleetAdaptationBatcher, static_fuse_key
from .admission import AdmissionConfig, SlackAdmission, StepCandidate
from .report import FleetReport
from .scheduler import (
    BatchPlan,
    DeadlineAwareScheduler,
    FrameRequest,
    plan_adaptation_groups,
)
from .streams import (
    ArrivalModel,
    ArrivalProcess,
    StreamRegistry,
    StreamSession,
    per_stream_inference,
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet serving loop configuration."""

    deadline_ms: float = DEADLINE_30FPS_MS
    frame_period_ms: Optional[float] = None  # None → deadline_ms (30 FPS)
    latency_model: str = "orin"  # "orin" | "wallclock"
    decode_method: str = "expectation"
    accuracy_threshold_cells: float = TUSIMPLE_THRESHOLD_CELLS
    rolling_window: int = 30
    max_batch_size: int = 8
    aging_rate: float = 0.1
    adapt_stride: int = 1  # static fallback policy: every k-th frame adapts
    batch_adaptation: bool = True  # fuse same-batch streams' entropy steps
    ingest: str = "async"  # "async" (event-driven) | "sync" (legacy oracle)
    jitter_ms: float = 0.0  # per-frame arrival delay, uniform in [0, jitter]
    drop_rate: float = 0.0  # probability a frame is lost before the server
    phase_spread_ms: float = 0.0  # stream i's arrival phase = i * spread
    arrival_seed: int = 0  # root seed of the per-stream arrival processes
    admission: Optional[AdmissionConfig] = None  # None → static stride

    def __post_init__(self):
        if self.latency_model not in ("orin", "wallclock"):
            raise ValueError(f"unknown latency model {self.latency_model!r}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.frame_period_ms is not None and self.frame_period_ms <= 0:
            raise ValueError(
                f"frame_period_ms must be positive, got {self.frame_period_ms}"
            )
        if self.decode_method not in ("argmax", "expectation"):
            raise ValueError(f"unknown decode method {self.decode_method!r}")
        if self.rolling_window < 1:
            raise ValueError(f"rolling_window must be >= 1, got {self.rolling_window}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.adapt_stride < 1:
            raise ValueError(f"adapt_stride must be >= 1, got {self.adapt_stride}")
        if self.ingest not in ("async", "sync"):
            raise ValueError(f"unknown ingest mode {self.ingest!r}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.phase_spread_ms < 0:
            raise ValueError(
                f"phase_spread_ms must be >= 0, got {self.phase_spread_ms}"
            )
        if self.ingest == "sync" and (
            self.jitter_ms > 0 or self.drop_rate > 0 or self.phase_spread_ms > 0
        ):
            raise ValueError(
                "ingest='sync' is the tick-synchronous parity oracle and "
                "requires jitter_ms == drop_rate == phase_spread_ms == 0"
            )

    @property
    def period_ms(self) -> float:
        return self.frame_period_ms if self.frame_period_ms is not None else self.deadline_ms


class StagedGroup:
    """Execution state of one fused adaptation step within a served batch.

    Created at staging time (before the timed region); the first member
    encountered in the record loop launches :meth:`FleetServer._run_group`,
    which fills in the results and completion bookkeeping every other
    member then reads.
    """

    __slots__ = ("staged", "results", "per_stream_ms", "done_clock_ms")

    def __init__(self, staged):
        self.staged = staged
        self.results = None
        self.per_stream_ms = 0.0
        self.done_clock_ms = 0.0


class _Decision:
    """One frame's admission outcome: feed the adapter or withhold it.

    ``planned_step`` records whether the admission controller budgeted an
    actual optimization step for this feed (as opposed to a free
    buffering frame); :meth:`FleetServer._reconcile_buffer_drift` refuses
    any feed whose real buffer state would turn a free plan into an
    unbudgeted step.
    """

    __slots__ = ("feed", "planned_step")

    def __init__(self, feed: bool, planned_step: bool):
        self.feed = feed
        self.planned_step = planned_step


class FleetServer:
    """Serves N adapting camera streams through one shared model."""

    def __init__(
        self,
        model,
        config: Optional[FleetConfig] = None,
        device: Optional[DeviceProfile] = None,
        spec: Optional[ModelSpec] = None,
    ):
        self.model = model
        self.config = config if config is not None else FleetConfig()
        self.device = device
        self.spec = spec
        if self.config.latency_model == "orin":
            if device is None or spec is None:
                raise ValueError(
                    "latency_model='orin' requires a DeviceProfile and a "
                    "paper-size ModelSpec (the platform under study)"
                )
            latency_fn = lambda b: batched_inference_latency_ms(spec, device, b)  # noqa: E731
            adapt_cost_fn = lambda n: ld_bn_adapt_latency(  # noqa: E731
                spec, device, n
            ).adaptation_ms
        else:
            # wallclock mode measures instead of planning; batch greedily
            latency_fn = None
            adapt_cost_fn = None
        self.registry = StreamRegistry(model)
        self.scheduler = DeadlineAwareScheduler(
            latency_fn=latency_fn,
            max_batch_size=self.config.max_batch_size,
            aging_rate=self.config.aging_rate,
        )
        self.admission: Optional[SlackAdmission] = (
            SlackAdmission(self.config.admission, adapt_cost_fn)
            if self.config.admission is not None
            else None
        )
        self.timer = Timer()
        self._batch_sizes = []
        self._queue_depths = []  # pending frames at each batch launch
        self._compiled = None  # built lazily; plans cached per batch size
        self._adapt_batcher = FleetAdaptationBatcher(model)
        self._adapt_batch_sizes = []  # streams fused per grouped step
        self._event_seq = 0  # ties arrival events deterministically

    # ------------------------------------------------------------------
    def add_stream(
        self,
        stream_id: str,
        stream: Iterator[LaneSample],
        adapter: Optional[Adapter] = None,
        adapter_config: Optional[LDBNAdaptConfig] = None,
        arrival: Optional[ArrivalModel] = None,
    ) -> StreamSession:
        """Register one camera stream.

        The session snapshots the model's *current* BN state, so register
        streams while the model holds the pristine source-trained weights
        each vehicle should start from.  Without an explicit ``adapter``
        a per-stream :class:`LDBNAdapt` is created (optionally from
        ``adapter_config``); every session owns its adapter and therefore
        its optimizer momentum.

        Without an explicit ``arrival`` model the stream gets the fleet
        default: phase offset ``i * phase_spread_ms`` for the *i*-th
        registered stream, the configured jitter/drop statistics, and a
        per-stream child seed of ``arrival_seed`` — fully deterministic
        per registration order.

        When ``adapt_stride > 1`` (static admission) each stream's
        adaptation phase is auto-staggered by registration order,
        spreading the fleet's adaptation load across camera periods.
        """
        if adapter is not None and adapter_config is not None:
            raise ValueError("pass either adapter or adapter_config, not both")
        if adapter is None:
            adapter = LDBNAdapt(
                self.model,
                adapter_config if adapter_config is not None else LDBNAdaptConfig(),
            )
        adapt_ms = 0.0
        if self.config.latency_model == "orin":
            batch = getattr(getattr(adapter, "config", None), "batch_size", 1)
            adapt_ms = ld_bn_adapt_latency(self.spec, self.device, batch).adaptation_ms
        index = len(self.registry)
        if arrival is None:
            arrival = ArrivalModel(
                period_ms=self.config.period_ms,
                phase_ms=index * self.config.phase_spread_ms,
                jitter_ms=self.config.jitter_ms,
                drop_rate=self.config.drop_rate,
                seed=child_seed(self.config.arrival_seed, index),
            )
        elif self.config.ingest == "sync" and (
            arrival.jitter_ms > 0 or arrival.drop_rate > 0 or arrival.phase_ms > 0
        ):
            raise ValueError(
                "ingest='sync' ignores arrival processes; an explicit "
                "jittered/dropping/phase-shifted ArrivalModel would be "
                "silently discarded — use the async ingest"
            )
        if self.admission is not None:
            self.admission.register_stream(stream_id, static_fuse_key(adapter))
        return self.registry.register(
            stream_id,
            stream,
            adapter,
            deadline_ms=self.config.deadline_ms,
            rolling_window=self.config.rolling_window,
            adapt_stride=self.config.adapt_stride,
            adapt_phase=index % self.config.adapt_stride,
            adapt_latency_ms=adapt_ms,
            arrivals=ArrivalProcess(arrival),
        )

    # ------------------------------------------------------------------
    def run(self, num_ticks: int) -> FleetReport:
        """Serve ``num_ticks`` camera periods' worth of frames per stream.

        Each stream contributes up to ``num_ticks`` frames on its own
        arrival process (fewer when frames drop or the source ends early;
        truncated streams simply stop contributing while the fleet keeps
        serving the others).
        """
        if len(self.registry) == 0:
            raise ValueError("no streams registered")
        if self.config.ingest == "sync":
            return self._run_sync(num_ticks)
        return self._run_async(num_ticks)

    def _run_sync(self, num_ticks: int) -> FleetReport:
        """Legacy tick-synchronous loop: one cohort per period, drained.

        The parity oracle for the event-driven loop — with zero jitter,
        drops and phase spread both loops see identical arrivals, and
        whenever the device keeps up within each camera period they form
        identical batches.
        """
        period = self.config.period_ms
        device_free_ms = 0.0
        for tick in range(num_ticks):
            if self.registry.all_exhausted:
                break
            arrival_ms = tick * period
            for session in self.registry:
                frame = session.next_frame()
                if frame is None:
                    continue
                self.scheduler.submit(
                    FrameRequest(
                        stream_id=session.stream_id,
                        frame_index=session.frames_ingested - 1,
                        arrival_ms=arrival_ms,
                        deadline_ms=arrival_ms + self.config.deadline_ms,
                        payload=(session, frame),
                    )
                )
            while self.scheduler.pending_count:
                start_ms = max(device_free_ms, arrival_ms)
                self._queue_depths.append(self.scheduler.pending_count)
                plan = self.scheduler.next_batch(start_ms)
                if plan is None:  # pragma: no cover - pending implies a plan
                    break
                device_free_ms = self._serve_batch(
                    plan, start_ms, self.scheduler.pending_count
                )
        return self._build_report(device_free_ms)

    def _run_async(self, num_ticks: int) -> FleetReport:
        """Event-driven loop over each stream's jittered arrival process.

        A time-ordered event queue holds every stream's next arrival;
        the scheduler launches a batch whenever the device is free and
        frames are pending, at ``max(device_free, earliest pending
        arrival)`` — so batches form from what has actually arrived by
        launch time, and a backlogged device folds late arrivals into
        the draining batches instead of waiting out the tick grid.
        """
        wallclock = self.config.latency_model == "wallclock"
        heap: List[Tuple[float, int, bool, StreamSession]] = []
        for session in self.registry:
            self._push_arrival(heap, session, num_ticks)
        device_free_ms = 0.0
        while heap or self.scheduler.pending_count:
            if self.scheduler.pending_count:
                now_ms = max(
                    device_free_ms, self.scheduler.earliest_pending_arrival_ms
                )
            else:
                now_ms = max(device_free_ms, heap[0][0])
            while heap and heap[0][0] <= now_ms:
                arrival_ms, _, dropped, session = heapq.heappop(heap)
                if dropped:
                    session.drop_frame()
                else:
                    frame = session.next_frame()
                    if frame is not None:
                        self.scheduler.submit(
                            FrameRequest(
                                stream_id=session.stream_id,
                                frame_index=session.frames_ingested - 1,
                                arrival_ms=arrival_ms,
                                deadline_ms=arrival_ms + self.config.deadline_ms,
                                payload=(session, frame),
                            )
                        )
                self._push_arrival(heap, session, num_ticks)
            if not self.scheduler.pending_count:
                continue  # everything due was dropped or exhausted
            self._queue_depths.append(self.scheduler.pending_count)
            plan = self.scheduler.next_batch(now_ms)
            completion_ms = self._serve_batch(
                plan, now_ms, self.scheduler.pending_count
            )
            # wallclock serving has no modeled service time: sequencing
            # advances with arrivals only (timestamp-grouped batches)
            device_free_ms = now_ms if wallclock else completion_ms
        return self._build_report(device_free_ms)

    def _push_arrival(self, heap, session: StreamSession, num_ticks: int) -> None:
        """Queue the session's next arrival event, if any frames remain."""
        if session.exhausted:
            return
        if session.arrivals is None:
            session.arrivals = ArrivalProcess(
                ArrivalModel(period_ms=self.config.period_ms)
            )
        if session.arrivals.frames_emitted >= num_ticks:
            return
        _, arrival_ms, dropped = session.arrivals.next_event()
        heapq.heappush(heap, (arrival_ms, self._event_seq, dropped, session))
        self._event_seq += 1

    # ------------------------------------------------------------------
    def _serve_batch(
        self, plan: BatchPlan, start_ms: float, leftover_depth: int
    ) -> float:
        """Run one shared forward + per-stream postprocessing.

        ``leftover_depth`` is the pending count left behind at launch
        (the admission controller's queue-pressure signal).  Returns the
        fleet-clock time at which the device is free again.
        """
        config = self.config
        sessions = [req.payload[0] for req in plan.requests]
        frames = [req.payload[1] for req in plan.requests]
        self._batch_sizes.append(plan.batch_size)

        images = np.stack([f.image for f in frames]).astype(np.float32)
        self.model.eval()
        if nn.compiled_inference_enabled():
            if self._compiled is None:
                self._compiled = compile_model(self.model)
            # one-time trace per batch size, outside the timed region
            self._compiled.warm(images)
        with self.timer.measure("inference"):
            with per_stream_inference(sessions):
                if nn.compiled_inference_enabled():
                    if self._compiled is None:
                        self._compiled = compile_model(self.model)
                    logits = self._compiled(images)
                else:
                    with nn.no_grad():
                        logits = self.model(nn.Tensor(images, _copy=False))
            # decode is part of serving a frame, so wallclock inference cost
            # includes it — same accounting as RealTimePipeline._predict
            preds = decode_predictions(
                logits.numpy(), self.model.config, method=config.decode_method
            )

        if config.latency_model == "orin":
            infer_ms = plan.planned_latency_ms
        else:
            infer_ms = 1e3 * self.timer.records["inference"][-1]

        # inference completes for the whole batch at once; granted
        # same-batch adaptation steps are then fused into grouped
        # compiled replays (per-stream state slots, no model swap), with
        # remaining granted steps running serially in batch order
        clock_ms = start_ms + infer_ms
        decisions, group_of = self._plan_adaptation(
            plan, start_ms, infer_ms, leftover_depth
        )
        for req, session, frame, pred in zip(plan.requests, sessions, frames, preds):
            metrics = point_accuracy(
                pred[None], frame.gt_cells[None], config.accuracy_threshold_cells
            )
            result = None
            adapt_step_ms = 0.0
            completion_ms = clock_ms
            decision = decisions[id(req)]
            if decision.feed:
                session.adapt_grants += 1
                group = group_of.get(id(req))
                if group is not None:
                    if group.results is None:  # first member launches it
                        clock_ms = self._run_group(group, clock_ms)
                    result = group.results[id(session)]
                    adapt_step_ms = group.per_stream_ms
                    completion_ms = group.done_clock_ms
                else:
                    session.swap_in()
                    with self.timer.measure("adaptation"):
                        result = session.adapter.observe_frame(
                            frame.image
                        ) if hasattr(
                            session.adapter, "observe_frame"
                        ) else session.adapter.adapt(frame.image[None])
                    session.swap_out()
                    wall_ms = 1e3 * self.timer.records["adaptation"][-1]
                    if result is not None:
                        adapt_step_ms = (
                            session.adapt_latency_ms
                            if config.latency_model == "orin"
                            else wall_ms
                        )
                        clock_ms += adapt_step_ms
                    completion_ms = clock_ms
            else:
                session.adapt_skips += 1
            if config.latency_model == "orin":
                latency_ms = completion_ms - req.arrival_ms
            else:
                # processing cost only (no simulated queueing): this frame's
                # share of the batched forward plus its adaptation share
                latency_ms = infer_ms / plan.batch_size + adapt_step_ms
            if self.admission is not None and config.latency_model == "orin":
                self.admission.observe_slack(
                    deadline_slack_ms(latency_ms, config.deadline_ms)
                )
            session.record(
                frame, latency_ms, metrics.accuracy, result,
                adapt_ms=adapt_step_ms if result is not None else None,
            )
        return clock_ms

    # ------------------------------------------------------------------
    def _admission_decisions(
        self, plan: BatchPlan, start_ms: float, infer_ms: float, leftover_depth: int
    ) -> Dict[int, _Decision]:
        """Per-request adaptation grants for one served batch.

        Static policy (no admission controller): the stream's
        ``adapt_stride``/``adapt_phase`` schedule, offset-corrected when
        a backlogged batch carries several frames of one stream.  Slack
        policy: :meth:`SlackAdmission.admit` over the batch's step
        candidates, with the roofline feasibility budget measured from
        the batch's earliest deadline.
        """
        decisions: Dict[int, _Decision] = {}
        requests = plan.requests
        sessions = [req.payload[0] for req in requests]
        if self.admission is None:
            offsets: Dict[int, int] = {}
            for req, session in zip(requests, sessions):
                k = offsets.get(id(session), 0)
                offsets[id(session)] = k + 1
                decisions[id(req)] = _Decision(session.due_for_adaptation(k), True)
            return decisions

        candidates = []
        assumed_pending: Dict[int, int] = {}
        first_step: Dict[int, int] = {}
        for i, (req, session) in enumerate(zip(requests, sessions)):
            adapter = session.adapter
            batch_size = getattr(getattr(adapter, "config", None), "batch_size", 1)
            if id(session) not in assumed_pending:
                assumed_pending[id(session)] = getattr(
                    adapter, "pending_frames", batch_size - 1
                )
            pending = assumed_pending[id(session)]
            would_step = pending >= batch_size - 1
            assumed_pending[id(session)] = 0 if would_step else pending + 1
            fuse_key = None
            if would_step and id(session) not in first_step:
                first_step[id(session)] = i
                fuse_key = self._adapt_batcher.group_key(session)
            candidates.append(
                StepCandidate(
                    stream_id=session.stream_id,
                    would_step=would_step,
                    fuse_key=fuse_key,
                    frames_per_step=batch_size,
                    serial_cost_ms=session.adapt_latency_ms,
                )
            )
        if self.config.latency_model == "orin":
            batch_deadline_ms = min(r.deadline_ms for r in requests)
            budget_ms = adaptation_budget_ms(batch_deadline_ms, start_ms + infer_ms)
        else:
            budget_ms = float("inf")
        # fused (sublinear) billing only once grouped staging has proven
        # itself; before that — or if the graph is unlowerable — steps
        # are billed at the serial rate, an over-estimate that keeps the
        # feasibility guarantee hard even when stage() falls back
        allow_fused = (
            self.config.batch_adaptation and self._adapt_batcher.fuse_billable
        )
        grants = self.admission.admit(
            candidates, budget_ms, leftover_depth, allow_fused=allow_fused
        )
        for req, candidate, grant in zip(requests, candidates, grants):
            decisions[id(req)] = _Decision(grant, candidate.would_step)
        return decisions

    def _reconcile_buffer_drift(
        self, plan: BatchPlan, decisions: Dict[int, _Decision]
    ) -> None:
        """Refuse feeds the plan budgeted as free buffering but that the
        adapter's *actual* buffer state would turn into a step.

        Admission predicts buffer phases assuming its grants are taken;
        a denied step leaves the buffer full, so a later frame planned
        as "free buffering" would fire an unbudgeted step.  Decisions
        are reconciled here — before fused staging — so a refused frame
        can never ride along in a grouped replay either.
        """
        sim_pending: Dict[int, int] = {}
        for req in plan.requests:
            session, _ = req.payload
            decision = decisions[id(req)]
            adapter = session.adapter
            if not decision.feed or not hasattr(adapter, "pending_frames"):
                continue  # bufferless adapters step every granted frame
            batch_size = getattr(getattr(adapter, "config", None), "batch_size", 1)
            if id(session) not in sim_pending:
                sim_pending[id(session)] = adapter.pending_frames
            would_step = sim_pending[id(session)] >= batch_size - 1
            if would_step and not decision.planned_step:
                decisions[id(req)] = _Decision(False, False)
                continue  # refused: buffer state unchanged
            sim_pending[id(session)] = (
                0 if would_step else sim_pending[id(session)] + 1
            )

    def _plan_adaptation(
        self, plan: BatchPlan, start_ms: float, infer_ms: float, leftover_depth: int
    ):
        """Admission decisions + staged fused steps for this served batch.

        Returns ``(decisions, group_of)``: the per-request admission
        outcome and ``{id(request): StagedGroup}`` for every granted
        step joining a fused replay; everything else granted keeps the
        serial path.  Staging (batch assembly + one-time trace/compile)
        happens here, outside the timed region, mirroring the inference
        engine's ``warm``.
        """
        decisions = self._admission_decisions(plan, start_ms, infer_ms, leftover_depth)
        self._reconcile_buffer_drift(plan, decisions)
        group_of: Dict[int, StagedGroup] = {}
        due = []
        seen_sessions = set()
        for req in plan.requests:
            session, frame = req.payload
            if not decisions[id(req)].feed or id(session) in seen_sessions:
                continue
            seen_sessions.add(id(session))
            due.append((req, session, frame))
        if self.config.batch_adaptation:
            candidates = [
                (self._adapt_batcher.group_key(session), (req, session, frame))
                for req, session, frame in due
            ]
            groups, _ = plan_adaptation_groups(candidates)
            for members in groups:
                staged = self._adapt_batcher.stage(
                    [session for _, session, _ in members],
                    [frame.image for _, _, frame in members],
                )
                if staged is None:  # graph not lowerable: serial fallback
                    continue
                group = StagedGroup(staged)
                for req, _, _ in members:
                    group_of[id(req)] = group
        # serial steppers warm their compiled plan outside the timed region
        for req, session, frame in due:
            if id(req) not in group_of and hasattr(session.adapter, "warm"):
                session.adapter.warm(frame.image)
        return decisions, group_of

    def _run_group(self, group: "StagedGroup", clock_ms: float) -> float:
        """Execute one fused adaptation step; returns the advanced clock."""
        staged = group.staged
        with self.timer.measure("adaptation"):
            group.results = staged.execute()
        wall_ms = 1e3 * self.timer.records["adaptation"][-1]
        if self.config.latency_model == "orin":
            fused_ms = ld_bn_adapt_latency(
                self.spec, self.device,
                staged.num_streams * staged.group_size,
            ).adaptation_ms
        else:
            fused_ms = wall_ms
        self._adapt_batch_sizes.append(staged.num_streams)
        group.per_stream_ms = fused_ms / staged.num_streams
        group.done_clock_ms = clock_ms + fused_ms
        return group.done_clock_ms

    # ------------------------------------------------------------------
    def _build_report(self, elapsed_ms: float) -> FleetReport:
        report = FleetReport(
            deadline_ms=self.config.deadline_ms,
            latency_model=self.config.latency_model,
            elapsed_ms=elapsed_ms
            if self.config.latency_model == "orin"
            else 1e3 * (self.timer.total("inference") + self.timer.total("adaptation")),
            batch_sizes=list(self._batch_sizes),
            adapt_batch_sizes=list(self._adapt_batch_sizes),
            queue_depths=list(self._queue_depths),
        )
        for session in self.registry:
            report.stream_reports[session.stream_id] = session.report
            report.admission_grants[session.stream_id] = session.adapt_grants
            report.admission_skips[session.stream_id] = session.adapt_skips
            report.dropped_frames[session.stream_id] = session.frames_dropped
        return report
