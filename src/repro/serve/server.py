"""The fleet coordinator: place sessions on a device pool, drive the
event-driven ingest, and rebalance by migration.

One :class:`FleetServer` now fronts a *pool* of devices.  Each pool
member is a :class:`~repro.serve.pool.DeviceWorker` owning everything a
single device needs — its :class:`~repro.hw.device.DeviceProfile`, its
:class:`~repro.serve.scheduler.DeadlineAwareScheduler` and queue, its
:class:`~repro.serve.admission.SlackAdmission` budget and its compiled
plan caches — while the coordinator owns what spans devices:

* **placement** — at registration each stream is placed by
  ``FleetConfig(placement=...)``: ``"least_loaded"`` (argmin projected
  utilization from the roofline-estimated per-stream cost *on each
  device* — heterogeneous pools price the same stream differently per
  power mode), ``"round_robin"``, or ``"pinned"`` (explicit
  ``add_stream(..., device=k)``).
* **ingest** — a single fleet-wide time-ordered arrival heap.  Every
  stream owns a seeded :class:`~repro.serve.streams.ArrivalProcess`
  (per-stream phase offset, jitter, drops; seeds derived via
  ``utils.rng.child_seed(arrival_seed, stream_id)``, so a stream's
  arrival realization is invariant to device count and placement).
  Arrivals route to the session's *current* device; each worker
  launches a deadline-feasible batch the moment it is free and frames
  are pending, at ``max(device_free, earliest pending arrival)`` — the
  same event-driven discipline as before, generalized to many device
  clocks.  ``FleetConfig(ingest="sync")`` keeps the tick-synchronous
  loop as the parity oracle, drained per worker.
* **migration** — with ``FleetConfig(migration=MigrationConfig(...))``
  each worker's observed-slack EWMA feeds a
  :class:`~repro.serve.pool.MigrationPlanner`; when one device runs
  sustainedly hot while another is cooler by more than the configured
  gap, the hot device's heaviest movable session (no frames queued)
  migrates: the session object — `ParameterSnapshot`, BN buffers,
  optimizer slots, monitors — moves bitwise untouched, its admission
  debt transfers between controllers, and its modeled adaptation cost
  is re-priced on the target device.  A cooldown keeps sessions from
  thrashing.

A pool of one device (``FleetConfig(devices=1)``, the default)
reproduces the former single-device ``FleetServer`` outputs exactly —
the per-batch serving path moved verbatim into ``DeviceWorker`` and the
merged event loop degenerates to the old one — for both ingest modes;
the test suite and the throughput benchmark guard that parity.

Latency accounting is unchanged (see ``DeviceWorker.serve_batch``):
``latency_model="orin"`` is a discrete-event simulation over roofline
service times per device, ``"wallclock"`` measures the host numpy cost
of the shared implementation.  The shared forward runs through the
compiled engine by default; granted same-batch adaptation steps fuse
into grouped replays per device (:mod:`repro.serve.adapt_batch`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..adapt.base import Adapter
from ..adapt.bn_adapt import LDBNAdapt, LDBNAdaptConfig
from ..data.dataset import LaneSample
from ..engine.backends import available_backends
from ..hw.deadline import DEADLINE_30FPS_MS, stream_utilization
from ..hw.device import DeviceProfile
from ..metrics.lane_accuracy import TUSIMPLE_THRESHOLD_CELLS
from ..models.spec import ModelSpec
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import NULL_TRACER, SpanTracer
from ..utils.profiling import Timer
from ..utils.rng import child_seed
from .admission import AdmissionConfig
from .pool import (
    PLACEMENT_POLICIES,
    DeviceWorker,
    MigrationConfig,
    MigrationPlanner,
    place_stream,
)
from .report import FleetReport
from .scheduler import FrameRequest
from .streams import (
    ArrivalModel,
    ArrivalProcess,
    StreamRegistry,
    StreamSession,
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet serving loop configuration."""

    deadline_ms: float = DEADLINE_30FPS_MS
    frame_period_ms: Optional[float] = None  # None → deadline_ms (30 FPS)
    latency_model: str = "orin"  # "orin" | "wallclock"
    decode_method: str = "expectation"
    accuracy_threshold_cells: float = TUSIMPLE_THRESHOLD_CELLS
    rolling_window: int = 30
    max_batch_size: int = 8
    aging_rate: float = 0.1
    adapt_stride: int = 1  # static fallback policy: every k-th frame adapts
    batch_adaptation: bool = True  # fuse same-batch streams' entropy steps
    ingest: str = "async"  # "async" (event-driven) | "sync" (legacy oracle)
    jitter_ms: float = 0.0  # per-frame arrival delay, uniform in [0, jitter]
    drop_rate: float = 0.0  # probability a frame is lost before the server
    phase_spread_ms: float = 0.0  # stream i's arrival phase = i * spread
    arrival_seed: int = 0  # root seed of the per-stream arrival processes
    admission: Optional[AdmissionConfig] = None  # None → static stride
    devices: int = 1  # pool size (ignored when an explicit pool is passed)
    placement: str = "least_loaded"  # | "round_robin" | "pinned"
    migration: Optional[MigrationConfig] = None  # None → sessions never move
    backend: str = "numpy"  # plan backend for compiled serving/adaptation

    def __post_init__(self):
        if self.latency_model not in ("orin", "wallclock"):
            raise ValueError(f"unknown latency model {self.latency_model!r}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.frame_period_ms is not None and self.frame_period_ms <= 0:
            raise ValueError(
                f"frame_period_ms must be positive, got {self.frame_period_ms}"
            )
        if self.decode_method not in ("argmax", "expectation"):
            raise ValueError(f"unknown decode method {self.decode_method!r}")
        if self.rolling_window < 1:
            raise ValueError(f"rolling_window must be >= 1, got {self.rolling_window}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.adapt_stride < 1:
            raise ValueError(f"adapt_stride must be >= 1, got {self.adapt_stride}")
        if self.ingest not in ("async", "sync"):
            raise ValueError(f"unknown ingest mode {self.ingest!r}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.phase_spread_ms < 0:
            raise ValueError(
                f"phase_spread_ms must be >= 0, got {self.phase_spread_ms}"
            )
        if self.ingest == "sync" and (
            self.jitter_ms > 0 or self.drop_rate > 0 or self.phase_spread_ms > 0
        ):
            raise ValueError(
                "ingest='sync' is the tick-synchronous parity oracle and "
                "requires jitter_ms == drop_rate == phase_spread_ms == 0"
            )
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; expected one "
                f"of {PLACEMENT_POLICIES}"
            )
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown plan backend {self.backend!r}; expected one of "
                f"{available_backends()}"
            )
        if self.ingest == "sync" and self.migration is not None:
            raise ValueError(
                "ingest='sync' is the tick-synchronous parity oracle and "
                "cannot migrate: its per-tick drain has no global launch "
                "clock, so a backlogged device's sessions would stay "
                "pinned (busy_until on the device clock vs the tick "
                "clock) and migration would silently never fire — use "
                "the event-driven async ingest for device pools that "
                "rebalance"
            )
        if self.latency_model == "wallclock" and self.migration is not None:
            raise ValueError(
                "latency_model='wallclock' has no modeled deadline slack, "
                "so the migration planner's heat signal never exists and "
                "migration would silently never fire — rebalancing needs "
                "the simulated 'orin' clock"
            )

    @property
    def period_ms(self) -> float:
        return self.frame_period_ms if self.frame_period_ms is not None else self.deadline_ms


class FleetServer:
    """Serves N adapting camera streams across a pool of devices."""

    def __init__(
        self,
        model,
        config: Optional[FleetConfig] = None,
        device: Optional[DeviceProfile] = None,
        spec: Optional[ModelSpec] = None,
        device_pool: Optional[Sequence[DeviceProfile]] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.model = model
        self.config = config if config is not None else FleetConfig()
        self.spec = spec
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = MetricsRegistry()
        profiles: Optional[List[DeviceProfile]] = None
        if device_pool is not None:
            profiles = list(device_pool)
            if not profiles:
                raise ValueError("device_pool must not be empty")
            if self.config.devices not in (1, len(profiles)):
                raise ValueError(
                    f"FleetConfig(devices={self.config.devices}) "
                    f"contradicts an explicit pool of {len(profiles)} devices"
                )
        if self.config.latency_model == "orin":
            if profiles is not None:
                pool = profiles
            else:
                if device is None:
                    raise ValueError(
                        "latency_model='orin' requires a DeviceProfile (or an "
                        "explicit device_pool) and a paper-size ModelSpec "
                        "(the platform under study)"
                    )
                pool = [device] * self.config.devices
            if spec is None:
                raise ValueError(
                    "latency_model='orin' requires a DeviceProfile and a "
                    "paper-size ModelSpec (the platform under study)"
                )
        else:
            if profiles is not None:
                raise ValueError(
                    "latency_model='wallclock' serving is unpriced, so an "
                    "explicit device_pool's profiles would be silently "
                    "ignored — use FleetConfig(devices=N) to size an "
                    "unpriced pool"
                )
            pool = [None] * self.config.devices
        self.device = pool[0] if pool[0] is not None else device
        self.timer = Timer()
        slack_alpha = (
            self.config.migration.ewma_alpha
            if self.config.migration is not None
            else 0.25
        )
        self.workers: List[DeviceWorker] = [
            DeviceWorker(
                index,
                model,
                self.config,
                device=profile,
                spec=spec,
                timer=self.timer,
                slack_alpha=slack_alpha,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            for index, profile in enumerate(pool)
        ]
        self.registry = StreamRegistry(model)
        self._placements: Dict[str, int] = {}
        self._migration_planner: Optional[MigrationPlanner] = (
            MigrationPlanner(self.config.migration)
            if self.config.migration is not None and len(self.workers) > 1
            else None
        )
        self._migration_events: List[Dict[str, object]] = []
        self._event_seq = 0  # ties arrival events deterministically

    # -- single-device compatibility views -----------------------------
    @property
    def scheduler(self):
        """The pool's first scheduler (the only one at ``devices=1``)."""
        return self.workers[0].scheduler

    @property
    def admission(self):
        """The pool's first admission controller (the only one at 1)."""
        return self.workers[0].admission

    # ------------------------------------------------------------------
    def add_stream(
        self,
        stream_id: str,
        stream: Iterator[LaneSample],
        adapter: Optional[Adapter] = None,
        adapter_config: Optional[LDBNAdaptConfig] = None,
        arrival: Optional[ArrivalModel] = None,
        device: Optional[int] = None,
    ) -> StreamSession:
        """Register one camera stream and place it on a pool device.

        The session snapshots the model's *current* BN state, so register
        streams while the model holds the pristine source-trained weights
        each vehicle should start from.  Without an explicit ``adapter``
        a per-stream :class:`LDBNAdapt` is created (optionally from
        ``adapter_config``); every session owns its adapter and therefore
        its optimizer momentum.

        Without an explicit ``arrival`` model the stream gets the fleet
        default: phase offset ``i * phase_spread_ms`` for the *i*-th
        registered stream, the configured jitter/drop statistics, and a
        per-stream child seed of ``arrival_seed`` keyed by *stream id* —
        deterministic, and invariant to pool size and placement.

        ``device`` pins the session to a pool index; otherwise the
        configured placement policy picks one from the roofline-estimated
        per-device stream cost.  When ``adapt_stride > 1`` (static
        admission) each stream's adaptation phase is auto-staggered by
        registration order, spreading the fleet's adaptation load across
        camera periods.
        """
        if adapter is not None and adapter_config is not None:
            raise ValueError("pass either adapter or adapter_config, not both")
        if adapter is None:
            adapter = LDBNAdapt(
                self.model,
                adapter_config if adapter_config is not None else LDBNAdaptConfig(),
            )
        index = len(self.registry)
        if arrival is None:
            arrival = ArrivalModel(
                period_ms=self.config.period_ms,
                phase_ms=index * self.config.phase_spread_ms,
                jitter_ms=self.config.jitter_ms,
                drop_rate=self.config.drop_rate,
                seed=child_seed(self.config.arrival_seed, stream_id),
            )
        elif self.config.ingest == "sync" and (
            arrival.jitter_ms > 0 or arrival.drop_rate > 0 or arrival.phase_ms > 0
        ):
            raise ValueError(
                "ingest='sync' ignores arrival processes; an explicit "
                "jittered/dropping/phase-shifted ArrivalModel would be "
                "silently discarded — use the async ingest"
            )
        period = self.config.period_ms
        costs = [
            stream_utilization(worker.estimate_cost_ms(adapter), period)
            for worker in self.workers
        ]
        loads = [worker.load for worker in self.workers]
        target = place_stream(
            self.config.placement, index, costs, loads, pinned=device
        )
        session = self.registry.register(
            stream_id,
            stream,
            adapter,
            deadline_ms=self.config.deadline_ms,
            rolling_window=self.config.rolling_window,
            adapt_stride=self.config.adapt_stride,
            adapt_phase=index % self.config.adapt_stride,
            arrivals=ArrivalProcess(arrival),
        )
        self.workers[target].attach(session)
        self._placements[stream_id] = target
        return session

    def device_of(self, stream_id: str) -> int:
        """Pool index currently serving the stream."""
        return self._placements[stream_id]

    def _worker_of(self, session: StreamSession) -> DeviceWorker:
        return self.workers[self._placements[session.stream_id]]

    # ------------------------------------------------------------------
    def run(self, num_ticks: int) -> FleetReport:
        """Serve ``num_ticks`` camera periods' worth of frames per stream.

        Each stream contributes up to ``num_ticks`` frames on its own
        arrival process (fewer when frames drop or the source ends early;
        truncated streams simply stop contributing while the fleet keeps
        serving the others).
        """
        if len(self.registry) == 0:
            raise ValueError("no streams registered")
        if self.config.ingest == "sync":
            return self._run_sync(num_ticks)
        return self._run_async(num_ticks)

    def _run_sync(self, num_ticks: int) -> FleetReport:
        """Legacy tick-synchronous loop: one cohort per period, drained
        per device.

        The parity oracle for the event-driven loop — with zero jitter,
        drops and phase spread both loops see identical arrivals, and
        whenever each device keeps up within its camera period they form
        identical batches.
        """
        period = self.config.period_ms
        for tick in range(num_ticks):
            if self.registry.all_exhausted:
                break
            arrival_ms = tick * period
            for session in self.registry:
                frame = session.next_frame()
                if frame is None:
                    continue
                worker = self._worker_of(session)
                worker.scheduler.submit(
                    FrameRequest(
                        stream_id=session.stream_id,
                        frame_index=session.frames_ingested - 1,
                        arrival_ms=arrival_ms,
                        deadline_ms=arrival_ms + self.config.deadline_ms,
                        payload=(session, frame),
                    )
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "ingest",
                        arrival_ms,
                        pid=worker.name,
                        tid=session.stream_id,
                        cat="ingest",
                        frame=session.frames_ingested - 1,
                    )
            for worker in self.workers:
                while worker.scheduler.pending_count:
                    start_ms = max(worker.device_free_ms, arrival_ms)
                    worker.device_free_ms = worker.launch(start_ms)
        return self._build_report(
            max(worker.device_free_ms for worker in self.workers)
        )

    def _run_async(self, num_ticks: int) -> FleetReport:
        """Event-driven loop over each stream's jittered arrival process.

        One fleet-wide time-ordered event queue holds every stream's
        next arrival; arrivals route to the session's current device,
        and each worker launches a batch whenever it is free and frames
        are pending, at ``max(device_free, earliest pending arrival)`` —
        so batches form from what has actually arrived by launch time,
        and a backlogged device folds late arrivals into the draining
        batches instead of waiting out the tick grid.  Launches execute
        in global time order across workers (ties by pool index), which
        keeps the simulation deterministic and the fleet-wide metric
        streams time-ordered.
        """
        wallclock = self.config.latency_model == "wallclock"
        heap: List[Tuple[float, int, bool, StreamSession]] = []
        for session in self.registry:
            self._push_arrival(heap, session, num_ticks)
        while heap or any(w.scheduler.pending_count for w in self.workers):
            ready = [
                (
                    max(
                        worker.device_free_ms,
                        worker.scheduler.earliest_pending_arrival_ms,
                    ),
                    worker.index,
                )
                for worker in self.workers
                if worker.scheduler.pending_count
            ]
            launch_ms, launch_idx = min(ready) if ready else (None, None)
            if heap and (launch_ms is None or heap[0][0] <= launch_ms):
                arrival_ms, _, dropped, session = heapq.heappop(heap)
                if dropped:
                    session.drop_frame()
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "ingest_drop",
                            arrival_ms,
                            pid=self._worker_of(session).name,
                            tid=session.stream_id,
                            cat="ingest",
                        )
                else:
                    frame = session.next_frame()
                    if frame is not None:
                        worker = self._worker_of(session)
                        worker.scheduler.submit(
                            FrameRequest(
                                stream_id=session.stream_id,
                                frame_index=session.frames_ingested - 1,
                                arrival_ms=arrival_ms,
                                deadline_ms=arrival_ms + self.config.deadline_ms,
                                payload=(session, frame),
                            )
                        )
                        if self.tracer.enabled:
                            self.tracer.instant(
                                "ingest",
                                arrival_ms,
                                pid=worker.name,
                                tid=session.stream_id,
                                cat="ingest",
                                frame=session.frames_ingested - 1,
                            )
                self._push_arrival(heap, session, num_ticks)
                continue
            if launch_ms is None:
                break  # pragma: no cover - loop condition excludes this
            if self._migration_planner is not None:
                # a drained device's heat signal must cool on the launch
                # clock, or it never re-attracts sessions (idle-decay fix)
                for candidate in self.workers:
                    candidate.decay_idle_slack(launch_ms)
            # rebalance on the launch clock BEFORE the batch forms:
            # launch times are monotone across the pool (completions are
            # not), so a migration can never take effect "before"
            # another device's next batch — and at this instant the
            # previous batch's sessions are no longer in flight, so a
            # saturated device genuinely has movable sessions.  A move
            # re-homes queued frames, so the launch plan is re-derived.
            if self._maybe_migrate(launch_ms):
                continue
            worker = self.workers[launch_idx]
            completion_ms = worker.launch(launch_ms)
            # wallclock serving has no modeled service time: sequencing
            # advances with arrivals only (timestamp-grouped batches)
            worker.device_free_ms = launch_ms if wallclock else completion_ms
        return self._build_report(
            max(worker.device_free_ms for worker in self.workers)
        )

    def _push_arrival(self, heap, session: StreamSession, num_ticks: int) -> None:
        """Queue the session's next arrival event, if any frames remain."""
        if session.exhausted:
            return
        if session.arrivals is None:
            session.arrivals = ArrivalProcess(
                ArrivalModel(period_ms=self.config.period_ms)
            )
        if session.arrivals.frames_emitted >= num_ticks:
            return
        _, arrival_ms, dropped = session.arrivals.next_event()
        heapq.heappush(heap, (arrival_ms, self._event_seq, dropped, session))
        self._event_seq += 1

    # -- migration -----------------------------------------------------
    def _maybe_migrate(self, now_ms: float) -> bool:
        """Rebalance once: move a session off a sustained-hot device.

        Called at every async batch launch; returns True when a session
        moved (the caller re-derives its launch plan).  A no-op without
        a migration config — the sync/wallclock modes, where migration
        cannot work, are rejected at config time.
        """
        planner = self._migration_planner
        if planner is None:
            return False
        if planner.in_cooldown(now_ms):
            return False  # no decision possible: skip the movable scans
        if not planner.any_hot(
            [worker.slack_ewma_ms for worker in self.workers],
            [worker.frames_served for worker in self.workers],
        ):
            return False  # no sustained-hot source: skip the scans too
        movable = set()
        for worker in self.workers:
            pending = worker.scheduler.pending_stream_ids
            for sid, session in worker.sessions.items():
                # a session moves only when no batch containing it is
                # still completing — queued frames re-home WITH it, so a
                # saturated device can drain, but in-flight work pins it
                # (it is never served by two devices in overlapping
                # windows).  An exhausted session with an empty queue has
                # nothing left to move.
                if session.busy_until_ms > now_ms:
                    continue
                if session.exhausted and sid not in pending:
                    continue
                movable.add(sid)
        if not movable:
            return False
        period = self.config.period_ms
        costs = {
            sid: stream_utilization(cost, period)
            for worker in self.workers
            for sid, cost in worker.session_cost_ms.items()
        }
        decision = planner.plan(
            now_ms,
            [worker.slack_ewma_ms for worker in self.workers],
            [worker.frames_served for worker in self.workers],
            [list(worker.sessions) for worker in self.workers],
            movable,
            costs,
        )
        if decision is None:
            return False
        self._migrate(
            decision.stream_id, decision.source, decision.target, now_ms
        )
        planner.commit(decision, now_ms)
        self._migration_events.append(
            {
                "time_ms": now_ms,
                "stream": decision.stream_id,
                "source": decision.source,
                "target": decision.target,
            }
        )
        self.metrics.counter("fleet/migrations").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "migrate",
                now_ms,
                pid=self.workers[decision.source].name,
                tid=decision.stream_id,
                cat="migration",
                source=decision.source,
                target=decision.target,
            )
        return True

    def _migrate(
        self, stream_id: str, source: int, target: int, now_ms: float = 0.0
    ) -> None:
        """Move one session between workers, state and backlog intact.

        The session object carries its own BN snapshot, optimizer slots
        and monitors, so the move itself is bitwise lossless; what
        changes hands is the admission state (debt/deferrals/fuse key),
        the modeled adaptation price (re-quoted from the target's own
        profile), and the session's *queued frames* — re-submitted to
        the target's scheduler with arrivals and deadlines intact, so a
        saturated device can actually shed its backlog.  The target's
        clock is floored at the handoff instant: re-homed frames can
        never launch before ``now_ms``, which (with the ``busy_until``
        movability gate) keeps one session from being served by two
        devices in overlapping windows.
        """
        session = self.registry.get(stream_id)
        state = self.workers[source].detach(session)
        self.workers[target].attach(session, admission_state=state)
        for request in self.workers[source].scheduler.extract_stream(stream_id):
            self.workers[target].scheduler.submit(request)
        self.workers[target].device_free_ms = max(
            self.workers[target].device_free_ms, now_ms
        )
        self.workers[source].migrations_out += 1
        self.workers[target].migrations_in += 1
        session.migrations += 1
        self._placements[stream_id] = target

    # ------------------------------------------------------------------
    def _build_report(self, elapsed_ms: float) -> FleetReport:
        metrics = self.metrics
        report = FleetReport(
            deadline_ms=self.config.deadline_ms,
            latency_model=self.config.latency_model,
            elapsed_ms=elapsed_ms
            if self.config.latency_model == "orin"
            else 1e3 * (self.timer.total("inference") + self.timer.total("adaptation")),
            batch_sizes=metrics.histogram("fleet/batch_size"),
            adapt_batch_sizes=metrics.histogram("fleet/adapt_batch_size"),
            queue_depths=metrics.histogram("fleet/queue_depth"),
            latency_histogram=metrics.histogram("fleet/latency_ms"),
            slack_histogram=metrics.histogram("fleet/slack_ms"),
            adapt_histogram=metrics.histogram("fleet/adapt_ms"),
            accuracy_histogram=metrics.histogram("fleet/accuracy"),
            deadline_misses=metrics.counter("fleet/deadline_misses").value,
            migration_events=list(self._migration_events),
        )
        report.device_reports = [
            worker.report(report.elapsed_ms) for worker in self.workers
        ]
        for session in self.registry:
            report.stream_reports[session.stream_id] = session.report
            report.admission_grants[session.stream_id] = session.adapt_grants
            report.admission_skips[session.stream_id] = session.adapt_skips
            report.dropped_frames[session.stream_id] = session.frames_dropped
        return report
