"""``repro.serve`` — fleet serving: N adapting vehicles, one shared model.

The paper deploys one vehicle adapting online at 30 FPS
(:class:`repro.pipeline.RealTimePipeline`).  This package scales that
deployment story to a *fleet*: many concurrent camera streams, each with
its own domain-shift schedule, its own LD-BN-ADAPT state and its own
frame-arrival process, multiplexed through a single model on a single
device under the real-time deadline.

Architecture
------------
::

    cameras ──► ArrivalProcess ──► DeadlineAwareScheduler ──► FleetServer
                 (streams.py)          (scheduler.py)          (server.py)
                 per-stream phase/      time-ordered queue,     event loop:
                 jitter/drop model      deadline-aware           batched fwd +
                      │                 dynamic batching         per-stream
                StreamSession           w/ priority aging        decode/adapt
                 per-stream BN               │                       │
                 state + adapter       SlackAdmission           FleetReport
                                       (admission.py)           (report.py)

* **streams.py** — per-stream isolation *and arrival modelling*.
  Everything LD-BN-ADAPT touches (BN running statistics, gamma/beta,
  optimizer momentum) lives in a :class:`StreamSession`;
  ``ParameterSnapshot``-based ``swap_in``/``swap_out`` materializes a
  stream's state on the shared model around serial adaptation steps,
  while eval-mode BN folds to per-sample ``(scale, shift)`` vectors so
  :func:`per_stream_inference` serves many differently-adapted streams
  in ONE batched forward.  Each session also owns an
  :class:`ArrivalProcess` — a seeded realization of its
  :class:`ArrivalModel` (per-stream phase offset over the camera period,
  uniform transmission jitter, in-flight frame drops) — so the fleet
  loop sees frames when they *actually* arrive, not on an idealized
  tick grid.
* **scheduler.py** — deadline-aware dynamic batching over a time-ordered
  queue.  Batches amortize per-layer launch overhead but must finish
  inside the 33.3 ms camera deadline; the scheduler plans batch sizes
  with the :mod:`repro.hw.roofline` latency model, orders requests by
  aged urgency (EDF plus a queue-age credit so no stream starves), flips
  to max-throughput batching once a deadline is already unmeetable, and
  exposes the earliest pending arrival so the event loop can launch the
  instant the device frees up — between ticks.
  :func:`plan_adaptation_groups` partitions the steps granted in one
  served batch into same-key fused groups.
* **admission.py** — slack-driven adaptation admission control.  The
  adaptation step is the fleet's only optional work, so
  :class:`SlackAdmission` grants it per stream from observed deadline
  slack: steps shed when the queue runs hot, skipped streams catch up
  when it clears (bounded by a per-stream debt limit), a step is never
  granted when the roofline model says it would push the served batch
  past its earliest deadline, and solo steps are deferred briefly so
  they share a fused replay with a same-key partner (phase packing).
  The static ``adapt_stride`` stagger remains as the legacy policy when
  no :class:`AdmissionConfig` is given.
* **adapt_batch.py** — batched same-batch adaptation.  Granted steps
  that land in the same served batch fuse into ONE grouped replay of
  the compiled adaptation plan (:class:`repro.engine.CompiledAdaptStep`
  with ``groups=K``): per-group batch statistics, per-stream gamma/beta
  slots read straight from each stream's snapshot (no model swap), and
  per-stream fused SGD/statistics updates applied back to the snapshots
  — per-stream results match serial stepping to float precision.
  Batching contract: LD-BN-ADAPT + SGD adapters whose incoming frame
  completes their adaptation batch, equal batch sizes; learning rates,
  momenta and stats modes may differ freely.  Everything else steps
  serially; ``FleetConfig(batch_adaptation=False)`` disables fusing.
* **server.py** — the event-driven fleet loop: pop arrivals from the
  time-ordered event queue → launch a deadline-feasible batch at
  ``max(device_free, earliest pending arrival)`` → shared forward →
  per-frame decode, accuracy, admission decision and (fused-first)
  adaptation, with per-frame deadline accounting on either the
  simulated Jetson Orin clock or measured wallclock.
  ``FleetConfig(ingest="sync")`` keeps the legacy tick-synchronous loop
  as the parity oracle: with zero jitter/drops/phase-spread the async
  loop reproduces its per-stream outputs exactly.
* **report.py** — fleet dashboard: p50/p95/p99 latency, deadline-slack
  percentiles, queue depth at batch launch, per-stream accuracy,
  adaptation-step p50/p95, admission grants/skips, dropped frames,
  fused-step sizes and sustained frames/sec.

Entry points: ``python -m repro.experiments fleet`` (heterogeneous-domain
demo harness, ``--jitter``/``--drop``/``--admission`` flags),
``python -m repro.experiments bench-serve`` (jittered-arrival admission
study + regression gate), ``examples/fleet_serving.py``,
``benchmarks/bench_serve_throughput.py`` (batched vs. N serial pipelines
plus the jittered-admission scenario) and
``benchmarks/bench_adapt_step.py`` (eager vs. compiled vs. fused
adaptation steps).  ``tests/test_properties_serve.py`` is the
property-test harness for the scheduler/admission invariants.
"""

from .adapt_batch import FleetAdaptationBatcher, static_fuse_key
from .admission import AdmissionConfig, SlackAdmission, StepCandidate
from .report import FleetReport
from .scheduler import (
    BatchPlan,
    DeadlineAwareScheduler,
    FrameRequest,
    plan_adaptation_groups,
)
from .server import FleetConfig, FleetServer
from .streams import (
    ArrivalModel,
    ArrivalProcess,
    BNStateSnapshot,
    StreamRegistry,
    StreamSession,
    per_stream_inference,
)

__all__ = [
    "FleetServer",
    "FleetConfig",
    "FleetReport",
    "FleetAdaptationBatcher",
    "static_fuse_key",
    "AdmissionConfig",
    "SlackAdmission",
    "StepCandidate",
    "DeadlineAwareScheduler",
    "BatchPlan",
    "FrameRequest",
    "plan_adaptation_groups",
    "ArrivalModel",
    "ArrivalProcess",
    "StreamRegistry",
    "StreamSession",
    "BNStateSnapshot",
    "per_stream_inference",
]
