"""``repro.serve`` — fleet serving: N adapting vehicles, one shared model.

The paper deploys one vehicle adapting online at 30 FPS
(:class:`repro.pipeline.RealTimePipeline`).  This package scales that
deployment story to a *fleet*: many concurrent camera streams, each with
its own domain-shift schedule and its own LD-BN-ADAPT state, multiplexed
through a single model on a single device.

Architecture
------------
::

    cameras ──► StreamRegistry ──► DeadlineAwareScheduler ──► FleetServer
                (streams.py)          (scheduler.py)           (server.py)
                 per-stream           deadline-aware            batched fwd +
                 BN state +           dynamic batching          per-stream
                 adapter              w/ priority aging         decode/adapt
                                                                   │
                                                              FleetReport
                                                              (report.py)

* **streams.py** — per-stream isolation.  Everything LD-BN-ADAPT touches
  (BN running statistics, gamma/beta, optimizer momentum) lives in a
  :class:`StreamSession`; ``ParameterSnapshot``-based ``swap_in`` /
  ``swap_out`` materializes a stream's state on the shared model around
  its adaptation steps.  For inference no swapping is needed at all:
  eval-mode BN folds to a per-channel affine, so
  :func:`per_stream_inference` stacks each stream's folded
  ``(scale, shift)`` into per-sample arrays and ONE batched forward pass
  serves frames from many differently-adapted streams simultaneously.
* **scheduler.py** — deadline-aware dynamic batching.  Batches amortize
  per-layer launch overhead but must finish inside the 33.3 ms camera
  deadline; the scheduler plans batch sizes with the
  :mod:`repro.hw.roofline` latency model, orders requests by aged
  urgency (EDF plus a queue-age credit so no stream starves), and flips
  to max-throughput batching once a deadline is already unmeetable.
* **server.py** — the fleet loop: ingest one frame per stream per tick →
  batch → shared forward → per-stream decode, accuracy and adaptation,
  with per-frame deadline accounting on either the simulated Jetson Orin
  clock or measured wallclock.
* **report.py** — fleet dashboard: p50/p95/p99 latency, per-stream
  accuracy, deadline-miss rate and sustained frames/sec.

Entry points: ``python -m repro.experiments fleet`` (heterogeneous-domain
demo harness), ``examples/fleet_serving.py``, and
``benchmarks/bench_serve_throughput.py`` (batched vs. N serial pipelines).
"""

from .report import FleetReport
from .scheduler import BatchPlan, DeadlineAwareScheduler, FrameRequest
from .server import FleetConfig, FleetServer
from .streams import (
    BNStateSnapshot,
    StreamRegistry,
    StreamSession,
    per_stream_inference,
)

__all__ = [
    "FleetServer",
    "FleetConfig",
    "FleetReport",
    "DeadlineAwareScheduler",
    "BatchPlan",
    "FrameRequest",
    "StreamRegistry",
    "StreamSession",
    "BNStateSnapshot",
    "per_stream_inference",
]
