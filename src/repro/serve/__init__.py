"""``repro.serve`` — fleet serving: N adapting vehicles, a pool of devices.

The paper deploys one vehicle adapting online at 30 FPS
(:class:`repro.pipeline.RealTimePipeline`).  This package scales that
deployment story to a *fleet*: many concurrent camera streams, each with
its own domain-shift schedule, its own LD-BN-ADAPT state and its own
frame-arrival process, sharded across a **pool of devices** — one
simulated Orin saturates at ~2-3 paper-scale adapting streams, so the
serving layer places sessions on devices, serves each device with its
own deadline-aware scheduler, and migrates sessions off sustained-hot
devices.

Architecture
------------
::

    cameras ──► ArrivalProcess ──► FleetServer (coordinator) ── FleetReport
                 (streams.py)      │  placement · one arrival   (report.py)
                 per-stream phase/ │  heap · migration            per-stream +
                 jitter/drop model │  (server.py + pool.py)       per-device
                      │            ▼
                StreamSession   DeviceWorker ×D        (pool.py)
                 per-stream BN   │ DeviceProfile-priced costs
                 state + adapter │ DeadlineAwareScheduler  (scheduler.py)
                                 │ SlackAdmission budget   (admission.py)
                                 │ compiled plan caches
                                 └ batched fwd + fused adaptation
                                                           (adapt_batch.py)

* **streams.py** — per-stream isolation *and arrival modelling*.
  Everything LD-BN-ADAPT touches (BN running statistics, gamma/beta,
  optimizer momentum) lives in a :class:`StreamSession`;
  ``ParameterSnapshot``-based ``swap_in``/``swap_out`` materializes a
  stream's state on the shared model around serial adaptation steps,
  while eval-mode BN folds to per-sample ``(scale, shift)`` vectors so
  :func:`per_stream_inference` serves many differently-adapted streams
  in ONE batched forward.  Each session owns an :class:`ArrivalProcess`
  — a seeded realization of its :class:`ArrivalModel`, with the seed
  derived from ``child_seed(arrival_seed, stream_id)`` so a stream's
  arrival realization is invariant to pool size and placement.  The
  session is also the unit of migration: re-homing it moves all
  per-stream state bitwise.
* **pool.py** — the device layer.  A :class:`DeviceWorker` owns one
  device's :class:`~repro.hw.device.DeviceProfile` (heterogeneous pools
  price each stream per device), its scheduler + queue, its admission
  budget, its compiled inference/adaptation plan caches and its clock;
  the per-batch serving path (shared forward → decode → admission-gated
  fused/serial adaptation) lives here.  :func:`place_stream` is the
  pure placement policy ("least_loaded" over roofline-estimated stream
  cost, "round_robin", "pinned") and :class:`MigrationPlanner` the pure
  migration rule: when per-device slack EWMAs diverge past
  ``MigrationConfig.slack_gap_ms`` while a device sits below
  ``hot_slack_ms``, the hot device's heaviest movable session moves to
  the coolest device, rate-limited by a cooldown.  Queued frames
  re-home with the session (a saturated device can drain its backlog),
  but a session with a batch still in flight is pinned — it is never
  served by two devices in overlapping windows.
* **scheduler.py** — deadline-aware dynamic batching over a time-ordered
  queue, one instance per device.  Batches amortize per-layer launch
  overhead but must finish inside the camera deadline; the scheduler
  plans batch sizes with the :mod:`repro.hw.roofline` latency model of
  *its* device, orders requests by aged urgency (EDF plus a queue-age
  credit so no stream starves), flips to max-throughput batching once a
  deadline is already unmeetable, and exposes the earliest pending
  arrival so the event loop can launch the instant the device frees up.
  :func:`plan_adaptation_groups` partitions the steps granted in one
  served batch into same-key fused groups.
* **admission.py** — slack-driven adaptation admission control, one
  controller per device.  :class:`SlackAdmission` grants the optional
  adaptation work from observed deadline slack: steps shed when the
  queue runs hot, skipped streams catch up when it clears (bounded by a
  per-stream debt limit), a step is never granted when the roofline
  model says it would push the served batch past its earliest deadline,
  and solo steps are deferred briefly to share a fused replay (phase
  packing).  Migration transfers a stream's debt/deferral state between
  controllers (``export_stream``/``import_stream``), so moving neither
  erases nor inflates its catch-up claim.  The static ``adapt_stride``
  stagger remains as the legacy policy when no :class:`AdmissionConfig`
  is given.
* **adapt_batch.py** — batched same-batch adaptation, one batcher per
  device.  Granted steps that land in the same served batch fuse into
  ONE grouped replay of the compiled adaptation plan with per-stream
  state slots read straight from each session's snapshot (no model
  swap); per-stream results match serial stepping to float precision.
  ``FleetConfig(batch_adaptation=False)`` disables fusing.
* **server.py** — the fleet coordinator.  One fleet-wide time-ordered
  arrival heap; arrivals route to the session's current device; each
  worker launches a deadline-feasible batch at ``max(device_free,
  earliest pending arrival)``, executed in global time order across the
  pool; after each batch the migration planner may rebalance.
  ``FleetConfig(devices=N, placement=..., migration=...)`` configures
  the pool (an explicit heterogeneous ``device_pool`` may be passed to
  the server); ``FleetConfig(devices=1)`` — the default — reproduces
  the former single-device server exactly, and ``ingest="sync"`` keeps
  the tick-synchronous loop as the parity oracle.
* **drift.py** — drift-aware adaptation resets.  Each session can
  feed its per-frame mean prediction entropy to a one-sided CUSUM
  (:class:`repro.metrics.DriftDetector`); an alarm re-initializes the
  session's BN state from the source snapshot or warm-starts it from a
  per-session bank of previously adapted states keyed by domain
  signature (:func:`repro.adapt.frame_signature`), clears optimizer
  momentum, re-aligns the adaptation stagger so the next frame adapts,
  and re-quotes the stream on its device.  Enabled via
  ``FleetConfig(drift=DriftResetConfig(...))``; detection is pure
  observation, so a run in which no alarm fires is bitwise identical
  to one without the detector.
* **checkpoint.py / faults.py** — session durability and deterministic
  failure injection (see the failure model below).
  :class:`SessionCheckpointStore` periodically serializes each
  session's complete adapted state to atomic ``.npz`` archives;
  :class:`FaultSchedule` is a seeded, replayable list of crash / stall
  / slow-down / join events the coordinator drains through its event
  loop like a second arrival stream.

Failure model
-------------
The elastic pool survives devices dying mid-run and admits devices
joining a running fleet (``FleetServer.add_device``, also a ``join``
fault event).  What is durable, what is lost, and how recovery runs:

* **Durable** — each session's last checkpoint: BN statistics and
  gamma/beta (the ``ParameterSnapshot``), optimizer slots, the
  adapter's pending-frame buffer and step index, admission
  debt/deferrals, serving counters and the arrival-process cursor.
  Checkpoints are written atomically (tmp + ``os.replace`` with an
  embedded key manifest — a torn archive can never be loaded), every
  ``CheckpointConfig.interval_frames`` served frames, plus a baseline
  at attach time.  ``mode="async"`` models a write-behind store: a
  capture is staged and only durable at the next opportunity, bounded
  by ``max_staleness_frames``.
* **Lost on a crash** — everything since the last durable checkpoint:
  adapted-state progress of frames served since then (counted per
  stream in ``FleetReport.frames_lost``, bounded by the checkpoint
  interval per stream), frames queued on the dead device
  (``crash_dropped_frames`` — its memory died with it), any staged
  async capture, and the dead controller's live admission state (the
  checkpointed debt is re-imported instead).
* **Drift resets** — a drift alarm is a *logical* failure of the
  stream's adapted state (the world changed under it).  The reset is
  applied at batch completion on the device clock and immediately
  billed as an **unconditional durable checkpoint** (staged async
  captures are dropped): a device crash racing the reset can therefore
  never restore pre-reset BN state from a stale archive.  The detector
  state and the warm-start bank are part of the session checkpoint, so
  a recovered session resumes detection exactly where it left off.
* **Recovery sequence** — the watchdog detects the death at the missed
  next launch (``max(crash_ms, device_free_ms)``: a batch already
  committed on the simulated clock completes); queued frames are
  counted dead; each hosted session is restored from its durable
  checkpoint, re-placed over the surviving pool by the normal placement
  path, re-quoted at the new device's prices, and its admission
  debt re-imported.  Nothing is recomputed: serving counters stand,
  only adapted state rolls back, so no frame is ever served twice and
  per-stream frame order is preserved.  Joined or freshly drained
  devices are re-priced within a bounded number of idle-decay ticks by
  a canary probe that snaps their stale slack EWMA to the roofline
  prior.

Checkpointing, fault injection and recovery all run on the simulated
event clock, so a seeded ``FaultSchedule`` replays bitwise — and with
no faults scheduled, a checkpointing run is bitwise identical to a
fault-free baseline (captures copy; they never touch live state).
* **report.py** — fleet dashboard: p50/p95/p99 latency, deadline-slack
  percentiles, queue depth at batch launch, per-stream accuracy,
  adaptation-step p50/p95, admission grants/skips, dropped frames,
  fused-step sizes, sustained frames/sec, and per-device
  :class:`DeviceReport` rows (utilization, queue depth, migrations)
  plus the migration event log.  Fleet-wide distributions are streaming
  :class:`~repro.telemetry.Histogram` sketches (mergeable, O(1)
  memory), fed by the device workers as they serve.

Observability is :mod:`repro.telemetry`: every worker records its
metrics into the server's shared :class:`~repro.telemetry.MetricsRegistry`,
and when the server is built with a :class:`~repro.telemetry.SpanTracer`
each frame's life (``ingest → queue → forward → adapt → emit``) plus
batch, fusion, migration and admission events become spans exportable as
Chrome ``trace_event`` JSON.  The default is the no-op
:data:`~repro.telemetry.NULL_TRACER`; serving results are bitwise
identical with tracing on or off.

Entry points: ``python -m repro.experiments fleet`` (heterogeneous-domain
demo harness; ``--devices``/``--placement``/``--jitter``/``--admission``
flags, span tracing + dashboard with ``--trace``), ``python -m
repro.experiments trace`` (the observability run as its own artifact),
``python -m repro.experiments bench-serve`` (jittered-arrival admission
study, the device-scaling study with ``--devices N``, or the
telemetry-overhead study with ``--trace``; all regression-gated),
``examples/fleet_serving.py`` (device-pool walkthrough with
placement/migration knobs), ``benchmarks/bench_serve_throughput.py``
(batched vs. N serial pipelines, jittered admission, device scaling) and
``benchmarks/bench_adapt_step.py``.  ``tests/test_properties_serve.py``
is the property harness for the scheduler/admission/pool invariants.
"""

from .adapt_batch import FleetAdaptationBatcher, static_fuse_key
from .admission import AdmissionConfig, SlackAdmission, StepCandidate
from .checkpoint import (
    CheckpointConfig,
    SessionCheckpointStore,
    capture_session_state,
    restore_session_state,
)
from .drift import DriftResetConfig, SessionDriftState
from .faults import FaultEvent, FaultSchedule
from .pool import (
    PLACEMENT_POLICIES,
    DeviceWorker,
    MigrationConfig,
    MigrationDecision,
    MigrationPlanner,
    place_stream,
)
from .report import DeviceReport, FleetReport
from .scheduler import (
    BatchPlan,
    DeadlineAwareScheduler,
    FrameRequest,
    plan_adaptation_groups,
)
from .server import FleetConfig, FleetServer
from .streams import (
    ArrivalModel,
    ArrivalProcess,
    BNStateSnapshot,
    StreamRegistry,
    StreamSession,
    per_stream_inference,
)

__all__ = [
    "FleetServer",
    "FleetConfig",
    "FleetReport",
    "CheckpointConfig",
    "SessionCheckpointStore",
    "capture_session_state",
    "restore_session_state",
    "FaultEvent",
    "FaultSchedule",
    "DriftResetConfig",
    "SessionDriftState",
    "DeviceReport",
    "DeviceWorker",
    "MigrationConfig",
    "MigrationDecision",
    "MigrationPlanner",
    "PLACEMENT_POLICIES",
    "place_stream",
    "FleetAdaptationBatcher",
    "static_fuse_key",
    "AdmissionConfig",
    "SlackAdmission",
    "StepCandidate",
    "DeadlineAwareScheduler",
    "BatchPlan",
    "FrameRequest",
    "plan_adaptation_groups",
    "ArrivalModel",
    "ArrivalProcess",
    "StreamRegistry",
    "StreamSession",
    "BNStateSnapshot",
    "per_stream_inference",
]
