"""``repro.serve`` — fleet serving: N adapting vehicles, one shared model.

The paper deploys one vehicle adapting online at 30 FPS
(:class:`repro.pipeline.RealTimePipeline`).  This package scales that
deployment story to a *fleet*: many concurrent camera streams, each with
its own domain-shift schedule and its own LD-BN-ADAPT state, multiplexed
through a single model on a single device.

Architecture
------------
::

    cameras ──► StreamRegistry ──► DeadlineAwareScheduler ──► FleetServer
                (streams.py)          (scheduler.py)           (server.py)
                 per-stream           deadline-aware            batched fwd +
                 BN state +           dynamic batching          per-stream
                 adapter              w/ priority aging         decode/adapt
                                                                   │
                                                              FleetReport
                                                              (report.py)

* **streams.py** — per-stream isolation.  Everything LD-BN-ADAPT touches
  (BN running statistics, gamma/beta, optimizer momentum) lives in a
  :class:`StreamSession`; ``ParameterSnapshot``-based ``swap_in`` /
  ``swap_out`` materializes a stream's state on the shared model around
  its adaptation steps.  For inference no swapping is needed at all:
  eval-mode BN folds to a per-channel affine, so
  :func:`per_stream_inference` stacks each stream's folded
  ``(scale, shift)`` into per-sample arrays and ONE batched forward pass
  serves frames from many differently-adapted streams simultaneously.
* **scheduler.py** — deadline-aware dynamic batching.  Batches amortize
  per-layer launch overhead but must finish inside the 33.3 ms camera
  deadline; the scheduler plans batch sizes with the
  :mod:`repro.hw.roofline` latency model, orders requests by aged
  urgency (EDF plus a queue-age credit so no stream starves), and flips
  to max-throughput batching once a deadline is already unmeetable.
  :func:`plan_adaptation_groups` is the adaptation-side planner: it
  partitions the streams stepping this tick into same-key fused groups.
* **adapt_batch.py** — batched same-phase adaptation.  Streams whose
  entropy steps land on the same tick fuse into ONE grouped replay of
  the compiled adaptation plan (:class:`repro.engine.CompiledAdaptStep`
  with ``groups=K``): per-group batch statistics, per-stream gamma/beta
  slots read straight from each stream's snapshot (no model swap), and
  per-stream fused SGD/statistics updates applied back to the snapshots
  — per-stream results match serial stepping to float precision.
  Batching contract: LD-BN-ADAPT + SGD adapters whose incoming frame
  completes their adaptation batch, equal batch sizes; per-stream
  learning rates/momenta/stats modes may differ freely.  Everything else
  steps serially; ``FleetConfig(batch_adaptation=False)`` disables
  fusing outright.
* **server.py** — the fleet loop: ingest one frame per stream per tick →
  batch → shared forward → per-stream decode, accuracy and adaptation
  (fused groups first, serial leftovers after), with per-frame deadline
  accounting on either the simulated Jetson Orin clock or measured
  wallclock.
* **report.py** — fleet dashboard: p50/p95/p99 latency, per-stream
  accuracy and adaptation-step p50/p95, deadline-miss rate, fused-step
  sizes and sustained frames/sec.

Entry points: ``python -m repro.experiments fleet`` (heterogeneous-domain
demo harness), ``examples/fleet_serving.py``,
``benchmarks/bench_serve_throughput.py`` (batched vs. N serial pipelines)
and ``benchmarks/bench_adapt_step.py`` (eager vs. compiled vs. fused
adaptation steps).
"""

from .adapt_batch import FleetAdaptationBatcher
from .report import FleetReport
from .scheduler import (
    BatchPlan,
    DeadlineAwareScheduler,
    FrameRequest,
    plan_adaptation_groups,
)
from .server import FleetConfig, FleetServer
from .streams import (
    BNStateSnapshot,
    StreamRegistry,
    StreamSession,
    per_stream_inference,
)

__all__ = [
    "FleetServer",
    "FleetConfig",
    "FleetReport",
    "FleetAdaptationBatcher",
    "DeadlineAwareScheduler",
    "BatchPlan",
    "FrameRequest",
    "plan_adaptation_groups",
    "StreamRegistry",
    "StreamSession",
    "BNStateSnapshot",
    "per_stream_inference",
]
