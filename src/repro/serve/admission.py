"""Slack-driven admission control for fleet adaptation steps.

The adaptation step is the fleet's only *optional* work: skipping it
costs a little accuracy later, running it late costs a deadline now.
The legacy policy (``adapt_stride`` + static phase stagger) fixes the
adaptation rate at configuration time, so a hot queue keeps paying for
steps it cannot afford and an idle one leaves slack unused.  This module
replaces that with a feedback controller fed by the serving loop itself:

* **hard feasibility** — a step is *never* granted when the roofline
  model says it would push the served batch past its earliest deadline
  (:func:`repro.hw.deadline.adaptation_budget_ms` is the budget, the
  modeled fused/serial step cost the price).  This invariant holds
  unconditionally, including for starvation catch-ups.
* **load shedding** — when the queue is hot (deep backlog, or the EWMA
  of observed per-frame deadline slack below ``slack_low_ms``), only
  streams whose adaptation *debt* (frames skipped since their last
  granted step) reached ``max_debt`` are granted, and only if feasible;
  everyone else sheds.  When load clears the debts drain naturally —
  skipped streams catch up because granting reverts to
  "everything feasible".
* **phase packing** — fused same-key steps cost sublinearly in the
  number of streams (:mod:`repro.serve.adapt_batch`), so the controller
  deliberately maximizes fused group sizes: a step that would run *solo*
  in a multi-stream batch is deferred for up to ``pack_patience`` frames
  when another stream with the same fuse key exists in the fleet, so
  that both steps land in the same served batch and share one grouped
  replay.

The controller is pure logic over :class:`StepCandidate` records and a
modeled step-cost function; it never touches sessions or the model, so
the scheduler property harness can drive it with synthetic fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

#: modeled latency (ms) of one fused adaptation step over ``n`` frames;
#: None = no latency model (wallclock serving) → the budget is unlimited
StepCostFn = Optional[Callable[[int], float]]


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning of the slack-driven admission controller.

    Attributes
    ----------
    slack_low_ms:
        EWMA deadline slack below which the queue counts as *hot* and
        adaptation sheds (starvation catch-ups excepted).
    slack_high_ms:
        EWMA slack the fleet must recover above before the hot state
        clears — hysteresis, kept distinct from ``slack_low_ms`` so the
        controller doesn't flap around one threshold.
    depth_high:
        Pending-queue depth at batch launch that counts as hot
        regardless of observed slack.
    max_debt:
        Frames a stream may be skipped consecutively before a catch-up
        step is forced (still subject to hard feasibility).
    ewma_alpha:
        Update weight of the observed-slack EWMA.
    headroom_ms:
        Safety margin subtracted from every feasibility budget.
    pack_patience:
        How many consecutive frames a solo step may be deferred while
        waiting to share a fused replay with a same-key partner.
    """

    slack_low_ms: float = 2.0
    slack_high_ms: float = 8.0
    depth_high: int = 4
    max_debt: int = 8
    ewma_alpha: float = 0.25
    headroom_ms: float = 0.25
    pack_patience: int = 2

    def __post_init__(self):
        if self.slack_high_ms < self.slack_low_ms:
            raise ValueError(
                f"slack_high_ms ({self.slack_high_ms}) must be >= "
                f"slack_low_ms ({self.slack_low_ms})"
            )
        if self.depth_high < 1:
            raise ValueError(f"depth_high must be >= 1, got {self.depth_high}")
        if self.max_debt < 1:
            raise ValueError(f"max_debt must be >= 1, got {self.max_debt}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.headroom_ms < 0:
            raise ValueError(
                f"headroom_ms must be >= 0, got {self.headroom_ms}"
            )
        if self.pack_patience < 0:
            raise ValueError(
                f"pack_patience must be >= 0, got {self.pack_patience}"
            )


@dataclass(frozen=True)
class StepCandidate:
    """One frame of one stream, up for an adaptation-admission decision.

    ``would_step`` marks frames that complete the stream's adaptation
    batch (the expensive decision); other frames merely buffer and cost
    nothing.  ``fuse_key`` is the batching key the step would fuse under
    (None = must run serially), ``frames_per_step`` the adapter's batch
    size, ``serial_cost_ms`` the modeled cost of the stream stepping
    alone (0 when unmodeled).
    """

    stream_id: str
    would_step: bool
    fuse_key: Optional[Hashable] = None
    frames_per_step: int = 1
    serial_cost_ms: float = 0.0


class SlackAdmission:
    """Grants per-stream adaptation work from observed deadline slack."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        step_cost_ms: StepCostFn = None,
    ):
        self.config = config if config is not None else AdmissionConfig()
        self.step_cost_ms = step_cost_ms
        self.ewma_slack_ms: Optional[float] = None
        self._slack_hot = False  # hysteresis latch between the thresholds
        self._static_keys: Dict[str, Optional[Hashable]] = {}
        self._debt: Dict[str, int] = {}
        self._deferrals: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register_stream(
        self, stream_id: str, static_key: Optional[Hashable] = None
    ) -> None:
        """Announce a stream and the fuse key its steps will carry.

        The static key feeds the packing rule: a solo step is only worth
        deferring when some *other* registered stream could share its
        fused replay.
        """
        self._static_keys[stream_id] = static_key
        self._debt.setdefault(stream_id, 0)
        self._deferrals.setdefault(stream_id, 0)

    def export_stream(self, stream_id: str) -> Dict[str, object]:
        """Detach one stream's admission state (device-pool migration).

        Removes and returns the stream's fuse key, accumulated debt and
        packing deferrals, so :meth:`import_stream` on the *target*
        device's controller can resume the stream exactly where it left
        off — a migrated stream neither loses its catch-up claim nor
        escapes it.
        """
        return {
            "static_key": self._static_keys.pop(stream_id, None),
            "debt": self._debt.pop(stream_id, 0),
            "deferrals": self._deferrals.pop(stream_id, 0),
        }

    def peek_stream(self, stream_id: str) -> Dict[str, object]:
        """Non-destructive view of one stream's admission state.

        Same shape as :meth:`export_stream` but leaves the controller
        untouched — the checkpoint store snapshots live streams with it.
        """
        return {
            "static_key": self._static_keys.get(stream_id),
            "debt": self._debt.get(stream_id, 0),
            "deferrals": self._deferrals.get(stream_id, 0),
        }

    def import_stream(self, stream_id: str, state: Dict[str, object]) -> None:
        """Attach a stream previously exported from another controller."""
        self._static_keys[stream_id] = state.get("static_key")
        self._debt[stream_id] = int(state.get("debt", 0))
        self._deferrals[stream_id] = int(state.get("deferrals", 0))

    def observe_slack(self, slack_ms: float) -> None:
        """Feed one served frame's deadline slack (negative = miss)."""
        alpha = self.config.ewma_alpha
        if self.ewma_slack_ms is None:
            self.ewma_slack_ms = float(slack_ms)
        else:
            self.ewma_slack_ms += alpha * (float(slack_ms) - self.ewma_slack_ms)

    def debt(self, stream_id: str) -> int:
        """Frames skipped since the stream's last granted step."""
        return self._debt.get(stream_id, 0)

    def _partner_exists(self, candidate: StepCandidate) -> bool:
        key = candidate.fuse_key
        if key is None:
            return False
        return any(
            static == key and sid != candidate.stream_id
            for sid, static in self._static_keys.items()
        )

    def _cost(self, frames: int) -> float:
        # zero frames cost nothing by definition — latency models need
        # never price (or even accept) an empty batch, and the first
        # group member's marginal is then the full cost(B), fixed
        # overheads included
        if frames <= 0 or self.step_cost_ms is None:
            return 0.0
        return self.step_cost_ms(frames)

    # ------------------------------------------------------------------
    def admit(
        self,
        candidates: Sequence[StepCandidate],
        budget_ms: float,
        queue_depth: int,
        allow_fused: bool = True,
    ) -> List[bool]:
        """Decide one served batch's adaptation grants.

        ``budget_ms`` is the feasibility budget
        (:func:`repro.hw.deadline.adaptation_budget_ms`, already measured
        from the batch's earliest deadline; pass ``float('inf')`` when
        serving without a latency model), ``queue_depth`` the pending
        count at batch launch.  Returns one grant flag per candidate, in
        order.  The cumulative modeled cost of all granted steps never
        exceeds ``budget_ms`` minus the configured headroom.
        """
        config = self.config
        for candidate in candidates:
            if candidate.stream_id not in self._static_keys:
                self.register_stream(candidate.stream_id, candidate.fuse_key)

        # slack hysteresis: hot latches below slack_low_ms and only
        # clears once the EWMA recovers above slack_high_ms
        if self.ewma_slack_ms is not None:
            if self.ewma_slack_ms < config.slack_low_ms:
                self._slack_hot = True
            elif self.ewma_slack_ms > config.slack_high_ms:
                self._slack_hot = False
        hot = queue_depth > config.depth_high or self._slack_hot
        if self.step_cost_ms is None:
            remaining = float("inf")
        else:
            remaining = budget_ms - config.headroom_ms

        # fused groups: first stepping occurrence of each stream, keyed
        # by fuse key; repeats and keyless steps pay the serial price
        group_sizes: Dict[Hashable, int] = {}
        granted_per_key: Dict[Hashable, int] = {}
        first_occurrence: Dict[str, int] = {}
        for i, candidate in enumerate(candidates):
            if not candidate.would_step or candidate.fuse_key is None:
                continue
            if candidate.stream_id in first_occurrence:
                continue
            first_occurrence[candidate.stream_id] = i
            if allow_fused:
                key = candidate.fuse_key
                group_sizes[key] = group_sizes.get(key, 0) + 1

        # grant order: deepest debt first, so catch-ups outrank fresh
        # steps when the budget only covers part of the batch
        order = sorted(
            range(len(candidates)),
            key=lambda i: (-self._debt.get(candidates[i].stream_id, 0), i),
        )
        # debt advances decision-by-decision, so a backlogged batch
        # carrying several frames of one stream behaves exactly like the
        # same frames split across batches
        debt = {
            c.stream_id: self._debt.get(c.stream_id, 0) for c in candidates
        }
        decisions = [False] * len(candidates)
        for i in order:
            candidate = candidates[i]
            sid = candidate.stream_id
            if not candidate.would_step:
                decisions[i] = True  # buffering is free; phase advances
                continue
            fused = (
                allow_fused
                and candidate.fuse_key is not None
                and first_occurrence.get(sid) == i
            )
            if fused:
                key = candidate.fuse_key
                already = granted_per_key.get(key, 0)
                size = candidate.frames_per_step
                marginal = self._cost((already + 1) * size) - self._cost(
                    already * size
                )
            else:
                marginal = candidate.serial_cost_ms
            if marginal > remaining:
                grant = False  # infeasible: the roofline says it would miss
            elif hot:
                grant = debt[sid] >= config.max_debt
            elif (
                fused
                and group_sizes.get(candidate.fuse_key, 0) == 1
                and queue_depth >= 2
                and self._partner_exists(candidate)
                and self._deferrals.get(sid, 0) < config.pack_patience
                and debt[sid] < config.max_debt
            ):
                # packing: hold a solo step back so it can share a fused
                # replay with a same-key partner in an upcoming batch
                grant = False
                self._deferrals[sid] = self._deferrals.get(sid, 0) + 1
            else:
                grant = True
            decisions[i] = grant
            if grant:
                remaining -= marginal
                if fused:
                    granted_per_key[candidate.fuse_key] = (
                        granted_per_key.get(candidate.fuse_key, 0) + 1
                    )
                debt[sid] = 0
                self._deferrals[sid] = 0
            else:
                debt[sid] += 1
        self._debt.update(debt)
        return decisions
