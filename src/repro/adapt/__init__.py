"""``repro.adapt`` — domain-adaptation algorithms.

* :class:`LDBNAdapt` — the paper's LD-BN-ADAPT (BN statistics refresh +
  single-step entropy descent on gamma/beta);
* :class:`ConvAdapt` / :class:`FCAdapt` — the Sec. III parameter-group
  ablations;
* :class:`CarlaneSOTA` — the offline SGPCS-style baseline (k-means
  embedding alignment + pseudo-labels + full retraining);
* :class:`NoAdapt` — the un-adapted source model.

``LDBNAdapt`` with ``stats_mode="replace"`` and entropy loss is the
structured-output analogue of Tent [Wang et al., ICLR 2021], which the
paper cites as the image-classification precursor.
"""

from .base import (
    AdaptResult,
    Adapter,
    NoAdapt,
    ParameterSnapshot,
    freeze_all,
    freeze_except,
    set_bn_training,
)
from .bn_adapt import LDBNAdapt, LDBNAdaptConfig
from .entropy import entropy_loss
from .kmeans import (
    KMeansResult,
    frame_signature,
    kmeans,
    kmeans_plus_plus_init,
    nearest_signature,
    signature_distance,
)
from .sota import CarlaneSOTA, SOTAConfig, SOTAReport
from .variants import ConvAdapt, FCAdapt, VariantConfig

__all__ = [
    "Adapter",
    "AdaptResult",
    "NoAdapt",
    "freeze_all",
    "freeze_except",
    "set_bn_training",
    "ParameterSnapshot",
    "entropy_loss",
    "LDBNAdapt",
    "LDBNAdaptConfig",
    "ConvAdapt",
    "FCAdapt",
    "VariantConfig",
    "CarlaneSOTA",
    "SOTAConfig",
    "SOTAReport",
    "kmeans",
    "kmeans_plus_plus_init",
    "KMeansResult",
    "frame_signature",
    "signature_distance",
    "nearest_signature",
]
