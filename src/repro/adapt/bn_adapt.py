"""LD-BN-ADAPT — the paper's contribution.

Real-time, fully unsupervised adaptation of a deployed UFLD model (Sec.
III).  After inference on each incoming frame (or small batch of frames),
one adaptation step runs:

(i)  **statistics refresh** — every BatchNorm layer standardizes with the
     mean/std of the *current unlabeled target batch* instead of the stale
     source-domain running statistics;
(ii) **affine update** — the BN scale gamma and shift beta (~1 % of model
     parameters) are optimized by a **single backpropagation pass** of the
     Shannon-entropy loss over the model's predictions.

All other parameters stay frozen.  The updated model serves the next
frame, giving continuous on-device adaptation within the 30 FPS budget.

Implementation notes
--------------------
* Running BN in training mode implements (i): normalization uses batch
  statistics with gradients flowing through them (PyTorch semantics).
  ``stats_mode`` controls what is *persisted* into the running buffers for
  subsequent eval-mode inference: ``"replace"`` stores the latest batch's
  statistics verbatim (the paper's "recomputed from the unlabeled data"),
  ``"ema"`` blends them in with momentum (a smoother variant we ablate).
* With batch size 1 the per-channel statistics still average over H x W
  spatial positions, so conv BN layers remain well-conditioned — this is
  why bs=1 works (and wins, Fig. 2) for a dense prediction task.
* The entropy step runs through the compiled adaptation plan
  (:class:`repro.engine.CompiledAdaptStep`) by default: a traced static
  forward+backward that skips the frozen conv/linear weight gradients
  and replays without autograd bookkeeping, numerically matched against
  the eager step.  ``repro.nn.adaptation_mode(False)`` forces the eager
  path (the correctness oracle); models whose graphs the plan cannot
  lower fall back to it automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..nn.modules import _BatchNormBase
from .base import AdaptResult, Adapter, freeze_except, set_bn_training
from .entropy import entropy_loss


@dataclass(frozen=True)
class LDBNAdaptConfig:
    """Hyper-parameters of LD-BN-ADAPT.

    Attributes
    ----------
    lr:
        Learning rate of the single gamma/beta gradient step.
    momentum:
        SGD momentum (kept across steps; 0 disables).
    batch_size:
        Frames per adaptation step — the paper evaluates 1, 2 and 4
        (adaptation after every image, or every 2/4 images).
    stats_mode:
        "replace" — running stats := current batch stats (paper);
        "ema" — exponential blend with ``ema_momentum`` (ablation).
    ema_momentum:
        Momentum for the "ema" mode.
    optimizer:
        "sgd" (default; a single step matches the paper) or "adam".
    backend:
        Plan backend for the compiled adaptation step (``None`` →
        ``REPRO_BACKEND`` or "numpy"; see :mod:`repro.engine.backends`).
    threads:
        Kernel-pool width for codegen backends (``None`` defers to the
        backend's resolution chain; the numpy backend ignores it).
    """

    lr: float = 1e-3
    momentum: float = 0.9
    batch_size: int = 1
    stats_mode: str = "replace"
    ema_momentum: float = 0.1
    optimizer: str = "sgd"
    backend: Optional[str] = None
    threads: Optional[int] = None

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.threads is not None and self.threads < 1:
            raise ValueError("threads must be >= 1 when set")
        if self.stats_mode not in ("replace", "ema"):
            raise ValueError(f"unknown stats_mode {self.stats_mode!r}")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


class LDBNAdapt(Adapter):
    """The paper's adapter: BN statistics refresh + 1-step entropy descent."""

    name = "ld_bn_adapt"

    def __init__(self, model: nn.Module, config: Optional[LDBNAdaptConfig] = None):
        super().__init__(model)
        self.config = config if config is not None else LDBNAdaptConfig()
        bn_params = []
        self._bn_modules = []
        for module in model.modules():
            if isinstance(module, _BatchNormBase):
                self._bn_modules.append(module)
                bn_params.extend([module.weight, module.bias])
        if not bn_params:
            raise ValueError("model has no BatchNorm layers to adapt")
        self._params = freeze_except(model, bn_params)
        if self.config.optimizer == "sgd":
            self.optimizer = nn.SGD(
                self._params, lr=self.config.lr, momentum=self.config.momentum
            )
        else:
            self.optimizer = nn.Adam(self._params, lr=self.config.lr)
        self._buffer: list = []
        self._compiled = None  # CompiledAdaptStep, built on first use
        self._compiled_unsupported = False  # graph can't be lowered: stay eager

    # ------------------------------------------------------------------
    @property
    def effective_momentum(self) -> float:
        """Momentum persisted into the running buffers by one step."""
        return (
            1.0 if self.config.stats_mode == "replace" else self.config.ema_momentum
        )

    @property
    def pending_frames(self) -> int:
        """Frames buffered by :meth:`observe_frame` toward the next step."""
        return len(self._buffer)

    def warm(self, image: np.ndarray) -> None:
        """Trace + compile the adaptation plan for this adapter's batch size.

        Serving loops call this outside their timed regions (mirroring
        ``CompiledInference.warm``) so the one-time trace cost never
        pollutes per-frame latency statistics.  No-op when the compiled
        path is disabled or unsupported.
        """
        if not nn.compiled_adaptation_enabled() or self._compiled_unsupported:
            return
        batch = np.zeros(
            (self.config.batch_size,) + tuple(np.shape(image)), dtype=np.float32
        )
        self._compiled_plan(batch)

    def _compiled_plan(self, images: np.ndarray):
        """The adaptation plan for ``images``, or None to use eager."""
        from ..engine import CompiledAdaptStep, UnsupportedAdaptGraph

        if self._compiled is None:
            self._compiled = CompiledAdaptStep(
                self.model, backend=self.config.backend,
                threads=self.config.threads,
            )
        try:
            return self._compiled.plan_for(images)
        except UnsupportedAdaptGraph:
            self._compiled_unsupported = True
            return None

    def _adapt_compiled(self, images: np.ndarray, momentum: float):
        """One compiled entropy step; returns the loss or None (fallback).

        Replays the traced plan, persists the batch statistics into the
        running buffers with the same in-place kernel sequence the eager
        train forward uses, installs the gamma/beta gradients and runs
        the (fused, in-place) optimizer step.
        """
        plan = self._compiled_plan(images)
        if plan is None:
            return None
        losses = plan.run(images)
        for tap in plan.bn_taps:
            module = tap.module
            module.num_batches_tracked += 1
            module.running_mean *= 1.0 - momentum
            module.running_mean += momentum * tap.batch_mean.reshape(-1)
            module.running_var *= 1.0 - momentum
            module.running_var += momentum * tap.batch_var.reshape(-1)
            module.weight.grad = tap.grad_gamma.reshape(-1)
            module.bias.grad = tap.grad_beta.reshape(-1)
        self.optimizer.step()
        return float(losses[0])

    def adapt(self, images: np.ndarray) -> AdaptResult:
        """One adaptation step on a batch of unlabeled target frames.

        ``images`` is ``(N, 3, H, W)``; N is typically ``config.batch_size``
        (the pipeline buffers frames accordingly, see
        :meth:`observe_frame`).  Runs the compiled plan by default; the
        eager autograd step under ``repro.nn.adaptation_mode(False)``.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4:
            raise ValueError(f"expected (N, 3, H, W) batch, got {images.shape}")

        momentum = self.effective_momentum
        loss_value = None
        if nn.compiled_adaptation_enabled() and not self._compiled_unsupported:
            loss_value = self._adapt_compiled(images, momentum)

        if loss_value is None:
            original_momenta = [m.momentum for m in self._bn_modules]
            for module in self._bn_modules:
                module.momentum = momentum

            set_bn_training(self.model, True)
            try:
                logits = self.model(nn.Tensor(images, _copy=False))
                loss = entropy_loss(logits, axis=1)
                self.model.zero_grad()
                loss.backward()
                self.optimizer.step()
            finally:
                set_bn_training(self.model, False)
                for module, m in zip(self._bn_modules, original_momenta):
                    module.momentum = m
            loss_value = float(loss.item())

        self._step += 1
        return AdaptResult(
            loss=loss_value,
            num_frames=len(images),
            step_index=self._step,
            extras={"entropy": loss_value},
        )

    def observe_frame(self, image: np.ndarray) -> Optional[AdaptResult]:
        """Stream interface: buffer one frame; adapt when the batch fills.

        Returns the :class:`AdaptResult` on steps where adaptation ran,
        else None.  This implements the paper's "adaptation after every
        image or every 2/4 images" batching.
        """
        if image.ndim != 3:
            raise ValueError(f"expected a single (3, H, W) frame, got {image.shape}")
        self._buffer.append(np.asarray(image, dtype=np.float32))
        if len(self._buffer) < self.config.batch_size:
            return None
        batch = np.stack(self._buffer)
        self._buffer.clear()
        return self.adapt(batch)

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()
        self.optimizer.state.clear()

    @property
    def num_bn_layers(self) -> int:
        return len(self._bn_modules)
