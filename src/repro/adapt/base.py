"""Adapter interface and parameter-freezing helpers.

Every adaptation strategy in this package (LD-BN-ADAPT, the conv/FC
ablations, the no-op baseline) implements :class:`Adapter`: a stateful
object bound to one model that consumes batches of **unlabeled** target
images and updates the model in place.  The offline CARLANE-SOTA baseline
has a different signature (it needs labeled source data and many epochs)
and lives in :mod:`repro.adapt.sota`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from .. import nn


@dataclass
class AdaptResult:
    """Outcome of one adaptation step."""

    loss: float  # entropy before the parameter update
    num_frames: int
    step_index: int
    extras: Dict[str, float] = field(default_factory=dict)


class Adapter(abc.ABC):
    """Online test-time adapter bound to a model.

    Lifecycle: construct with the model (this configures which parameters
    are trainable), call :meth:`adapt` with successive unlabeled batches,
    optionally :meth:`reset` to restore the pristine model.
    """

    name: str = "adapter"

    def __init__(self, model: nn.Module):
        self.model = model
        self._initial_state = model.state_dict()
        self._step = 0

    @abc.abstractmethod
    def adapt(self, images: np.ndarray) -> AdaptResult:
        """Consume one unlabeled batch ``(N, 3, H, W)``; update the model."""

    def reset(self) -> None:
        """Restore the model to its pre-adaptation state."""
        self.model.load_state_dict(self._initial_state)
        self._step = 0

    @property
    def steps_taken(self) -> int:
        return self._step

    def trainable_parameter_count(self) -> int:
        """Number of scalars this adapter updates (paper: BN ≈ 1%)."""
        return sum(p.size for p in self.model.parameters() if p.requires_grad)


class NoAdapt(Adapter):
    """Identity baseline: the un-adapted source model ("UFLD" bars in Fig. 2)."""

    name = "no_adapt"

    def __init__(self, model: nn.Module):
        super().__init__(model)
        freeze_all(model)

    def adapt(self, images: np.ndarray) -> AdaptResult:
        self._step += 1
        return AdaptResult(loss=0.0, num_frames=len(images), step_index=self._step)


def freeze_all(model: nn.Module) -> None:
    """Disable gradients for every parameter."""
    for p in model.parameters():
        p.requires_grad = False


def freeze_except(model: nn.Module, trainable: Iterable[nn.Parameter]) -> List[nn.Parameter]:
    """Freeze everything but ``trainable``; returns the trainable list.

    Uses identity comparison, so pass the actual Parameter objects (e.g.
    ``model.bn_parameters()``).
    """
    wanted = {id(p) for p in trainable}
    kept = []
    for p in model.parameters():
        p.requires_grad = id(p) in wanted
        if p.requires_grad:
            kept.append(p)
    return kept


def set_bn_training(model: nn.Module, mode: bool) -> None:
    """Flip *only* the BatchNorm modules' train/eval flag.

    LD-BN-ADAPT runs the adaptation forward with BN in training mode (so
    normalization uses the target batch's statistics) while the rest of
    the network stays in eval mode.
    """
    from ..nn.modules import _BatchNormBase

    for module in model.modules():
        if isinstance(module, _BatchNormBase):
            object.__setattr__(module, "training", mode)


class ParameterSnapshot:
    """Save/restore a subset of parameters.

    Used by the failure-recovery tests and, through :meth:`capture` /
    :meth:`restore` round-trips, by the fleet-serving stream sessions to
    swap per-stream BN gamma/beta in and out of a shared model.
    """

    def __init__(self, params: Iterable[nn.Parameter]):
        self.params = list(params)
        self.saved = [p.data.copy() for p in self.params]

    def restore(self) -> None:
        for p, data in zip(self.params, self.saved):
            p.data[...] = data

    def capture(self) -> None:
        """Re-save the parameters' *current* values into the snapshot."""
        for p, data in zip(self.params, self.saved):
            data[...] = p.data

    def max_change(self) -> float:
        """Largest absolute parameter change since the snapshot."""
        if not self.params:
            return 0.0
        return max(
            float(np.abs(p.data - saved).max())
            for p, saved in zip(self.params, self.saved)
        )
