"""The Shannon-entropy adaptation objective (differentiable).

From the paper (Sec. III): "Since the optimization is performed using only
unlabeled data, entropy of model predictions is used as the loss function.
Shannon entropy for a prediction y is defined as
H(y) = - sum_c p(y_c) log p(y_c)", with y of shape
``gridcells x rowanchors x numlanes``.

Minimizing prediction entropy sharpens the model's row-anchor distributions
on target data — the same objective as Tent [Wang et al., ICLR 2021], here
applied to the structured UFLD output: entropy is computed per (row anchor,
lane slot) over the ``num_cells + 1`` location classes and averaged.
"""

from __future__ import annotations

from .. import nn
from ..nn import functional as F


def entropy_loss(
    logits: nn.Tensor, axis: int = 1, reduction: str = "mean"
) -> nn.Tensor:
    """Shannon entropy of the prediction distributions (differentiable).

    Parameters
    ----------
    logits:
        ``(N, C, anchors, lanes)`` raw scores (any layout works as long as
        ``axis`` names the class dimension).
    axis:
        Class dimension (UFLD layout: 1).
    reduction:
        ``"mean"`` (default) — scalar mean entropy over every prediction,
        the adaptation objective; ``"per_sample"`` — one mean entropy per
        batch element, shape ``(N,)``.  The per-sample form is the eager
        oracle for the fleet's grouped adaptation step, whose compiled
        replay returns one loss per fused stream.

    Returns
    -------
    Tensor
        Entropy in nats; backward() yields gradients for the adaptation
        step.
    """
    if reduction not in ("mean", "per_sample"):
        raise ValueError(f"unknown reduction {reduction!r}")
    log_probs = F.log_softmax(logits, axis=axis)
    probs = log_probs.exp()
    point_entropy = -(probs * log_probs).sum(axis=axis)
    if reduction == "per_sample":
        return point_entropy.reshape(point_entropy.shape[0], -1).mean(axis=1)
    return point_entropy.mean()
