"""From-scratch k-means with k-means++ seeding.

The CARLANE-SOTA baseline (SGPCS) "encodes the semantic structure of data
in both the source and target domains into an embedding space; K-means is
used for this encoding" (paper Sec. II).  This is that K-means: a small,
fully tested implementation with the classic Lloyd iterations, k-means++
initialization, empty-cluster re-seeding and monotone-inertia guarantee
(property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class KMeansResult:
    """Fitted clustering."""

    centroids: np.ndarray  # (k, D)
    labels: np.ndarray  # (N,)
    inertia: float  # sum of squared distances to assigned centroid
    n_iter: int
    inertia_history: List[float] = field(default_factory=list)


def _pairwise_sq_dists(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(N, k) squared Euclidean distances."""
    x_sq = (x * x).sum(axis=1, keepdims=True)
    c_sq = (centers * centers).sum(axis=1)[None, :]
    cross = x @ centers.T
    return np.maximum(x_sq + c_sq - 2.0 * cross, 0.0)


def kmeans_plus_plus_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centers[0] = x[first]
    closest_sq = _pairwise_sq_dists(x, centers[:1]).min(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # all points coincide with chosen centers; pick uniformly
            idx = int(rng.integers(0, n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centers[i] = x[idx]
        new_sq = _pairwise_sq_dists(x, centers[i : i + 1]).min(axis=1)
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


def kmeans(
    x: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ init.

    Parameters
    ----------
    x:
        ``(N, D)`` data (float).
    k:
        Number of clusters; must satisfy ``1 <= k <= N``.
    max_iter / tol:
        Stop when assignments are stable, the inertia improvement falls
        below ``tol`` (relative), or ``max_iter`` is reached.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"kmeans expects (N, D) data, got {x.shape}")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} must be in [1, {n}]")
    gen = rng if rng is not None else np.random.default_rng()

    centers = kmeans_plus_plus_init(x, k, gen)
    labels = np.zeros(n, dtype=np.int64)
    history: List[float] = []
    inertia = np.inf
    iteration = 0
    for iteration in range(1, max_iter + 1):
        dists = _pairwise_sq_dists(x, centers)
        new_labels = dists.argmin(axis=1)
        new_inertia = float(dists[np.arange(n), new_labels].sum())
        history.append(new_inertia)

        # update step
        for c in range(k):
            members = x[new_labels == c]
            if len(members) == 0:
                # re-seed empty cluster at the point farthest from its centroid
                farthest = int(dists.min(axis=1).argmax())
                centers[c] = x[farthest]
            else:
                centers[c] = members.mean(axis=0)

        converged = (
            np.array_equal(new_labels, labels)
            or (np.isfinite(inertia) and inertia - new_inertia <= tol * max(inertia, 1e-12))
        )
        labels = new_labels
        inertia = new_inertia
        if converged:
            break

    # final assignment against final centers
    dists = _pairwise_sq_dists(x, centers)
    labels = dists.argmin(axis=1)
    inertia = float(dists[np.arange(n), labels].sum())
    return KMeansResult(
        centroids=centers,
        labels=labels,
        inertia=inertia,
        n_iter=iteration,
        inertia_history=history,
    )


# ----------------------------------------------------------------------
# domain signatures (for cluster warm-starts)
# ----------------------------------------------------------------------
# The fleet's drift-reset path keys banked BN states by a cheap embedding
# of the frames they were adapted to — per-channel first/second moments,
# the same statistics LD-BN-ADAPT corrects.  Nearest-signature matching
# is nearest-centroid assignment in this embedding space.


def frame_signature(image: np.ndarray) -> np.ndarray:
    """Per-channel mean and std of one ``(C, H, W)`` frame → ``(2C,)``."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 3:
        raise ValueError(f"frame_signature expects (C, H, W), got {img.shape}")
    return np.concatenate([img.mean(axis=(1, 2)), img.std(axis=(1, 2))])


def signature_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two signatures."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"signature shapes differ: {a.shape} vs {b.shape}")
    return float(np.sqrt(((a - b) ** 2).sum()))


def nearest_signature(
    signature: np.ndarray, bank: List[np.ndarray]
) -> Tuple[int, float]:
    """Index and distance of the closest stored signature.

    Returns ``(-1, inf)`` for an empty bank.  Ties break toward the
    earliest entry, keeping lookups deterministic.
    """
    best, best_dist = -1, float("inf")
    for i, candidate in enumerate(bank):
        dist = signature_distance(signature, candidate)
        if dist < best_dist:
            best, best_dist = i, dist
    return best, best_dist
